//! Threaded session sharding.
//!
//! [`ShardedEngine`] partitions N clustering sessions across a pool of
//! worker threads ("shards"), each worker driving its sessions' party
//! machines over its own [`WaitTransport`]. Where the single-threaded
//! [`SessionEngine`](super::engine::SessionEngine) spins fair round-robin
//! turns, a shard worker *parks* when a full scheduling round makes no
//! progress: it blocks in [`WaitTransport::receive_any_of`] — a condvar
//! wait on the in-memory network and the socket transports, so idle shards
//! burn no CPU — until the next envelope arrives or its stall budget runs
//! out.
//!
//! Sessions are hash-sharded by session id (`id % shards`); every session
//! keeps the engine's `s{id}/` topic prefix with its *global* id, so any
//! number of shards can share one socket router without topic collisions.
//! Results come back in session order, with per-shard scheduling stats
//! rolled up next to the per-session `peak_buffered_rows` the chunk window
//! bounds.
//!
//! The sequential [`SessionEngine`](super::engine::SessionEngine) remains
//! the oracle: a sharded run over any transport must produce exactly the
//! results a single-threaded run produces (the integration tests in
//! `tests/sharded.rs` enforce this over in-memory, simulated-WAN and
//! loopback-TCP transports).

use std::time::Duration;

use ppc_net::{
    DeliveryReporter, DeliveryStats, PartyId, WaitStats, WaitStatsReporter, WaitTransport,
};

use crate::error::CoreError;
use crate::protocol::derive_cache::{DerivationCache, DerivationCacheStats};
use crate::protocol::engine::{EngineOutcome, PartyRuntime, SessionSpec};

/// What one shard worker returns: its sessions' outcomes (tagged with
/// their global ids) plus the shard's scheduling stats.
type ShardResult = Result<(Vec<(usize, EngineOutcome)>, ShardStats), CoreError>;

/// Per-shard scheduling statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Global session ids this shard drove.
    pub sessions: Vec<usize>,
    /// Scheduling rounds the worker executed.
    pub rounds: u64,
    /// Times the worker parked in a blocking receive because a full round
    /// made no progress (a measure of how often the shard was I/O-bound).
    pub blocking_waits: u64,
    /// Envelopes sent by this shard's sessions.
    pub messages_sent: u64,
    /// Largest pairwise-row buffer any of this shard's parties held.
    pub peak_buffered_rows: usize,
    /// Whether this shard's worker thread was pinned to a CPU core
    /// (`--pin-shards`; always `false` off Linux, where pinning is a
    /// no-op).
    pub pinned: bool,
}

/// A completed sharded run: per-session outcomes plus per-shard stats.
#[derive(Debug)]
pub struct ShardedRun {
    /// Outcomes in global session order (identical to what the
    /// single-threaded engine returns for the same specs).
    pub outcomes: Vec<EngineOutcome>,
    /// One stats record per shard, in shard order.
    pub shards: Vec<ShardStats>,
}

/// Multiplexes N clustering sessions over a pool of worker threads, one
/// per transport.
///
/// ```no_run
/// use ppc_core::protocol::sharded::ShardedEngine;
/// use ppc_net::Network;
/// # fn specs() -> Vec<ppc_core::protocol::engine::SessionSpec> { Vec::new() }
///
/// // Two shards, each with its own in-memory network.
/// let transports = vec![Network::with_parties(3), Network::with_parties(3)];
/// let mut engine = ShardedEngine::new(transports).unwrap();
/// for spec in specs() {
///     engine.add_session(spec);
/// }
/// let run = engine.run().unwrap();
/// assert_eq!(run.shards.len(), 2);
/// ```
#[derive(Debug)]
pub struct ShardedEngine<T> {
    transports: Vec<T>,
    specs: Vec<SessionSpec>,
    idle_wait: Duration,
    max_idle_waits: u32,
    /// One handle cloned into every shard worker: the cache is
    /// thread-safe, so same-schema sessions share derivations *across*
    /// shards. `None` disables memoisation; outputs are identical.
    cache: Option<DerivationCache>,
    /// Pin shard worker `i` to CPU core `i % cores` before it starts
    /// driving sessions (Linux only; a no-op elsewhere).
    pin: bool,
}

impl<T: WaitTransport + Sync> ShardedEngine<T> {
    /// Creates an engine with one worker (shard) per transport.
    pub fn new(transports: Vec<T>) -> Result<Self, CoreError> {
        if transports.is_empty() {
            return Err(CoreError::Protocol(
                "a sharded engine needs at least one transport".into(),
            ));
        }
        Ok(ShardedEngine {
            transports,
            specs: Vec::new(),
            idle_wait: Duration::from_millis(50),
            max_idle_waits: 40,
            cache: Some(DerivationCache::new()),
            pin: false,
        })
    }

    /// Enables (or disables) per-core shard pinning: worker `i` calls
    /// `sched_setaffinity` for core `i % available_parallelism()` before
    /// driving its sessions, so a shard's inbox slot stays hot in one
    /// core's cache instead of migrating with the scheduler. Purely a
    /// placement hint — results and wire traffic are identical either way.
    pub fn set_pin_shards(&mut self, pin: bool) {
        self.pin = pin;
    }

    /// Replaces the shared derivation cache (`None` disables memoisation —
    /// the benchmark baseline).
    pub fn set_derivation_cache(&mut self, cache: Option<DerivationCache>) {
        self.cache = cache;
    }

    /// Hit/miss counters of the shared derivation cache, if one is set.
    pub fn derivation_cache_stats(&self) -> Option<DerivationCacheStats> {
        self.cache.as_ref().map(DerivationCache::stats)
    }

    /// Number of shards (worker threads `run` will spawn).
    pub fn shards(&self) -> usize {
        self.transports.len()
    }

    /// The per-shard transports, in shard order.
    pub fn transports(&self) -> &[T] {
        &self.transports
    }

    /// Aggregated receive-path condvar statistics across every shard's
    /// transport, or `None` when no transport tracks them. Next to
    /// [`ShardStats::blocking_waits`] (parks the *scheduler* decided on)
    /// this reports what the *transport* actually did with those parks —
    /// how many ended in a wakeup versus a timeout — which is the number
    /// the reactor-vs-blocking benches compare.
    pub fn transport_wait_stats(&self) -> Option<WaitStats>
    where
        T: WaitStatsReporter,
    {
        let mut total = WaitStats::default();
        let mut any = false;
        for transport in &self.transports {
            if let Some(stats) = transport.wait_stats() {
                total.merge(&stats);
                any = true;
            }
        }
        any.then_some(total)
    }

    /// Aggregated delivery-path statistics (buffer-pool and queue-node
    /// hit rates, batched wakes) across every shard's transport, or `None`
    /// when no transport tracks them — in-memory networks don't, socket
    /// transports do.
    pub fn transport_delivery_stats(&self) -> Option<DeliveryStats>
    where
        T: DeliveryReporter,
    {
        let mut total: Option<DeliveryStats> = None;
        for transport in &self.transports {
            if let Some(stats) = transport.delivery_stats() {
                match &mut total {
                    Some(total) => total.merge(&stats),
                    None => total = Some(stats),
                }
            }
        }
        total
    }

    /// Queues a session, returning its global id.
    pub fn add_session(&mut self, spec: SessionSpec) -> usize {
        self.specs.push(spec);
        self.specs.len() - 1
    }

    /// Number of queued sessions.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether no sessions are queued.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The shard that will drive session `id` (hash-sharding by id).
    pub fn shard_of(&self, id: usize) -> usize {
        id % self.transports.len()
    }

    /// Overrides the stall budget: a worker errors out after
    /// `max_idle_waits` consecutive blocking waits of `idle_wait` each
    /// with no progress anywhere in the shard.
    pub fn set_stall_budget(&mut self, idle_wait: Duration, max_idle_waits: u32) {
        self.idle_wait = idle_wait;
        self.max_idle_waits = max_idle_waits;
    }

    /// Runs every queued session to completion across the worker pool,
    /// returning outcomes in global session order plus per-shard stats.
    ///
    /// Workers shut down gracefully: each exits once its own sessions are
    /// done (flushing its transport first), and `run` joins every worker
    /// before returning, so no thread outlives the call. If any shard
    /// fails, the first error (in shard order) is returned after all
    /// workers have stopped.
    pub fn run(&mut self) -> Result<ShardedRun, CoreError> {
        let shard_count = self.transports.len();
        let mut assignments: Vec<Vec<(usize, SessionSpec)>> = vec![Vec::new(); shard_count];
        for (id, spec) in self.specs.iter().enumerate() {
            assignments[id % shard_count].push((id, spec.clone()));
        }

        let idle_wait = self.idle_wait;
        let max_idle_waits = self.max_idle_waits;
        let pin = self.pin;
        let transports = &self.transports;
        let cache = &self.cache;

        let shard_results: Vec<ShardResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = transports
                .iter()
                .zip(assignments)
                .enumerate()
                .map(|(shard, (transport, sessions))| {
                    let cache = cache.clone();
                    scope.spawn(move || {
                        let pinned = pin && ppc_net::pin_thread_to_core(shard);
                        drive_shard(
                            shard,
                            transport,
                            sessions,
                            idle_wait,
                            max_idle_waits,
                            cache,
                            pinned,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(result) => result,
                    Err(_) => Err(CoreError::Protocol("a shard worker panicked".into())),
                })
                .collect()
        });

        let mut outcomes: Vec<Option<EngineOutcome>> =
            (0..self.specs.len()).map(|_| None).collect();
        let mut shards = Vec::with_capacity(shard_count);
        for result in shard_results {
            let (shard_outcomes, stats) = result?;
            for (id, outcome) in shard_outcomes {
                outcomes[id] = Some(outcome);
            }
            shards.push(stats);
        }
        let outcomes = outcomes
            .into_iter()
            .map(|o| o.expect("every session id was assigned to exactly one shard"))
            .collect();
        Ok(ShardedRun { outcomes, shards })
    }
}

/// One worker: drives `sessions` over `transport` until all complete.
///
/// The loop mirrors [`SessionEngine::run`](super::engine::SessionEngine):
/// pump the transport, give every live session one fair turn, flush — but
/// where the single-threaded engine would spin on an idle round, the
/// worker parks in a condvar-blocking receive until traffic arrives.
fn drive_shard<T: WaitTransport>(
    shard: usize,
    transport: &T,
    sessions: Vec<(usize, SessionSpec)>,
    idle_wait: Duration,
    max_idle_waits: u32,
    cache: Option<DerivationCache>,
    pinned: bool,
) -> ShardResult {
    let mut stats = ShardStats {
        shard,
        sessions: sessions.iter().map(|(id, _)| *id).collect(),
        pinned,
        ..ShardStats::default()
    };
    // Sessions always carry their global `s{id}/` prefix: ids are unique
    // across shards, so shards can share one router or WAN without their
    // topics colliding.
    let mut runtimes: Vec<(usize, PartyRuntime)> = sessions
        .iter()
        .map(|(id, spec)| {
            Ok((
                *id,
                PartyRuntime::build(spec, format!("s{id}/"), cache.clone())?,
            ))
        })
        .collect::<Result<_, CoreError>>()?;
    let parties: Vec<PartyId> = {
        let mut parties: Vec<PartyId> = runtimes
            .iter()
            .flat_map(|(_, r)| r.parties().collect::<Vec<_>>())
            .collect();
        parties.sort();
        parties.dedup();
        parties
    };

    let route = |runtimes: &mut Vec<(usize, PartyRuntime)>,
                 envelope: ppc_net::Envelope|
     -> Result<(), CoreError> {
        let (_, target) = runtimes
            .iter_mut()
            .find(|(_, r)| r.accepts(&envelope.topic))
            .ok_or_else(|| {
                CoreError::Protocol(format!(
                    "shard {shard}: no session claims topic '{}'",
                    envelope.topic
                ))
            })?;
        target.enqueue(envelope)
    };

    let mut idle_waits = 0u32;
    while runtimes.iter().any(|(_, r)| !r.is_done()) {
        stats.rounds += 1;
        let mut progressed = false;

        // Pump everything currently queued on the transport.
        for &party in &parties {
            while let Some(envelope) = transport.try_receive(party)? {
                route(&mut runtimes, envelope)?;
                progressed = true;
            }
        }

        // One fair turn per live session.
        for (_, runtime) in runtimes.iter_mut() {
            if runtime.is_done() {
                continue;
            }
            let turn = runtime.turn()?;
            progressed |= turn.progressed;
            stats.messages_sent += turn.outgoing.len() as u64;
            for envelope in turn.outgoing {
                transport.send(envelope)?;
            }
        }
        transport.flush()?;

        if progressed {
            idle_waits = 0;
            continue;
        }

        // Nothing moved: park until traffic arrives (condvar wait on the
        // in-memory and socket transports — no spinning).
        stats.blocking_waits += 1;
        match transport.receive_any_of(&parties, idle_wait)? {
            Some(envelope) => {
                route(&mut runtimes, envelope)?;
                idle_waits = 0;
            }
            None => {
                idle_waits += 1;
                if idle_waits > max_idle_waits {
                    let stuck: Vec<usize> = runtimes
                        .iter()
                        .filter(|(_, r)| !r.is_done())
                        .map(|(id, _)| *id)
                        .collect();
                    return Err(CoreError::Protocol(format!(
                        "shard {shard} stalled with unfinished sessions {stuck:?}"
                    )));
                }
            }
        }
    }

    let mut outcomes = Vec::with_capacity(runtimes.len());
    for (id, runtime) in runtimes {
        let outcome = runtime.finish()?;
        stats.peak_buffered_rows = stats
            .peak_buffered_rows
            .max(outcome.stats.peak_buffered_rows);
        outcomes.push((id, outcome));
    }
    Ok((outcomes, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::matrix::{DataMatrix, HorizontalPartition};
    use crate::protocol::driver::{ClusteringRequest, ThirdPartyDriver};
    use crate::protocol::party::TrustedSetup;
    use crate::protocol::ProtocolConfig;
    use crate::record::Record;
    use crate::schema::{AttributeDescriptor, Schema};
    use crate::value::AttributeValue;
    use ppc_crypto::Seed;
    use ppc_net::Network;

    fn schema() -> Schema {
        Schema::new(vec![
            AttributeDescriptor::numeric("age"),
            AttributeDescriptor::categorical("blood"),
            AttributeDescriptor::alphanumeric("dna", Alphabet::dna()),
        ])
        .unwrap()
    }

    fn record(age: f64, blood: &str, dna: &str) -> Record {
        Record::new(vec![
            AttributeValue::numeric(age),
            AttributeValue::categorical(blood),
            AttributeValue::alphanumeric(dna),
        ])
    }

    fn spec(seed: u64, chunk_rows: Option<usize>) -> SessionSpec {
        let rows_a = vec![record(30.0, "A", "acgt"), record(31.0, "A", "acga")];
        let rows_b = vec![record(65.0, "B", "ttcg"), record(29.5, "A", "acgt")];
        let rows_c = vec![record(66.0, "B", "ttgg")];
        let partitions = vec![
            HorizontalPartition::new(0, DataMatrix::with_rows(schema(), rows_a).unwrap()),
            HorizontalPartition::new(1, DataMatrix::with_rows(schema(), rows_b).unwrap()),
            HorizontalPartition::new(2, DataMatrix::with_rows(schema(), rows_c).unwrap()),
        ];
        let setup = TrustedSetup::deterministic(partitions, &Seed::from_u64(seed)).unwrap();
        SessionSpec {
            schema: schema(),
            config: ProtocolConfig::default(),
            holders: setup.holders,
            keys: setup.third_party,
            request: ClusteringRequest::uniform(&schema(), 2),
            chunk_rows,
        }
    }

    #[test]
    fn empty_transport_list_is_rejected() {
        assert!(ShardedEngine::<Network>::new(Vec::new()).is_err());
    }

    #[test]
    fn sessions_hash_shard_by_id() {
        let engine =
            ShardedEngine::new(vec![Network::with_parties(3), Network::with_parties(3)]).unwrap();
        assert_eq!(engine.shards(), 2);
        assert_eq!(engine.shard_of(0), 0);
        assert_eq!(engine.shard_of(1), 1);
        assert_eq!(engine.shard_of(4), 0);
    }

    #[test]
    fn two_shards_match_the_driver_and_report_stats() {
        let seeds = [11u64, 12, 13, 14];
        let mut engine =
            ShardedEngine::new(vec![Network::with_parties(3), Network::with_parties(3)]).unwrap();
        for &seed in &seeds {
            engine.add_session(spec(seed, Some(1)));
        }
        assert_eq!(engine.len(), 4);
        assert!(!engine.is_empty());
        let run = engine.run().unwrap();
        assert_eq!(run.outcomes.len(), 4);
        assert_eq!(run.shards.len(), 2);
        assert_eq!(run.shards[0].sessions, vec![0, 2]);
        assert_eq!(run.shards[1].sessions, vec![1, 3]);
        for (outcome, &seed) in run.outcomes.iter().zip(&seeds) {
            let s = spec(seed, None);
            let driver = ThirdPartyDriver::new(s.schema.clone(), s.config);
            let constructed = driver.construct(&s.holders, &s.keys).unwrap();
            let (reference, _) = driver.cluster(&constructed, &s.request).unwrap();
            assert_eq!(outcome.result.clusters, reference.clusters, "seed {seed}");
            assert_eq!(outcome.stats.peak_buffered_rows, 1, "seed {seed}");
        }
        for stats in &run.shards {
            assert!(stats.rounds > 0);
            assert!(stats.messages_sent > 0);
            assert_eq!(stats.peak_buffered_rows, 1);
        }
    }

    #[test]
    fn a_stalled_shard_reports_its_sessions() {
        // A transport with no parties registered errors on first receive.
        let mut engine = ShardedEngine::new(vec![Network::new()]).unwrap();
        engine.add_session(spec(1, None));
        assert!(engine.run().is_err());
    }
}
