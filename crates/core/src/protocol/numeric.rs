//! Numeric attribute comparison protocol (§4.1, Figures 3–6).
//!
//! Roles and data flow for one attribute and one ordered pair of data
//! holders `(DH_J, DH_K)`:
//!
//! 1. `DH_J` masks its whole column: `DH'_J[m] = rng_JT.next() +
//!    DH_J[m] · (−1)^{rng_JK.next() mod 2}` and sends the vector to `DH_K`
//!    ([`initiator_mask`]).
//! 2. `DH_K` builds the `|DH_K| × |DH_J|` pairwise matrix
//!    `s[m][n] = DH'_J[n] + DH_K[m] · (−1)^{(rng_JK.next()+1) mod 2}`,
//!    re-initialising `rng_JK` after every row so the same negation choices
//!    are replayed, and sends the matrix to the third party
//!    ([`responder_fold`]).
//! 3. `TP` removes the additive masks, `|s[m][n] − rng_JT.next()|`,
//!    re-initialising `rng_JT` after every row, and obtains the cross-site
//!    block of the dissimilarity matrix ([`third_party_unmask`]).
//!
//! All arithmetic is wrapping arithmetic over `Z_{2^64}` on fixed-point
//! values, so the masks act as one-time pads and the recovered distances are
//! exact. The per-pair hardened variant ([`initiator_mask_per_pair`] et al.)
//! draws fresh randomness for every `(m, n)` pair instead of reusing one
//! masked vector, which is the mitigation the paper offers against the
//! frequency-analysis attack on batch mode.
//!
//! All pairwise matrices are carried as flat row-major
//! [`PairwiseBlock`]s — one allocation per holder pair, iterated
//! cache-linearly in exactly the RNG-stream order the paper prescribes, and
//! already in the wire layout of
//! [`PairwiseMatrixMsg`](crate::protocol::messages::PairwiseMatrixMsg).
//!
//! ## Kernels and oracles
//!
//! The row loops run through the chunked kernels of
//! [`kernels`]: randomness is drawn (or taken
//! from a cached raw prefix — see `*_with_prefixes`) per stream *up front*,
//! then the arithmetic proceeds over flat slices in fixed-width strides the
//! autovectorizer can lower to SIMD. Because `rng_JK` and `rng_JT` are
//! independent streams, hoisting each stream's draws ahead of the loop
//! preserves every per-stream draw position, so outputs are bit-identical
//! to the interleaved per-element form. The per-element originals are
//! retained as `*_scalar` oracles and the equivalence is property-tested.

use ppc_crypto::prng::DynStreamRng;
use ppc_crypto::{raw_u64_prefix, Negator, NumericMasker, PairwiseSeeds, RngAlgorithm, Seed};

use crate::error::CoreError;
use crate::pairwise::PairwiseBlock;
use crate::protocol::kernels;

/// `DH_J` (Figure 4): masks its column once for batch processing.
pub fn initiator_mask(values: &[i64], seeds: &PairwiseSeeds, algorithm: RngAlgorithm) -> Vec<i64> {
    let raw_jk = raw_u64_prefix(algorithm, &seeds.holder_holder, values.len());
    let raw_jt = raw_u64_prefix(algorithm, &seeds.holder_third_party, values.len());
    initiator_mask_with_prefixes(values, &raw_jk, &raw_jt)
}

/// [`initiator_mask`] over already-derived raw stream prefixes (the
/// cacheable form): `raw_jk`/`raw_jt` must hold at least `values.len()`
/// leading draws of the respective streams.
pub fn initiator_mask_with_prefixes(values: &[i64], raw_jk: &[u64], raw_jt: &[u64]) -> Vec<i64> {
    let n = values.len();
    assert!(raw_jk.len() >= n && raw_jt.len() >= n, "prefixes too short");
    let signs_j = kernels::signs_j_from_raw(&raw_jk[..n]);
    let mut out = vec![0i64; n];
    kernels::mask_row(values, &signs_j, &raw_jt[..n], &mut out);
    out
}

/// Scalar oracle for [`initiator_mask`]: the paper's per-element loop,
/// retained for equivalence tests and microbenchmarks.
pub fn initiator_mask_scalar(
    values: &[i64],
    seeds: &PairwiseSeeds,
    algorithm: RngAlgorithm,
) -> Vec<i64> {
    let mut rng_jk = DynStreamRng::new(algorithm, &seeds.holder_holder);
    let mut rng_jt = DynStreamRng::new(algorithm, &seeds.holder_third_party);
    values
        .iter()
        .map(|&x| {
            let negator = Negator::from_random(rng_jk.next_u64());
            let mask = rng_jt.next_u64();
            NumericMasker::mask_initiator(x, mask, negator)
        })
        .collect()
}

/// `DH_K` (Figure 5): folds its own values into the masked vector, producing
/// the pairwise comparison matrix (row `m` = `DH_K`'s object `m`).
pub fn responder_fold(
    masked_initiator: &[i64],
    own_values: &[i64],
    seed_jk: &Seed,
    algorithm: RngAlgorithm,
) -> PairwiseBlock<i64> {
    // "At the end of each row, DHK should re-initialize rngJK" — i.e. every
    // row replays the *same* negation prefix. Drawing it once and reusing
    // the slice is stream-for-stream identical to reseeding per row, and
    // turns rows·cols cipher draws into cols.
    let negators = responder_negator_prefix(masked_initiator.len(), seed_jk, algorithm);
    let values = responder_fold_window(masked_initiator, own_values, &negators);
    PairwiseBlock::new(own_values.len(), masked_initiator.len(), values)
        .expect("row-major fill matches the claimed shape")
}

/// Scalar oracle for [`responder_fold`] (per-element fold, negators drawn
/// inline).
pub fn responder_fold_scalar(
    masked_initiator: &[i64],
    own_values: &[i64],
    seed_jk: &Seed,
    algorithm: RngAlgorithm,
) -> PairwiseBlock<i64> {
    let mut rng_jk = DynStreamRng::new(algorithm, seed_jk);
    let negators: Vec<Negator> = masked_initiator
        .iter()
        .map(|_| Negator::from_random(rng_jk.next_u64()))
        .collect();
    let rows = own_values.len();
    let cols = masked_initiator.len();
    let mut values = Vec::with_capacity(rows * cols);
    for &y in own_values {
        for (&masked_x, &negator) in masked_initiator.iter().zip(&negators) {
            values.push(NumericMasker::fold_responder(masked_x, y, negator));
        }
    }
    PairwiseBlock::new(rows, cols, values).expect("row-major fill matches the claimed shape")
}

/// `TP` (Figure 6): removes the additive masks, recovering
/// `|DH_J[n] − DH_K[m]|` for every pair.
pub fn third_party_unmask(
    pairwise: &PairwiseBlock<i64>,
    seed_jt: &Seed,
    algorithm: RngAlgorithm,
) -> PairwiseBlock<u64> {
    // All values in a column are disguised with the same random number (the
    // stream is re-initialised per row), so the mask prefix is drawn once
    // and reused across rows — identical output, cols draws instead of
    // rows·cols.
    let masks = third_party_mask_prefix(pairwise.cols(), seed_jt, algorithm);
    let values = third_party_unmask_window(pairwise.values(), &masks);
    PairwiseBlock::new(pairwise.rows(), pairwise.cols(), values)
        .expect("unmasking preserves the block shape")
}

/// Scalar oracle for [`third_party_unmask`].
pub fn third_party_unmask_scalar(
    pairwise: &PairwiseBlock<i64>,
    seed_jt: &Seed,
    algorithm: RngAlgorithm,
) -> PairwiseBlock<u64> {
    let mut rng_jt = DynStreamRng::new(algorithm, seed_jt);
    let masks: Vec<u64> = (0..pairwise.cols()).map(|_| rng_jt.next_u64()).collect();
    let mut values = Vec::with_capacity(pairwise.values().len());
    for row in pairwise.iter_rows() {
        for (&m, &mask) in row.iter().zip(&masks) {
            values.push(NumericMasker::unmask_distance(m, mask));
        }
    }
    PairwiseBlock::new(pairwise.rows(), pairwise.cols(), values)
        .expect("unmasking preserves the block shape")
}

/// The responder's negation prefix (batch mode): the choices `rng_JK`
/// replays for every row. Materialising it once lets row *windows* of the
/// pairwise matrix be folded independently — the chunked streams build on
/// this.
pub fn responder_negator_prefix(
    cols: usize,
    seed_jk: &Seed,
    algorithm: RngAlgorithm,
) -> Vec<Negator> {
    let mut rng_jk = DynStreamRng::new(algorithm, seed_jk);
    (0..cols)
        .map(|_| Negator::from_random(rng_jk.next_u64()))
        .collect()
}

/// Folds a window of the responder's own values against the masked vector
/// (batch mode), producing `own_window.len() · masked_initiator.len()`
/// row-major cells. Composing windows in row order reproduces
/// [`responder_fold`] exactly.
pub fn responder_fold_window(
    masked_initiator: &[i64],
    own_window: &[i64],
    negators: &[Negator],
) -> Vec<i64> {
    let cols = masked_initiator.len();
    let signs_k = kernels::signs_k_of(negators);
    let mut values = vec![0i64; own_window.len() * cols];
    for (&y, out_row) in own_window.iter().zip(values.chunks_exact_mut(cols.max(1))) {
        kernels::fold_row(masked_initiator, y, &signs_k, out_row);
    }
    values
}

/// Scalar oracle for [`responder_fold_window`].
pub fn responder_fold_window_scalar(
    masked_initiator: &[i64],
    own_window: &[i64],
    negators: &[Negator],
) -> Vec<i64> {
    let mut values = Vec::with_capacity(own_window.len() * masked_initiator.len());
    for &y in own_window {
        for (&masked_x, &negator) in masked_initiator.iter().zip(negators) {
            values.push(NumericMasker::fold_responder(masked_x, y, negator));
        }
    }
    values
}

/// The third party's additive-mask prefix (batch mode): the masks `rng_JT`
/// replays for every row, drawn once so any row window can be unmasked
/// independently.
pub fn third_party_mask_prefix(cols: usize, seed_jt: &Seed, algorithm: RngAlgorithm) -> Vec<u64> {
    raw_u64_prefix(algorithm, seed_jt, cols)
}

/// Unmasks a row window of the pairwise matrix (batch mode). `values` must
/// hold whole rows (`values.len() % masks.len() == 0`).
pub fn third_party_unmask_window(values: &[i64], masks: &[u64]) -> Vec<u64> {
    if masks.is_empty() {
        return Vec::new();
    }
    let cols = masks.len();
    let whole = values.len() - values.len() % cols;
    let mut out = vec![0u64; whole];
    for (row, out_row) in values[..whole]
        .chunks_exact(cols)
        .zip(out.chunks_exact_mut(cols))
    {
        kernels::unmask_row(row, masks, out_row);
    }
    out
}

/// Scalar oracle for [`third_party_unmask_window`].
pub fn third_party_unmask_window_scalar(values: &[i64], masks: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(values.len());
    for row in values.chunks_exact(masks.len().max(1)) {
        for (&m, &mask) in row.iter().zip(masks) {
            out.push(NumericMasker::unmask_distance(m, mask));
        }
    }
    out
}

/// `DH_J`, per-pair hardened mode, streaming: masks the next `rows` copies
/// of its column, continuing both random streams. Composing windows in row
/// order reproduces [`initiator_mask_per_pair`] exactly.
pub fn initiator_mask_per_pair_window(
    values: &[i64],
    rows: usize,
    rng_jk: &mut DynStreamRng,
    rng_jt: &mut DynStreamRng,
) -> Vec<i64> {
    // Fresh randomness per cell: hoist each stream's rows·cols draws ahead
    // of the arithmetic (per-stream draw order unchanged — the streams are
    // independent), then run the mask kernel row by row.
    let cols = values.len();
    let total = rows * cols;
    let raw_jk: Vec<u64> = (0..total).map(|_| rng_jk.next_u64()).collect();
    let raw_jt: Vec<u64> = (0..total).map(|_| rng_jt.next_u64()).collect();
    let signs_j = kernels::signs_j_from_raw(&raw_jk);
    let mut out = vec![0i64; total];
    if cols > 0 {
        for ((out_row, signs_row), masks_row) in out
            .chunks_exact_mut(cols)
            .zip(signs_j.chunks_exact(cols))
            .zip(raw_jt.chunks_exact(cols))
        {
            kernels::mask_row(values, signs_row, masks_row, out_row);
        }
    }
    out
}

/// Scalar oracle for [`initiator_mask_per_pair_window`].
pub fn initiator_mask_per_pair_window_scalar(
    values: &[i64],
    rows: usize,
    rng_jk: &mut DynStreamRng,
    rng_jt: &mut DynStreamRng,
) -> Vec<i64> {
    let mut out = Vec::with_capacity(rows * values.len());
    for _ in 0..rows {
        for &x in values {
            let negator = Negator::from_random(rng_jk.next_u64());
            let mask = rng_jt.next_u64();
            out.push(NumericMasker::mask_initiator(x, mask, negator));
        }
    }
    out
}

/// `DH_K`, per-pair hardened mode, streaming: folds a window of masked rows
/// with the matching window of its own values, continuing the `rng_JK`
/// stream.
pub fn responder_fold_per_pair_window(
    masked_window: &[i64],
    cols: usize,
    own_window: &[i64],
    rng_jk: &mut DynStreamRng,
) -> Result<Vec<i64>, CoreError> {
    if masked_window.len() != own_window.len() * cols {
        return Err(CoreError::Protocol(format!(
            "per-pair masked window of {} cells does not match {} rows × {cols} columns",
            masked_window.len(),
            own_window.len()
        )));
    }
    let raw_jk: Vec<u64> = (0..masked_window.len())
        .map(|_| rng_jk.next_u64())
        .collect();
    let signs_k = kernels::signs_k_from_raw(&raw_jk);
    let mut values = vec![0i64; masked_window.len()];
    if cols > 0 {
        for (((row, signs_row), &y), out_row) in masked_window
            .chunks_exact(cols)
            .zip(signs_k.chunks_exact(cols))
            .zip(own_window)
            .zip(values.chunks_exact_mut(cols))
        {
            kernels::fold_row(row, y, signs_row, out_row);
        }
    }
    Ok(values)
}

/// Scalar oracle for [`responder_fold_per_pair_window`].
pub fn responder_fold_per_pair_window_scalar(
    masked_window: &[i64],
    cols: usize,
    own_window: &[i64],
    rng_jk: &mut DynStreamRng,
) -> Result<Vec<i64>, CoreError> {
    if masked_window.len() != own_window.len() * cols {
        return Err(CoreError::Protocol(format!(
            "per-pair masked window of {} cells does not match {} rows × {cols} columns",
            masked_window.len(),
            own_window.len()
        )));
    }
    let mut values = Vec::with_capacity(masked_window.len());
    for (row, &y) in masked_window.chunks_exact(cols.max(1)).zip(own_window) {
        for &masked_x in row {
            let negator = Negator::from_random(rng_jk.next_u64());
            values.push(NumericMasker::fold_responder(masked_x, y, negator));
        }
    }
    Ok(values)
}

/// `TP`, per-pair hardened mode, streaming: strips the masks from a row
/// window, continuing the `rng_JT` stream.
pub fn third_party_unmask_per_pair_window(values: &[i64], rng_jt: &mut DynStreamRng) -> Vec<u64> {
    let raw_jt: Vec<u64> = (0..values.len()).map(|_| rng_jt.next_u64()).collect();
    let mut out = vec![0u64; values.len()];
    kernels::unmask_row(values, &raw_jt, &mut out);
    out
}

/// Scalar oracle for [`third_party_unmask_per_pair_window`].
pub fn third_party_unmask_per_pair_window_scalar(
    values: &[i64],
    rng_jt: &mut DynStreamRng,
) -> Vec<u64> {
    values
        .iter()
        .map(|&m| NumericMasker::unmask_distance(m, rng_jt.next_u64()))
        .collect()
}

/// `DH_J`, per-pair hardened mode: produces one freshly masked copy of its
/// column per responder object (`responder_count` rows).
pub fn initiator_mask_per_pair(
    values: &[i64],
    responder_count: usize,
    seeds: &PairwiseSeeds,
    algorithm: RngAlgorithm,
) -> PairwiseBlock<i64> {
    let mut rng_jk = DynStreamRng::new(algorithm, &seeds.holder_holder);
    let mut rng_jt = DynStreamRng::new(algorithm, &seeds.holder_third_party);
    let out = initiator_mask_per_pair_window(values, responder_count, &mut rng_jk, &mut rng_jt);
    PairwiseBlock::new(responder_count, values.len(), out)
        .expect("row-major fill matches the claimed shape")
}

/// `DH_K`, per-pair hardened mode: folds row `m` of the masked copies with
/// its `m`-th value.
///
/// Errors when the initiator sent a different number of masked copies than
/// `DH_K` has objects — a silent truncation here would leave part of the
/// third party's global matrix at its zero default.
pub fn responder_fold_per_pair(
    masked_rows: &PairwiseBlock<i64>,
    own_values: &[i64],
    seed_jk: &Seed,
    algorithm: RngAlgorithm,
) -> Result<PairwiseBlock<i64>, CoreError> {
    if masked_rows.rows() != own_values.len() {
        return Err(CoreError::Protocol(format!(
            "per-pair masked block has {} rows for {} responder objects",
            masked_rows.rows(),
            own_values.len()
        )));
    }
    let mut rng_jk = DynStreamRng::new(algorithm, seed_jk);
    let values = responder_fold_per_pair_window(
        masked_rows.values(),
        masked_rows.cols(),
        own_values,
        &mut rng_jk,
    )?;
    Ok(
        PairwiseBlock::new(own_values.len(), masked_rows.cols(), values)
            .expect("row-major fill matches the claimed shape"),
    )
}

/// `TP`, per-pair hardened mode: strips the per-pair masks.
pub fn third_party_unmask_per_pair(
    pairwise: &PairwiseBlock<i64>,
    seed_jt: &Seed,
    algorithm: RngAlgorithm,
) -> PairwiseBlock<u64> {
    let mut rng_jt = DynStreamRng::new(algorithm, seed_jt);
    let values = third_party_unmask_per_pair_window(pairwise.values(), &mut rng_jt);
    PairwiseBlock::new(pairwise.rows(), pairwise.cols(), values)
        .expect("unmasking preserves the block shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_crypto::Seed;

    fn seeds() -> PairwiseSeeds {
        PairwiseSeeds::new(Seed::from_u64(5), Seed::from_u64(7))
    }

    fn expected_distances(j: &[i64], k: &[i64]) -> PairwiseBlock<u64> {
        PairwiseBlock::from_fn(k.len(), j.len(), |m, n| j[n].abs_diff(k[m]))
    }

    #[test]
    fn batch_protocol_recovers_exact_distances() {
        for algorithm in [
            RngAlgorithm::ChaCha20,
            RngAlgorithm::Xoshiro256PlusPlus,
            RngAlgorithm::SplitMix64,
        ] {
            let j_values: Vec<i64> = vec![3, 8, -5, 1_000_000, 0, -999_999];
            let k_values: Vec<i64> = vec![8, -8, 42, 7];
            let seeds = seeds();
            let masked = initiator_mask(&j_values, &seeds, algorithm);
            let pairwise = responder_fold(&masked, &k_values, &seeds.holder_holder, algorithm);
            let distances = third_party_unmask(&pairwise, &seeds.holder_third_party, algorithm);
            assert_eq!(
                distances,
                expected_distances(&j_values, &k_values),
                "{algorithm:?}"
            );
        }
    }

    #[test]
    fn kernel_pipeline_matches_scalar_oracles() {
        // The kernel-backed role functions must be bit-identical to the
        // retained per-element oracles at awkward (non-multiple-of-stride)
        // shapes, including empty inputs.
        for algorithm in [
            RngAlgorithm::ChaCha20,
            RngAlgorithm::Xoshiro256PlusPlus,
            RngAlgorithm::SplitMix64,
        ] {
            for (jn, kn) in [(0usize, 3usize), (1, 1), (7, 5), (8, 8), (13, 9)] {
                let j_values: Vec<i64> = (0..jn as i64).map(|i| i * 37 - 1000).collect();
                let k_values: Vec<i64> = (0..kn as i64).map(|i| 555 - i * 91).collect();
                let seeds = seeds();
                let masked = initiator_mask(&j_values, &seeds, algorithm);
                assert_eq!(masked, initiator_mask_scalar(&j_values, &seeds, algorithm));
                let folded = responder_fold(&masked, &k_values, &seeds.holder_holder, algorithm);
                assert_eq!(
                    folded,
                    responder_fold_scalar(&masked, &k_values, &seeds.holder_holder, algorithm)
                );
                let unmasked = third_party_unmask(&folded, &seeds.holder_third_party, algorithm);
                assert_eq!(
                    unmasked,
                    third_party_unmask_scalar(&folded, &seeds.holder_third_party, algorithm)
                );
            }
        }
    }

    #[test]
    fn per_pair_windows_match_scalar_oracles() {
        let seeds = seeds();
        let algorithm = RngAlgorithm::ChaCha20;
        for (jn, rows) in [(0usize, 2usize), (3, 0), (7, 3), (8, 2), (11, 5)] {
            let j_values: Vec<i64> = (0..jn as i64).map(|i| i * 13 - 40).collect();
            let k_values: Vec<i64> = (0..rows as i64).map(|i| i * 7 + 2).collect();
            let mut jk_a = DynStreamRng::new(algorithm, &seeds.holder_holder);
            let mut jt_a = DynStreamRng::new(algorithm, &seeds.holder_third_party);
            let mut jk_b = DynStreamRng::new(algorithm, &seeds.holder_holder);
            let mut jt_b = DynStreamRng::new(algorithm, &seeds.holder_third_party);
            let kernel = initiator_mask_per_pair_window(&j_values, rows, &mut jk_a, &mut jt_a);
            let scalar =
                initiator_mask_per_pair_window_scalar(&j_values, rows, &mut jk_b, &mut jt_b);
            assert_eq!(kernel, scalar);
            let mut fold_a = DynStreamRng::new(algorithm, &seeds.holder_holder);
            let mut fold_b = DynStreamRng::new(algorithm, &seeds.holder_holder);
            let folded =
                responder_fold_per_pair_window(&kernel, jn, &k_values, &mut fold_a).unwrap();
            assert_eq!(
                folded,
                responder_fold_per_pair_window_scalar(&scalar, jn, &k_values, &mut fold_b).unwrap()
            );
            let mut tp_a = DynStreamRng::new(algorithm, &seeds.holder_third_party);
            let mut tp_b = DynStreamRng::new(algorithm, &seeds.holder_third_party);
            assert_eq!(
                third_party_unmask_per_pair_window(&folded, &mut tp_a),
                third_party_unmask_per_pair_window_scalar(&folded, &mut tp_b)
            );
            // Both variants must leave the streams at the same position.
            assert_eq!(jk_a.next_u64(), jk_b.next_u64());
            assert_eq!(jt_a.next_u64(), jt_b.next_u64());
            assert_eq!(fold_a.next_u64(), fold_b.next_u64());
            assert_eq!(tp_a.next_u64(), tp_b.next_u64());
        }
    }

    #[test]
    fn per_pair_protocol_recovers_exact_distances() {
        let j_values: Vec<i64> = vec![10, -3, 500, 0];
        let k_values: Vec<i64> = vec![7, 7, -1];
        let seeds = seeds();
        let algorithm = RngAlgorithm::ChaCha20;
        let masked = initiator_mask_per_pair(&j_values, k_values.len(), &seeds, algorithm);
        assert_eq!(masked.rows(), k_values.len());
        assert_eq!(masked.cols(), j_values.len());
        let pairwise =
            responder_fold_per_pair(&masked, &k_values, &seeds.holder_holder, algorithm).unwrap();
        let distances =
            third_party_unmask_per_pair(&pairwise, &seeds.holder_third_party, algorithm);
        assert_eq!(distances, expected_distances(&j_values, &k_values));
    }

    #[test]
    fn per_pair_fold_rejects_row_count_mismatch() {
        // A masked block claiming more (or fewer) copies than the responder
        // has objects must be rejected, not silently truncated — truncation
        // would leave part of the third party's global matrix at zero.
        let seeds = seeds();
        let algorithm = RngAlgorithm::ChaCha20;
        let masked = initiator_mask_per_pair(&[1, 2, 3], 5, &seeds, algorithm);
        let too_few = responder_fold_per_pair(&masked, &[7, 7], &seeds.holder_holder, algorithm);
        assert!(too_few.is_err());
        let too_many = responder_fold_per_pair(
            &masked,
            &[7, 7, 7, 7, 7, 7],
            &seeds.holder_holder,
            algorithm,
        );
        assert!(too_many.is_err());
    }

    #[test]
    fn masked_vector_does_not_expose_values_to_responder() {
        // The responder sees x' = r ± x with r drawn from the stream it does
        // not know; the masked values should not correlate with the inputs in
        // the trivial sense of being equal or close.
        let j_values: Vec<i64> = vec![1, 2, 3, 4, 5];
        let masked = initiator_mask(&j_values, &seeds(), RngAlgorithm::ChaCha20);
        for (&x, &m) in j_values.iter().zip(&masked) {
            assert_ne!(x, m);
            assert!(m.unsigned_abs() > 1 << 20, "mask suspiciously small: {m}");
        }
    }

    #[test]
    fn pairwise_matrix_hides_comparison_direction_from_tp() {
        // TP recovers |x − y| but the sign of (x − y) is hidden by the shared
        // negation choice: flipping which side is larger must not change what
        // TP computes, and the negator choices must vary across elements.
        let seeds = seeds();
        let algorithm = RngAlgorithm::ChaCha20;
        let masked_a = initiator_mask(&[100], &seeds, algorithm);
        let d_a = third_party_unmask(
            &responder_fold(&masked_a, &[40], &seeds.holder_holder, algorithm),
            &seeds.holder_third_party,
            algorithm,
        );
        let masked_b = initiator_mask(&[40], &seeds, algorithm);
        let d_b = third_party_unmask(
            &responder_fold(&masked_b, &[100], &seeds.holder_holder, algorithm),
            &seeds.holder_third_party,
            algorithm,
        );
        assert_eq!(*d_a.get(0, 0), 60);
        assert_eq!(*d_b.get(0, 0), 60);
    }

    #[test]
    fn batch_and_per_pair_agree_on_results() {
        let j_values: Vec<i64> = (0..20).map(|i| i * 13 - 50).collect();
        let k_values: Vec<i64> = (0..15).map(|i| 1000 - i * 77).collect();
        let seeds = seeds();
        let algorithm = RngAlgorithm::Xoshiro256PlusPlus;
        let batch = third_party_unmask(
            &responder_fold(
                &initiator_mask(&j_values, &seeds, algorithm),
                &k_values,
                &seeds.holder_holder,
                algorithm,
            ),
            &seeds.holder_third_party,
            algorithm,
        );
        let per_pair = third_party_unmask_per_pair(
            &responder_fold_per_pair(
                &initiator_mask_per_pair(&j_values, k_values.len(), &seeds, algorithm),
                &k_values,
                &seeds.holder_holder,
                algorithm,
            )
            .unwrap(),
            &seeds.holder_third_party,
            algorithm,
        );
        assert_eq!(batch, per_pair);
    }

    #[test]
    fn windowed_batch_pipeline_composes_to_the_whole_matrix() {
        let j_values: Vec<i64> = (0..9).map(|i| i * 31 - 100).collect();
        let k_values: Vec<i64> = (0..7).map(|i| 400 - i * 55).collect();
        let seeds = seeds();
        let algorithm = RngAlgorithm::ChaCha20;
        let masked = initiator_mask(&j_values, &seeds, algorithm);
        let whole = third_party_unmask(
            &responder_fold(&masked, &k_values, &seeds.holder_holder, algorithm),
            &seeds.holder_third_party,
            algorithm,
        );
        // Fold and unmask in windows of 3 rows; the concatenation must be
        // cell-identical.
        let negators = responder_negator_prefix(j_values.len(), &seeds.holder_holder, algorithm);
        let masks = third_party_mask_prefix(j_values.len(), &seeds.holder_third_party, algorithm);
        let mut streamed = Vec::new();
        for window in k_values.chunks(3) {
            let folded = responder_fold_window(&masked, window, &negators);
            assert_eq!(
                folded,
                responder_fold_window_scalar(&masked, window, &negators)
            );
            let unmasked = third_party_unmask_window(&folded, &masks);
            assert_eq!(unmasked, third_party_unmask_window_scalar(&folded, &masks));
            streamed.extend(unmasked);
        }
        assert_eq!(streamed, whole.values());
    }

    #[test]
    fn windowed_per_pair_pipeline_composes_to_the_whole_matrix() {
        let j_values: Vec<i64> = (0..5).map(|i| i * 17 - 30).collect();
        let k_values: Vec<i64> = (0..8).map(|i| 90 - i * 13).collect();
        let seeds = seeds();
        let algorithm = RngAlgorithm::Xoshiro256PlusPlus;
        let whole = third_party_unmask_per_pair(
            &responder_fold_per_pair(
                &initiator_mask_per_pair(&j_values, k_values.len(), &seeds, algorithm),
                &k_values,
                &seeds.holder_holder,
                algorithm,
            )
            .unwrap(),
            &seeds.holder_third_party,
            algorithm,
        );
        // Same pipeline, streamed in 3-row windows with persistent RNGs.
        let attr_seeds = &seeds;
        let mut init_jk = DynStreamRng::new(algorithm, &attr_seeds.holder_holder);
        let mut init_jt = DynStreamRng::new(algorithm, &attr_seeds.holder_third_party);
        let mut resp_jk = DynStreamRng::new(algorithm, &attr_seeds.holder_holder);
        let mut tp_jt = DynStreamRng::new(algorithm, &attr_seeds.holder_third_party);
        let mut streamed = Vec::new();
        for window in k_values.chunks(3) {
            let masked =
                initiator_mask_per_pair_window(&j_values, window.len(), &mut init_jk, &mut init_jt);
            let folded =
                responder_fold_per_pair_window(&masked, j_values.len(), window, &mut resp_jk)
                    .unwrap();
            streamed.extend(third_party_unmask_per_pair_window(&folded, &mut tp_jt));
        }
        assert_eq!(streamed, whole.values());
        // A window whose masked cells disagree with its row count errors.
        assert!(responder_fold_per_pair_window(&[1, 2, 3], 2, &[7, 7], &mut resp_jk).is_err());
    }

    #[test]
    fn cached_prefix_form_matches_fresh_derivation() {
        let seeds = seeds();
        for algorithm in [
            RngAlgorithm::ChaCha20,
            RngAlgorithm::Xoshiro256PlusPlus,
            RngAlgorithm::SplitMix64,
        ] {
            let j_values: Vec<i64> = (0..12).map(|i| i * 3 - 9).collect();
            // Prefixes longer than needed must not change the output — a
            // cache entry serves every request at or below its length.
            let raw_jk = raw_u64_prefix(algorithm, &seeds.holder_holder, 40);
            let raw_jt = raw_u64_prefix(algorithm, &seeds.holder_third_party, 40);
            assert_eq!(
                initiator_mask_with_prefixes(&j_values, &raw_jk, &raw_jt),
                initiator_mask(&j_values, &seeds, algorithm)
            );
        }
    }

    #[test]
    fn empty_inputs_produce_empty_outputs() {
        let seeds = seeds();
        let algorithm = RngAlgorithm::SplitMix64;
        let masked = initiator_mask(&[], &seeds, algorithm);
        assert!(masked.is_empty());
        let pairwise = responder_fold(&masked, &[1, 2], &seeds.holder_holder, algorithm);
        assert_eq!((pairwise.rows(), pairwise.cols()), (2, 0));
        let distances = third_party_unmask(&pairwise, &seeds.holder_third_party, algorithm);
        assert_eq!(distances.rows(), 2);
        assert!(distances.is_empty());
        assert!(distances.iter_rows().all(<[u64]>::is_empty));
    }
}
