//! Numeric attribute comparison protocol (§4.1, Figures 3–6).
//!
//! Roles and data flow for one attribute and one ordered pair of data
//! holders `(DH_J, DH_K)`:
//!
//! 1. `DH_J` masks its whole column: `DH'_J[m] = rng_JT.next() +
//!    DH_J[m] · (−1)^{rng_JK.next() mod 2}` and sends the vector to `DH_K`
//!    ([`initiator_mask`]).
//! 2. `DH_K` builds the `|DH_K| × |DH_J|` pairwise matrix
//!    `s[m][n] = DH'_J[n] + DH_K[m] · (−1)^{(rng_JK.next()+1) mod 2}`,
//!    re-initialising `rng_JK` after every row so the same negation choices
//!    are replayed, and sends the matrix to the third party
//!    ([`responder_fold`]).
//! 3. `TP` removes the additive masks, `|s[m][n] − rng_JT.next()|`,
//!    re-initialising `rng_JT` after every row, and obtains the cross-site
//!    block of the dissimilarity matrix ([`third_party_unmask`]).
//!
//! All arithmetic is wrapping arithmetic over `Z_{2^64}` on fixed-point
//! values, so the masks act as one-time pads and the recovered distances are
//! exact. The per-pair hardened variant ([`initiator_mask_per_pair`] et al.)
//! draws fresh randomness for every `(m, n)` pair instead of reusing one
//! masked vector, which is the mitigation the paper offers against the
//! frequency-analysis attack on batch mode.

use ppc_crypto::prng::DynStreamRng;
use ppc_crypto::{Negator, NumericMasker, PairwiseSeeds, RngAlgorithm, Seed};

/// `DH_J` (Figure 4): masks its column once for batch processing.
pub fn initiator_mask(
    values: &[i64],
    seeds: &PairwiseSeeds,
    algorithm: RngAlgorithm,
) -> Vec<i64> {
    let mut rng_jk = DynStreamRng::new(algorithm, &seeds.holder_holder);
    let mut rng_jt = DynStreamRng::new(algorithm, &seeds.holder_third_party);
    values
        .iter()
        .map(|&x| {
            let negator = Negator::from_random(rng_jk.next_u64());
            let mask = rng_jt.next_u64();
            NumericMasker::mask_initiator(x, mask, negator)
        })
        .collect()
}

/// `DH_K` (Figure 5): folds its own values into the masked vector, producing
/// the pairwise comparison matrix (row `m` = `DH_K`'s object `m`).
pub fn responder_fold(
    masked_initiator: &[i64],
    own_values: &[i64],
    seed_jk: &Seed,
    algorithm: RngAlgorithm,
) -> Vec<Vec<i64>> {
    let mut rng_jk = DynStreamRng::new(algorithm, seed_jk);
    own_values
        .iter()
        .map(|&y| {
            let row: Vec<i64> = masked_initiator
                .iter()
                .map(|&masked_x| {
                    let negator = Negator::from_random(rng_jk.next_u64());
                    NumericMasker::fold_responder(masked_x, y, negator)
                })
                .collect();
            // "At the end of each row, DHK should re-initialize rngJK."
            rng_jk.reseed();
            row
        })
        .collect()
}

/// `TP` (Figure 6): removes the additive masks, recovering
/// `|DH_J[n] − DH_K[m]|` for every pair.
pub fn third_party_unmask(
    pairwise: &[Vec<i64>],
    seed_jt: &Seed,
    algorithm: RngAlgorithm,
) -> Vec<Vec<u64>> {
    let mut rng_jt = DynStreamRng::new(algorithm, seed_jt);
    pairwise
        .iter()
        .map(|row| {
            let out: Vec<u64> = row
                .iter()
                .map(|&m| NumericMasker::unmask_distance(m, rng_jt.next_u64()))
                .collect();
            // All values in a column are disguised with the same random
            // number, so the stream is re-initialised per row.
            rng_jt.reseed();
            out
        })
        .collect()
}

/// `DH_J`, per-pair hardened mode: produces one freshly masked copy of its
/// column per responder object (`responder_count` rows).
pub fn initiator_mask_per_pair(
    values: &[i64],
    responder_count: usize,
    seeds: &PairwiseSeeds,
    algorithm: RngAlgorithm,
) -> Vec<Vec<i64>> {
    let mut rng_jk = DynStreamRng::new(algorithm, &seeds.holder_holder);
    let mut rng_jt = DynStreamRng::new(algorithm, &seeds.holder_third_party);
    (0..responder_count)
        .map(|_| {
            values
                .iter()
                .map(|&x| {
                    let negator = Negator::from_random(rng_jk.next_u64());
                    let mask = rng_jt.next_u64();
                    NumericMasker::mask_initiator(x, mask, negator)
                })
                .collect()
        })
        .collect()
}

/// `DH_K`, per-pair hardened mode: folds row `m` of the masked copies with
/// its `m`-th value.
pub fn responder_fold_per_pair(
    masked_rows: &[Vec<i64>],
    own_values: &[i64],
    seed_jk: &Seed,
    algorithm: RngAlgorithm,
) -> Vec<Vec<i64>> {
    let mut rng_jk = DynStreamRng::new(algorithm, seed_jk);
    masked_rows
        .iter()
        .zip(own_values)
        .map(|(row, &y)| {
            row.iter()
                .map(|&masked_x| {
                    let negator = Negator::from_random(rng_jk.next_u64());
                    NumericMasker::fold_responder(masked_x, y, negator)
                })
                .collect()
        })
        .collect()
}

/// `TP`, per-pair hardened mode: strips the per-pair masks.
pub fn third_party_unmask_per_pair(
    pairwise: &[Vec<i64>],
    seed_jt: &Seed,
    algorithm: RngAlgorithm,
) -> Vec<Vec<u64>> {
    let mut rng_jt = DynStreamRng::new(algorithm, seed_jt);
    pairwise
        .iter()
        .map(|row| {
            row.iter()
                .map(|&m| NumericMasker::unmask_distance(m, rng_jt.next_u64()))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_crypto::Seed;

    fn seeds() -> PairwiseSeeds {
        PairwiseSeeds::new(Seed::from_u64(5), Seed::from_u64(7))
    }

    fn expected_distances(j: &[i64], k: &[i64]) -> Vec<Vec<u64>> {
        k.iter()
            .map(|&y| j.iter().map(|&x| x.abs_diff(y)).collect())
            .collect()
    }

    #[test]
    fn batch_protocol_recovers_exact_distances() {
        for algorithm in [
            RngAlgorithm::ChaCha20,
            RngAlgorithm::Xoshiro256PlusPlus,
            RngAlgorithm::SplitMix64,
        ] {
            let j_values: Vec<i64> = vec![3, 8, -5, 1_000_000, 0, -999_999];
            let k_values: Vec<i64> = vec![8, -8, 42, 7];
            let seeds = seeds();
            let masked = initiator_mask(&j_values, &seeds, algorithm);
            let pairwise = responder_fold(&masked, &k_values, &seeds.holder_holder, algorithm);
            let distances = third_party_unmask(&pairwise, &seeds.holder_third_party, algorithm);
            assert_eq!(distances, expected_distances(&j_values, &k_values), "{algorithm:?}");
        }
    }

    #[test]
    fn per_pair_protocol_recovers_exact_distances() {
        let j_values: Vec<i64> = vec![10, -3, 500, 0];
        let k_values: Vec<i64> = vec![7, 7, -1];
        let seeds = seeds();
        let algorithm = RngAlgorithm::ChaCha20;
        let masked = initiator_mask_per_pair(&j_values, k_values.len(), &seeds, algorithm);
        assert_eq!(masked.len(), k_values.len());
        let pairwise = responder_fold_per_pair(&masked, &k_values, &seeds.holder_holder, algorithm);
        let distances = third_party_unmask_per_pair(&pairwise, &seeds.holder_third_party, algorithm);
        assert_eq!(distances, expected_distances(&j_values, &k_values));
    }

    #[test]
    fn masked_vector_does_not_expose_values_to_responder() {
        // The responder sees x' = r ± x with r drawn from the stream it does
        // not know; the masked values should not correlate with the inputs in
        // the trivial sense of being equal or close.
        let j_values: Vec<i64> = vec![1, 2, 3, 4, 5];
        let masked = initiator_mask(&j_values, &seeds(), RngAlgorithm::ChaCha20);
        for (&x, &m) in j_values.iter().zip(&masked) {
            assert_ne!(x, m);
            assert!(m.unsigned_abs() > 1 << 20, "mask suspiciously small: {m}");
        }
    }

    #[test]
    fn pairwise_matrix_hides_comparison_direction_from_tp() {
        // TP recovers |x − y| but the sign of (x − y) is hidden by the shared
        // negation choice: flipping which side is larger must not change what
        // TP computes, and the negator choices must vary across elements.
        let seeds = seeds();
        let algorithm = RngAlgorithm::ChaCha20;
        let masked_a = initiator_mask(&[100], &seeds, algorithm);
        let d_a = third_party_unmask(
            &responder_fold(&masked_a, &[40], &seeds.holder_holder, algorithm),
            &seeds.holder_third_party,
            algorithm,
        );
        let masked_b = initiator_mask(&[40], &seeds, algorithm);
        let d_b = third_party_unmask(
            &responder_fold(&masked_b, &[100], &seeds.holder_holder, algorithm),
            &seeds.holder_third_party,
            algorithm,
        );
        assert_eq!(d_a[0][0], 60);
        assert_eq!(d_b[0][0], 60);
    }

    #[test]
    fn batch_and_per_pair_agree_on_results() {
        let j_values: Vec<i64> = (0..20).map(|i| i * 13 - 50).collect();
        let k_values: Vec<i64> = (0..15).map(|i| 1000 - i * 77).collect();
        let seeds = seeds();
        let algorithm = RngAlgorithm::Xoshiro256PlusPlus;
        let batch = third_party_unmask(
            &responder_fold(
                &initiator_mask(&j_values, &seeds, algorithm),
                &k_values,
                &seeds.holder_holder,
                algorithm,
            ),
            &seeds.holder_third_party,
            algorithm,
        );
        let per_pair = third_party_unmask_per_pair(
            &responder_fold_per_pair(
                &initiator_mask_per_pair(&j_values, k_values.len(), &seeds, algorithm),
                &k_values,
                &seeds.holder_holder,
                algorithm,
            ),
            &seeds.holder_third_party,
            algorithm,
        );
        assert_eq!(batch, per_pair);
    }

    #[test]
    fn empty_inputs_produce_empty_outputs() {
        let seeds = seeds();
        let algorithm = RngAlgorithm::SplitMix64;
        let masked = initiator_mask(&[], &seeds, algorithm);
        assert!(masked.is_empty());
        let pairwise = responder_fold(&masked, &[1, 2], &seeds.holder_holder, algorithm);
        assert_eq!(pairwise, vec![Vec::<i64>::new(), Vec::<i64>::new()]);
        let distances = third_party_unmask(&pairwise, &seeds.holder_third_party, algorithm);
        assert_eq!(distances.len(), 2);
        assert!(distances.iter().all(Vec::is_empty));
    }
}
