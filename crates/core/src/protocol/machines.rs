//! Per-party protocol state machines.
//!
//! The construction of Figure 11 decomposed into *non-blocking* machines:
//! every party (data holder or third party) is a state machine advanced by
//! [`step`](HolderMachine::step) calls, each of which either delivers one
//! incoming envelope or polls for the next unprompted emission, and returns
//! whatever envelopes the party wants sent. No machine ever waits — a
//! scheduler (the sequential [`ClusteringSession`](super::session) for the
//! byte-identical oracle path, or the multiplexing
//! [`SessionEngine`](super::engine) for concurrent workloads) owns all
//! control flow.
//!
//! ## Wire compatibility
//!
//! With `chunk_rows: None` the machines emit exactly the legacy whole-matrix
//! messages on exactly the legacy topics, so a session driven in the legacy
//! order produces byte-identical envelopes to the pre-refactor monolithic
//! session (pinned by the golden-trace test). With `chunk_rows: Some(w)`,
//! the bulk pairwise streams are split into row windows ([`PairwiseChunkMsg`]
//! / [`CcmChunkMsg`]): the responder folds and ships at most `w` pairwise
//! rows at a time, the third party folds each window into its condensed
//! accumulator on arrival, and no party ever materialises more than `w`
//! rows of any cross-site block.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use ppc_cluster::{CondensedDistanceMatrix, MergeAccumulator};
use ppc_crypto::det::Tag128;
use ppc_crypto::prng::DynStreamRng;
use ppc_crypto::{negators_from_raw, offsets_from_raw, raw_u64_prefix, Negator, Seed};
use ppc_net::{Envelope, PartyId};

use crate::dissimilarity::{AttributeDissimilarity, DissimilarityMatrix, ObjectIndex};
use crate::error::CoreError;
use crate::pairwise::PairwiseBlock;
use crate::protocol::derive_cache::DerivationCache;
use crate::protocol::driver::{ClusteringRequest, ConstructionOutput, ThirdPartyDriver};
use crate::protocol::messages::{
    CcmBundleMsg, CcmChunkMsg, ClusteringChoiceMsg, EncryptedColumnMsg, LocalMatrixMsg,
    MaskedNumericMsg, MaskedStringsMsg, PairwiseChunkMsg, PairwiseMatrixMsg, PublishedResultMsg,
};
use crate::protocol::party::{DataHolder, ThirdPartyKeys};
use crate::protocol::session::parse_linkage;
use crate::protocol::{alphanumeric, categorical, local, numeric, NumericMode, ProtocolConfig};
use crate::result::ClusteringResult;
use crate::schema::{Schema, WeightVector};
use crate::value::AttributeKind;

/// Everything one session's machines agree on up front.
#[derive(Debug, Clone)]
pub struct SessionContext {
    /// The agreed schema.
    pub schema: Schema,
    /// Protocol configuration (RNG, numeric mode, fixed-point codec).
    pub config: ProtocolConfig,
    /// The clustering request every holder echoes to the third party.
    pub request: ClusteringRequest,
    /// `Some(w)`: stream pairwise blocks in windows of at most `w` rows.
    /// `None`: legacy whole-matrix messages (byte-identical traces).
    pub chunk_rows: Option<usize>,
    /// Prepended to every topic; the engine uses `"s{id}/"` to multiplex
    /// sessions over one transport. Empty for oracle-compatible runs.
    pub topic_prefix: String,
    /// Whether the third party retains per-attribute matrices (the legacy
    /// session outcome exposes them) or folds each completed attribute into
    /// the final accumulator and drops it (bounded memory).
    pub retain_attributes: bool,
    /// Shared derivation cache for raw RNG stream prefixes. `None` (the
    /// oracle configuration) derives every prefix fresh; `Some` memoises
    /// them across sessions that share a schema. Either way the bytes are
    /// identical — the cache is a pure memo (see
    /// [`derive_cache`](crate::protocol::derive_cache)).
    pub cache: Option<DerivationCache>,
}

impl SessionContext {
    /// Context matching the pre-refactor session byte-for-byte.
    pub fn oracle(schema: Schema, config: ProtocolConfig, request: ClusteringRequest) -> Self {
        SessionContext {
            schema,
            config,
            request,
            chunk_rows: None,
            topic_prefix: String::new(),
            retain_attributes: true,
            cache: None,
        }
    }

    fn window(&self) -> Option<usize> {
        self.chunk_rows.map(|w| w.max(1))
    }

    fn topic(&self, base: &str) -> String {
        format!("{}{base}", self.topic_prefix)
    }

    /// At least the first `len` raw `u64` draws of the configured RNG's
    /// stream under `seed` — served from the derivation cache when this
    /// session has one, freshly derived otherwise. Callers slice `[..len]`.
    fn raw_prefix(&self, seed: &Seed, len: usize) -> Arc<Vec<u64>> {
        match &self.cache {
            Some(cache) => cache.raw_prefix(self.config.rng_algorithm, seed, len),
            None => Arc::new(raw_u64_prefix(self.config.rng_algorithm, seed, len)),
        }
    }
}

/// Wall-time breakdown of one machine's protocol compute, in nanoseconds.
///
/// The engines sum these across machines into their session stats so
/// benchmark reports can separate randomness derivation (what the
/// [`DerivationCache`] elides) from the mask/fold/unmask kernels and the
/// third party's matrix merging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComputeStats {
    /// Producing randomness prefixes: negator parities, additive masks,
    /// alphabet offsets (cache-aware — hits cost almost nothing).
    pub derive_nanos: u64,
    /// Mask / fold / unmask kernels and CCM edit-distance evaluation.
    pub fold_unmask_nanos: u64,
    /// Folding completed attribute matrices into the merge accumulator and
    /// finishing the merged matrix (third party only).
    pub merge_nanos: u64,
}

impl ComputeStats {
    /// Element-wise accumulate.
    pub fn absorb(&mut self, other: &ComputeStats) {
        self.derive_nanos += other.derive_nanos;
        self.fold_unmask_nanos += other.fold_unmask_nanos;
        self.merge_nanos += other.merge_nanos;
    }
}

/// Result of advancing a machine by one step.
#[derive(Debug, Default)]
pub struct StepOutput {
    /// Envelopes the party wants transmitted, in order.
    pub outgoing: Vec<Envelope>,
    /// Whether the step did any work (delivered, emitted or completed
    /// something). Schedulers use this for stall detection.
    pub progressed: bool,
}

impl StepOutput {
    fn idle() -> Self {
        StepOutput::default()
    }

    fn emit(outgoing: Vec<Envelope>) -> Self {
        StepOutput {
            progressed: true,
            outgoing,
        }
    }
}

fn pair_tag(j: u32, k: u32) -> String {
    format!("{j}-{k}")
}

fn parse_pair_tag(tag: &str) -> Result<(u32, u32), CoreError> {
    let (j, k) = tag
        .split_once('-')
        .ok_or_else(|| CoreError::Protocol(format!("malformed pair tag '{tag}'")))?;
    Ok((
        j.parse()
            .map_err(|_| CoreError::Protocol(format!("malformed pair tag '{tag}'")))?,
        k.parse()
            .map_err(|_| CoreError::Protocol(format!("malformed pair tag '{tag}'")))?,
    ))
}

/// Splits `"numeric/{attr}/{j}-{k}/{kind}"`-shaped topics from the right so
/// attribute names containing `/` stay intact.
fn split_pair_topic(rest: &str) -> Result<(&str, &str, &str), CoreError> {
    let (rest, kind) = rest
        .rsplit_once('/')
        .ok_or_else(|| CoreError::Protocol(format!("malformed pair topic '{rest}'")))?;
    let (attr, tag) = rest
        .rsplit_once('/')
        .ok_or_else(|| CoreError::Protocol(format!("malformed pair topic '{rest}'")))?;
    Ok((attr, tag, kind))
}

fn attribute_index(schema: &Schema, name: &str) -> Result<usize, CoreError> {
    schema
        .attributes()
        .iter()
        .position(|a| a.name == name)
        .ok_or_else(|| CoreError::Protocol(format!("unknown attribute '{name}' in topic")))
}

// ---------------------------------------------------------------------------
// Data-holder machine
// ---------------------------------------------------------------------------

/// An unprompted emission a holder owes the protocol, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
enum HolderDuty {
    SendLocal { attribute: usize },
    SendCategorical { attribute: usize },
    InitiatePair { attribute: usize, responder: u32 },
    SendChoice,
}

/// In-progress chunked emission streams on the holder side.
///
/// The attribute name, destination and (prefixed) topic are resolved once
/// at stream creation so the per-chunk hot path touches no session state.
#[derive(Debug)]
enum HolderStream {
    /// Responder of the batch numeric protocol: fold own rows against the
    /// (single) masked vector, one window at a time.
    NumericBatchResponse {
        attribute: String,
        topic: String,
        masked: Vec<i64>,
        negators: Vec<Negator>,
        own: Vec<i64>,
        next_row: usize,
    },
    /// Responder of the alphanumeric protocol: build and ship CCM bundles
    /// for a window of own strings at a time.
    AlphaResponse {
        attribute: String,
        topic: String,
        masked: Vec<Vec<u32>>,
        own: Vec<Vec<u32>>,
        alphabet_size: u32,
        next_row: usize,
    },
    /// Initiator of the per-pair numeric protocol: mask fresh copies of the
    /// own column, one window of responder rows at a time.
    PerPairInitiate {
        attribute: String,
        topic: String,
        responder: u32,
        values: Vec<i64>,
        rng_jk: DynStreamRng,
        rng_jt: DynStreamRng,
        next_row: usize,
        total_rows: usize,
    },
}

/// Per-`(attribute, initiator)` responder state for incoming per-pair
/// masked chunks.
#[derive(Debug)]
struct PerPairResponderState {
    own: Vec<i64>,
    rng_jk: DynStreamRng,
    rows_done: usize,
}

/// One data holder as a non-blocking state machine.
#[derive(Debug)]
pub struct HolderMachine {
    ctx: SessionContext,
    holder: DataHolder,
    /// `(site, object_count)` for every holder, session order.
    site_sizes: Vec<(u32, usize)>,
    duties: VecDeque<HolderDuty>,
    streams: VecDeque<HolderStream>,
    per_pair_responses: HashMap<(usize, u32), PerPairResponderState>,
    published: Option<PublishedResultMsg>,
    done: bool,
    peak_rows: usize,
    compute: ComputeStats,
}

impl HolderMachine {
    /// Creates the machine for `holder` within a session covering
    /// `site_sizes` (session order).
    pub fn new(
        ctx: SessionContext,
        holder: DataHolder,
        site_sizes: &[(u32, usize)],
    ) -> Result<Self, CoreError> {
        holder.validate_schema(&ctx.schema)?;
        let me = holder.site();
        let my_pos = site_sizes
            .iter()
            .position(|&(s, _)| s == me)
            .ok_or_else(|| CoreError::Protocol(format!("holder {me} missing from site list")))?;
        let mut duties = VecDeque::new();
        for (attribute, descriptor) in ctx.schema.attributes().iter().enumerate() {
            match descriptor.kind {
                AttributeKind::Categorical => {
                    duties.push_back(HolderDuty::SendCategorical { attribute });
                }
                _ => {
                    duties.push_back(HolderDuty::SendLocal { attribute });
                    for &(responder, _) in site_sizes.iter().skip(my_pos + 1) {
                        duties.push_back(HolderDuty::InitiatePair {
                            attribute,
                            responder,
                        });
                    }
                }
            }
        }
        duties.push_back(HolderDuty::SendChoice);
        Ok(HolderMachine {
            ctx,
            holder,
            site_sizes: site_sizes.to_vec(),
            duties,
            streams: VecDeque::new(),
            per_pair_responses: HashMap::new(),
            published: None,
            done: false,
            peak_rows: 0,
            compute: ComputeStats::default(),
        })
    }

    /// The party this machine plays.
    pub fn party(&self) -> PartyId {
        PartyId::DataHolder(self.holder.site())
    }

    /// Whether the holder has received the published result.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The published result this holder received, once done — what a data
    /// holder process reports and prints in a multi-process deployment.
    pub fn published_result(&self) -> Option<&PublishedResultMsg> {
        self.published.as_ref()
    }

    /// Largest number of pairwise-block rows this machine ever held in one
    /// message buffer.
    pub fn peak_buffered_rows(&self) -> usize {
        self.peak_rows
    }

    /// Wall-time breakdown of this holder's protocol compute so far.
    pub fn compute_stats(&self) -> ComputeStats {
        self.compute
    }

    fn note_rows(&mut self, rows: usize) {
        self.peak_rows = self.peak_rows.max(rows);
    }

    fn site_len(&self, site: u32) -> Result<usize, CoreError> {
        self.site_sizes
            .iter()
            .find(|&&(s, _)| s == site)
            .map(|&(_, n)| n)
            .ok_or_else(|| CoreError::Protocol(format!("unknown site {site}")))
    }

    /// Advances the machine: delivers `incoming` if given, otherwise polls
    /// for the next pending emission.
    pub fn step(&mut self, incoming: Option<&Envelope>) -> Result<StepOutput, CoreError> {
        match incoming {
            Some(envelope) => self.deliver(envelope),
            None => self.poll(),
        }
    }

    fn poll(&mut self) -> Result<StepOutput, CoreError> {
        // Drain in-progress chunk streams before starting new duties: this
        // is the backpressure order (finish shipping what downstream is
        // already folding).
        if !self.streams.is_empty() {
            let envelope = self.advance_stream()?;
            return Ok(StepOutput::emit(vec![envelope]));
        }
        let Some(duty) = self.duties.pop_front() else {
            return Ok(StepOutput::idle());
        };
        let outgoing = match duty {
            HolderDuty::SendLocal { attribute } => vec![self.emit_local(attribute)?],
            HolderDuty::SendCategorical { attribute } => vec![self.emit_categorical(attribute)?],
            HolderDuty::InitiatePair {
                attribute,
                responder,
            } => vec![self.emit_initiate(attribute, responder)?],
            HolderDuty::SendChoice => vec![self.emit_choice()],
        };
        Ok(StepOutput::emit(outgoing))
    }

    fn emit_local(&mut self, attribute: usize) -> Result<Envelope, CoreError> {
        let descriptor = self.ctx.schema.attribute_at(attribute)?;
        let name = descriptor.name.clone();
        let local = local::local_dissimilarity(self.holder.partition().matrix(), attribute)?;
        let msg = LocalMatrixMsg {
            attribute: name.clone(),
            objects: local.len() as u32,
            condensed: local.condensed_values().to_vec(),
        };
        let topic = self
            .ctx
            .topic(&format!("local/{name}/{}", self.holder.site()));
        Ok(Envelope::new(
            self.party(),
            PartyId::ThirdParty,
            topic,
            msg.encode(),
        ))
    }

    fn emit_categorical(&mut self, attribute: usize) -> Result<Envelope, CoreError> {
        let descriptor = self.ctx.schema.attribute_at(attribute)?;
        let name = descriptor.name.clone();
        let values = self
            .holder
            .partition()
            .matrix()
            .categorical_column(attribute)?;
        let column = categorical::encrypt_column(&values, &self.holder.categorical_key());
        let msg = EncryptedColumnMsg {
            attribute: name.clone(),
            tags: column.tags.iter().map(|t| t.to_bytes()).collect(),
        };
        let topic = self.ctx.topic(&format!("categorical/{name}"));
        Ok(Envelope::new(
            self.party(),
            PartyId::ThirdParty,
            topic,
            msg.encode(),
        ))
    }

    fn emit_choice(&mut self) -> Envelope {
        let msg = ClusteringChoiceMsg {
            weights: self.ctx.request.weights.weights().to_vec(),
            num_clusters: self.ctx.request.num_clusters as u32,
            linkage: format!("{:?}", self.ctx.request.linkage).to_lowercase(),
        };
        Envelope::new(
            self.party(),
            PartyId::ThirdParty,
            self.ctx.topic("clustering-choice"),
            msg.encode(),
        )
    }

    fn emit_initiate(&mut self, attribute: usize, responder: u32) -> Result<Envelope, CoreError> {
        let descriptor = self.ctx.schema.attribute_at(attribute)?.clone();
        let name = descriptor.name.clone();
        let tag = pair_tag(self.holder.site(), responder);
        match descriptor.kind {
            AttributeKind::Numeric => {
                let codec = self.ctx.config.fixed_point;
                let algorithm = self.ctx.config.rng_algorithm;
                let values = codec
                    .encode_column(&self.holder.partition().matrix().numeric_column(attribute)?)?;
                let seeds = self.holder.pairwise_seeds(responder, &name)?;
                match (self.ctx.config.numeric_mode, self.ctx.window()) {
                    (NumericMode::PerPair, Some(_)) => {
                        // Streamed per-pair initiation: fresh masked copies
                        // are generated window by window, never as a whole
                        // |K| × |J| block.
                        let topic = self
                            .ctx
                            .topic(&format!("numeric/{name}/{tag}/masked-chunk"));
                        self.streams.push_back(HolderStream::PerPairInitiate {
                            attribute: name,
                            topic,
                            responder,
                            values,
                            rng_jk: DynStreamRng::new(algorithm, &seeds.holder_holder),
                            rng_jt: DynStreamRng::new(algorithm, &seeds.holder_third_party),
                            next_row: 0,
                            total_rows: self.site_len(responder)?,
                        });
                        self.advance_stream()
                    }
                    (mode, _) => {
                        let block = match mode {
                            NumericMode::Batch => {
                                let n = values.len();
                                let started = Instant::now();
                                let raw_jk = self.ctx.raw_prefix(&seeds.holder_holder, n);
                                let raw_jt = self.ctx.raw_prefix(&seeds.holder_third_party, n);
                                self.compute.derive_nanos += started.elapsed().as_nanos() as u64;
                                let started = Instant::now();
                                let masked = numeric::initiator_mask_with_prefixes(
                                    &values,
                                    &raw_jk[..n],
                                    &raw_jt[..n],
                                );
                                self.compute.fold_unmask_nanos +=
                                    started.elapsed().as_nanos() as u64;
                                PairwiseBlock::new(1, n, masked)?
                            }
                            NumericMode::PerPair => {
                                let started = Instant::now();
                                let block = numeric::initiator_mask_per_pair(
                                    &values,
                                    self.site_len(responder)?,
                                    &seeds,
                                    algorithm,
                                );
                                self.compute.fold_unmask_nanos +=
                                    started.elapsed().as_nanos() as u64;
                                block
                            }
                        };
                        self.note_rows(block.rows());
                        let msg = MaskedNumericMsg {
                            attribute: name.clone(),
                            block,
                        };
                        let topic = self.ctx.topic(&format!("numeric/{name}/{tag}/masked"));
                        Ok(Envelope::new(
                            self.party(),
                            PartyId::DataHolder(responder),
                            topic,
                            msg.encode(),
                        ))
                    }
                }
            }
            AttributeKind::Alphanumeric => {
                let alphabet = descriptor.require_alphabet()?.clone();
                let encoded: Vec<Vec<u32>> = self
                    .holder
                    .partition()
                    .matrix()
                    .string_column(attribute)?
                    .iter()
                    .map(|s| alphabet.encode(s))
                    .collect::<Result<_, _>>()?;
                let seeds = self.holder.pairwise_seeds(responder, &name)?;
                let max_len = encoded.iter().map(Vec::len).max().unwrap_or(0);
                let started = Instant::now();
                let raw = self.ctx.raw_prefix(&seeds.holder_third_party, max_len);
                let offsets = offsets_from_raw(&raw[..max_len], alphabet.size());
                self.compute.derive_nanos += started.elapsed().as_nanos() as u64;
                let started = Instant::now();
                let masked = alphanumeric::initiator_mask_strings_with_offsets(
                    &encoded,
                    alphabet.size(),
                    &offsets,
                )?;
                self.compute.fold_unmask_nanos += started.elapsed().as_nanos() as u64;
                let msg = MaskedStringsMsg {
                    attribute: name.clone(),
                    strings: masked,
                };
                let topic = self.ctx.topic(&format!("alphanumeric/{name}/{tag}/masked"));
                Ok(Envelope::new(
                    self.party(),
                    PartyId::DataHolder(responder),
                    topic,
                    msg.encode(),
                ))
            }
            AttributeKind::Categorical => Err(CoreError::Protocol(
                "categorical attributes have no pairwise protocol".into(),
            )),
        }
    }

    /// Emits the next chunk of the front stream, popping it when finished.
    /// Streams carry their resolved attribute name and topic, so this hot
    /// path touches no session state beyond the window size.
    fn advance_stream(&mut self) -> Result<Envelope, CoreError> {
        let window = self
            .ctx
            .window()
            .expect("streams only exist in chunked mode");
        let party = PartyId::DataHolder(self.holder.site());
        let stream = self
            .streams
            .front_mut()
            .expect("advance_stream requires a stream");
        let (envelope, rows, finished) = match stream {
            HolderStream::NumericBatchResponse {
                attribute,
                topic,
                masked,
                negators,
                own,
                next_row,
            } => {
                let total = own.len();
                let rows = window.min(total - *next_row);
                let started = Instant::now();
                let values = numeric::responder_fold_window(
                    masked,
                    &own[*next_row..*next_row + rows],
                    negators,
                );
                self.compute.fold_unmask_nanos += started.elapsed().as_nanos() as u64;
                let msg = PairwiseChunkMsg {
                    attribute: attribute.clone(),
                    start_row: *next_row as u32,
                    rows: rows as u32,
                    total_rows: total as u32,
                    cols: masked.len() as u32,
                    values,
                };
                *next_row += rows;
                (
                    Envelope::new(party, PartyId::ThirdParty, topic.clone(), msg.encode()),
                    rows,
                    *next_row >= total,
                )
            }
            HolderStream::AlphaResponse {
                attribute,
                topic,
                masked,
                own,
                alphabet_size,
                next_row,
            } => {
                let total = own.len();
                let rows = window.min(total - *next_row);
                let started = Instant::now();
                let bundle = alphanumeric::responder_build_bundle(
                    masked,
                    &own[*next_row..*next_row + rows],
                    *alphabet_size,
                )?;
                self.compute.fold_unmask_nanos += started.elapsed().as_nanos() as u64;
                let msg = CcmChunkMsg {
                    attribute: attribute.clone(),
                    start_row: *next_row as u32,
                    rows: rows as u32,
                    total_rows: total as u32,
                    initiator_count: masked.len() as u32,
                    ccms: bundle.ccms,
                };
                *next_row += rows;
                (
                    Envelope::new(party, PartyId::ThirdParty, topic.clone(), msg.encode()),
                    rows,
                    *next_row >= total,
                )
            }
            HolderStream::PerPairInitiate {
                attribute,
                topic,
                responder,
                values,
                rng_jk,
                rng_jt,
                next_row,
                total_rows,
            } => {
                let rows = window.min(*total_rows - *next_row);
                let started = Instant::now();
                let chunk = numeric::initiator_mask_per_pair_window(values, rows, rng_jk, rng_jt);
                self.compute.fold_unmask_nanos += started.elapsed().as_nanos() as u64;
                let msg = PairwiseChunkMsg {
                    attribute: attribute.clone(),
                    start_row: *next_row as u32,
                    rows: rows as u32,
                    total_rows: *total_rows as u32,
                    cols: values.len() as u32,
                    values: chunk,
                };
                *next_row += rows;
                (
                    Envelope::new(
                        party,
                        PartyId::DataHolder(*responder),
                        topic.clone(),
                        msg.encode(),
                    ),
                    rows,
                    *next_row >= *total_rows,
                )
            }
        };
        self.note_rows(rows);
        if finished {
            self.streams.pop_front();
        }
        Ok(envelope)
    }

    fn deliver(&mut self, envelope: &Envelope) -> Result<StepOutput, CoreError> {
        let topic = envelope
            .topic
            .strip_prefix(&self.ctx.topic_prefix)
            .unwrap_or(&envelope.topic);
        if topic == "published-result" {
            self.published = Some(PublishedResultMsg::decode(&envelope.payload)?);
            self.done = true;
            return Ok(StepOutput {
                outgoing: Vec::new(),
                progressed: true,
            });
        }
        if let Some(rest) = topic.strip_prefix("numeric/") {
            let (attr, tag, kind) = split_pair_topic(rest)?;
            let attribute = attribute_index(&self.ctx.schema, attr)?;
            let (j, _k) = parse_pair_tag(tag)?;
            return match kind {
                "masked" => self.respond_numeric(attribute, j, envelope),
                "masked-chunk" => self.respond_numeric_chunk(attribute, j, envelope),
                other => Err(CoreError::Protocol(format!(
                    "holder received unexpected numeric topic kind '{other}'"
                ))),
            };
        }
        if let Some(rest) = topic.strip_prefix("alphanumeric/") {
            let (attr, tag, kind) = split_pair_topic(rest)?;
            let attribute = attribute_index(&self.ctx.schema, attr)?;
            let (j, _k) = parse_pair_tag(tag)?;
            if kind != "masked" {
                return Err(CoreError::Protocol(format!(
                    "holder received unexpected alphanumeric topic kind '{kind}'"
                )));
            }
            return self.respond_alphanumeric(attribute, j, envelope);
        }
        Err(CoreError::Protocol(format!(
            "holder {} received unexpected topic '{}'",
            self.holder.site(),
            envelope.topic
        )))
    }

    /// Responder role for the (whole-message) numeric protocol.
    fn respond_numeric(
        &mut self,
        attribute: usize,
        initiator: u32,
        envelope: &Envelope,
    ) -> Result<StepOutput, CoreError> {
        let descriptor = self.ctx.schema.attribute_at(attribute)?;
        let name = descriptor.name.clone();
        let codec = self.ctx.config.fixed_point;
        let algorithm = self.ctx.config.rng_algorithm;
        let masked = MaskedNumericMsg::decode(&envelope.payload)?;
        let own =
            codec.encode_column(&self.holder.partition().matrix().numeric_column(attribute)?)?;
        let responder_seed = self.holder.responder_seed(initiator, &name)?;
        match (self.ctx.config.numeric_mode, self.ctx.window()) {
            (NumericMode::Batch, Some(_)) => {
                // Chunked batch response: keep the masked vector and fold
                // own rows window by window.
                let cols = masked.block.cols();
                let started = Instant::now();
                let raw = self.ctx.raw_prefix(&responder_seed, cols);
                let negators = negators_from_raw(&raw[..cols]);
                self.compute.derive_nanos += started.elapsed().as_nanos() as u64;
                let topic = self.ctx.topic(&format!(
                    "numeric/{name}/{}/pairwise-chunk",
                    pair_tag(initiator, self.holder.site())
                ));
                self.streams.push_back(HolderStream::NumericBatchResponse {
                    attribute: name,
                    topic,
                    masked: masked.block.into_values(),
                    negators,
                    own,
                    next_row: 0,
                });
                let envelope = self.advance_stream()?;
                Ok(StepOutput::emit(vec![envelope]))
            }
            (mode, _) => {
                let block = match mode {
                    NumericMode::Batch => {
                        let cols = masked.block.values().len();
                        let started = Instant::now();
                        let raw = self.ctx.raw_prefix(&responder_seed, cols);
                        let negators = negators_from_raw(&raw[..cols]);
                        self.compute.derive_nanos += started.elapsed().as_nanos() as u64;
                        let started = Instant::now();
                        let values =
                            numeric::responder_fold_window(masked.block.values(), &own, &negators);
                        self.compute.fold_unmask_nanos += started.elapsed().as_nanos() as u64;
                        PairwiseBlock::new(own.len(), cols, values)?
                    }
                    NumericMode::PerPair => {
                        let started = Instant::now();
                        let block = numeric::responder_fold_per_pair(
                            &masked.block,
                            &own,
                            &responder_seed,
                            algorithm,
                        )?;
                        self.compute.fold_unmask_nanos += started.elapsed().as_nanos() as u64;
                        block
                    }
                };
                self.note_rows(block.rows());
                let msg = PairwiseMatrixMsg {
                    attribute: name.clone(),
                    block,
                };
                let topic = self.ctx.topic(&format!(
                    "numeric/{name}/{}/pairwise",
                    pair_tag(initiator, self.holder.site())
                ));
                Ok(StepOutput::emit(vec![Envelope::new(
                    self.party(),
                    PartyId::ThirdParty,
                    topic,
                    msg.encode(),
                )]))
            }
        }
    }

    /// Responder role for a per-pair masked *chunk*: fold the window with
    /// the persistent `rng_JK` stream and forward it immediately.
    fn respond_numeric_chunk(
        &mut self,
        attribute: usize,
        initiator: u32,
        envelope: &Envelope,
    ) -> Result<StepOutput, CoreError> {
        let descriptor = self.ctx.schema.attribute_at(attribute)?;
        let name = descriptor.name.clone();
        let codec = self.ctx.config.fixed_point;
        let algorithm = self.ctx.config.rng_algorithm;
        let chunk = PairwiseChunkMsg::decode(&envelope.payload)?;
        if chunk.cols as usize != self.site_len(initiator)? {
            return Err(CoreError::Protocol(format!(
                "masked stream from site {initiator} declares {} columns, expected {}",
                chunk.cols,
                self.site_len(initiator)?
            )));
        }
        let key = (attribute, initiator);
        if !self.per_pair_responses.contains_key(&key) {
            let own = codec
                .encode_column(&self.holder.partition().matrix().numeric_column(attribute)?)?;
            let responder_seed = self.holder.responder_seed(initiator, &name)?;
            self.per_pair_responses.insert(
                key,
                PerPairResponderState {
                    own,
                    rng_jk: DynStreamRng::new(algorithm, &responder_seed),
                    rows_done: 0,
                },
            );
        }
        let state = self.per_pair_responses.get_mut(&key).expect("inserted");
        if chunk.start_row as usize != state.rows_done {
            return Err(CoreError::Protocol(format!(
                "masked chunk for rows {}.. arrived after {} rows",
                chunk.start_row, state.rows_done
            )));
        }
        if chunk.total_rows as usize != state.own.len() {
            return Err(CoreError::Protocol(format!(
                "per-pair masked stream declares {} rows for {} responder objects",
                chunk.total_rows,
                state.own.len()
            )));
        }
        let rows = chunk.rows();
        let own_window = &state.own[state.rows_done..state.rows_done + rows];
        let started = Instant::now();
        let folded = numeric::responder_fold_per_pair_window(
            &chunk.values,
            chunk.cols as usize,
            own_window,
            &mut state.rng_jk,
        )?;
        self.compute.fold_unmask_nanos += started.elapsed().as_nanos() as u64;
        state.rows_done += rows;
        let finished = state.rows_done >= state.own.len();
        let total = state.own.len();
        if finished {
            self.per_pair_responses.remove(&key);
        }
        self.note_rows(rows);
        let msg = PairwiseChunkMsg {
            attribute: name.clone(),
            start_row: chunk.start_row,
            rows: rows as u32,
            total_rows: total as u32,
            cols: chunk.cols,
            values: folded,
        };
        let topic = self.ctx.topic(&format!(
            "numeric/{name}/{}/pairwise-chunk",
            pair_tag(initiator, self.holder.site())
        ));
        Ok(StepOutput::emit(vec![Envelope::new(
            self.party(),
            PartyId::ThirdParty,
            topic,
            msg.encode(),
        )]))
    }

    /// Responder role for the alphanumeric protocol.
    fn respond_alphanumeric(
        &mut self,
        attribute: usize,
        initiator: u32,
        envelope: &Envelope,
    ) -> Result<StepOutput, CoreError> {
        let descriptor = self.ctx.schema.attribute_at(attribute)?;
        let name = descriptor.name.clone();
        let alphabet = descriptor.require_alphabet()?.clone();
        let masked = MaskedStringsMsg::decode(&envelope.payload)?;
        let own: Vec<Vec<u32>> = self
            .holder
            .partition()
            .matrix()
            .string_column(attribute)?
            .iter()
            .map(|s| alphabet.encode(s))
            .collect::<Result<_, _>>()?;
        if self.ctx.window().is_some() {
            let topic = self.ctx.topic(&format!(
                "alphanumeric/{name}/{}/ccms-chunk",
                pair_tag(initiator, self.holder.site())
            ));
            self.streams.push_back(HolderStream::AlphaResponse {
                attribute: name,
                topic,
                masked: masked.strings,
                own,
                alphabet_size: alphabet.size(),
                next_row: 0,
            });
            let envelope = self.advance_stream()?;
            return Ok(StepOutput::emit(vec![envelope]));
        }
        let started = Instant::now();
        let bundle = alphanumeric::responder_build_bundle(&masked.strings, &own, alphabet.size())?;
        self.compute.fold_unmask_nanos += started.elapsed().as_nanos() as u64;
        self.note_rows(bundle.responder_count);
        let msg = CcmBundleMsg {
            attribute: name.clone(),
            bundle,
        };
        let topic = self.ctx.topic(&format!(
            "alphanumeric/{name}/{}/ccms",
            pair_tag(initiator, self.holder.site())
        ));
        Ok(StepOutput::emit(vec![Envelope::new(
            self.party(),
            PartyId::ThirdParty,
            topic,
            msg.encode(),
        )]))
    }
}

// ---------------------------------------------------------------------------
// Third-party machine
// ---------------------------------------------------------------------------

/// Progress of one in-flight pairwise stream at the third party.
#[derive(Debug)]
struct PairProgress {
    rows_done: usize,
    /// Batch mode: the reusable additive-mask prefix.
    masks: Option<Vec<u64>>,
    /// Per-pair mode: the sequential unmasking stream.
    rng_jt: Option<DynStreamRng>,
}

/// Per-attribute construction state at the third party.
#[derive(Debug)]
struct AttrProgress {
    /// Pairwise kinds: the global accumulator being filled.
    matrix: Option<CondensedDistanceMatrix>,
    /// Categorical: buffered encrypted columns until all sites reported.
    columns: BTreeMap<usize, Vec<Tag128>>,
    locals_pending: usize,
    pairs_pending: usize,
    pairs: HashMap<(u32, u32), PairProgress>,
    /// Sites whose local matrix has been folded (duplicate rejection).
    locals_received: BTreeSet<u32>,
    /// Pairs whose cross-site block has completed (duplicate rejection).
    pairs_done: BTreeSet<(u32, u32)>,
    complete: bool,
}

/// The third party as a non-blocking state machine.
///
/// Folds every local matrix, encrypted column and pairwise block (or
/// chunk) into per-attribute accumulators as they arrive; when an
/// attribute completes it is either retained (legacy outcome) or folded
/// straight into the final-matrix accumulator and dropped (bounded
/// memory). Once every attribute is complete and every holder's
/// clustering choice has arrived, the machine clusters and publishes.
#[derive(Debug)]
pub struct ThirdPartyMachine {
    ctx: SessionContext,
    keys: ThirdPartyKeys,
    index: ObjectIndex,
    site_sizes: Vec<(u32, usize)>,
    /// Canonical initiation pairs (earlier site-list position initiates to
    /// later), the only pair tags the machine accepts: a transposed tag
    /// would otherwise bypass deduplication and fold into wrong ranges.
    expected_pairs: BTreeSet<(u32, u32)>,
    attrs: Vec<AttrProgress>,
    /// Completed attribute matrices not yet folded/retained, keyed by
    /// attribute index (attributes can complete slightly out of schema
    /// order under concurrent scheduling; folds stay in schema order so
    /// float summation matches the batch merge exactly).
    finished: BTreeMap<usize, CondensedDistanceMatrix>,
    next_fold: usize,
    retained: Vec<Option<AttributeDissimilarity>>,
    merge: MergeAccumulator,
    agreed: Option<ClusteringRequest>,
    /// Sites whose clustering choice has arrived (duplicate rejection: the
    /// all-holders gate must count distinct holders, not messages).
    choice_sites: BTreeSet<u32>,
    outcome: Option<(ClusteringResult, DissimilarityMatrix)>,
    publish_pending: bool,
    done: bool,
    peak_rows: usize,
    compute: ComputeStats,
}

impl ThirdPartyMachine {
    /// Creates the machine for a session covering `site_sizes` (session
    /// order).
    pub fn new(
        ctx: SessionContext,
        keys: ThirdPartyKeys,
        site_sizes: &[(u32, usize)],
    ) -> Result<Self, CoreError> {
        // The streaming path indexes the weight vector by attribute as each
        // attribute completes; reject a malformed request up front instead
        // of mid-protocol.
        ctx.request.weights.validate_for(&ctx.schema)?;
        let index = ObjectIndex::from_site_sizes(site_sizes);
        if index.is_empty() {
            return Err(CoreError::EmptyInput);
        }
        let holder_count = site_sizes.len();
        let pair_count = holder_count * (holder_count - 1) / 2;
        let mut expected_pairs = BTreeSet::new();
        for (i, &(initiator, _)) in site_sizes.iter().enumerate() {
            for &(responder, _) in site_sizes.iter().skip(i + 1) {
                expected_pairs.insert((initiator, responder));
            }
        }
        let attrs = ctx
            .schema
            .attributes()
            .iter()
            .map(|d| AttrProgress {
                matrix: match d.kind {
                    AttributeKind::Categorical => None,
                    _ => Some(CondensedDistanceMatrix::zeros(index.len())),
                },
                columns: BTreeMap::new(),
                locals_pending: holder_count,
                pairs_pending: pair_count,
                pairs: HashMap::new(),
                locals_received: BTreeSet::new(),
                pairs_done: BTreeSet::new(),
                complete: false,
            })
            .collect();
        let attr_count = ctx.schema.len();
        let n = index.len();
        Ok(ThirdPartyMachine {
            ctx,
            keys,
            index,
            site_sizes: site_sizes.to_vec(),
            expected_pairs,
            attrs,
            finished: BTreeMap::new(),
            next_fold: 0,
            retained: (0..attr_count).map(|_| None).collect(),
            merge: MergeAccumulator::new(n),
            agreed: None,
            choice_sites: BTreeSet::new(),
            outcome: None,
            publish_pending: false,
            done: false,
            peak_rows: 0,
            compute: ComputeStats::default(),
        })
    }

    /// The party this machine plays.
    pub fn party(&self) -> PartyId {
        PartyId::ThirdParty
    }

    /// Whether the result has been published.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Largest number of pairwise-block rows ever buffered in one message.
    pub fn peak_buffered_rows(&self) -> usize {
        self.peak_rows
    }

    /// Wall-time breakdown of this third party's protocol compute so far.
    pub fn compute_stats(&self) -> ComputeStats {
        self.compute
    }

    /// The clustering outcome, once computed.
    pub fn outcome(&self) -> Option<&(ClusteringResult, DissimilarityMatrix)> {
        self.outcome.as_ref()
    }

    /// Consumes the machine, returning result, final matrix and (when
    /// retained) the per-attribute matrices in schema order.
    #[allow(clippy::type_complexity)]
    pub fn into_outcome(
        self,
    ) -> Result<
        (
            ClusteringResult,
            DissimilarityMatrix,
            Vec<AttributeDissimilarity>,
        ),
        CoreError,
    > {
        let (result, matrix) = self
            .outcome
            .ok_or_else(|| CoreError::Protocol("third party has not finished clustering".into()))?;
        let per_attribute = self.retained.into_iter().flatten().collect();
        Ok((result, matrix, per_attribute))
    }

    fn note_rows(&mut self, rows: usize) {
        self.peak_rows = self.peak_rows.max(rows);
    }

    fn holder_pos(&self, site: u32) -> Result<usize, CoreError> {
        self.site_sizes
            .iter()
            .position(|&(s, _)| s == site)
            .ok_or_else(|| CoreError::Protocol(format!("unknown site {site}")))
    }

    /// Advances the machine: delivers `incoming` if given, otherwise polls
    /// (which emits the published results once clustering is done).
    pub fn step(&mut self, incoming: Option<&Envelope>) -> Result<StepOutput, CoreError> {
        match incoming {
            Some(envelope) => {
                self.deliver(envelope)?;
                Ok(StepOutput {
                    outgoing: Vec::new(),
                    progressed: true,
                })
            }
            None => self.poll(),
        }
    }

    fn poll(&mut self) -> Result<StepOutput, CoreError> {
        if !self.publish_pending {
            return Ok(StepOutput::idle());
        }
        self.publish_pending = false;
        let (result, _) = self.outcome.as_ref().expect("publish implies outcome");
        let publish = PublishedResultMsg {
            clusters: result
                .clusters
                .iter()
                .map(|members| {
                    members
                        .iter()
                        .map(|o| (o.site, o.local_index as u32))
                        .collect()
                })
                .collect(),
            average_within_cluster_squared_distance: result.average_within_cluster_squared_distance,
        };
        let payload = publish.encode();
        let topic = self.ctx.topic("published-result");
        let outgoing = self
            .site_sizes
            .iter()
            .map(|&(site, _)| {
                Envelope::new(
                    self.party(),
                    PartyId::DataHolder(site),
                    topic.clone(),
                    payload.clone(),
                )
            })
            .collect();
        self.done = true;
        Ok(StepOutput::emit(outgoing))
    }

    fn deliver(&mut self, envelope: &Envelope) -> Result<(), CoreError> {
        let topic = envelope
            .topic
            .strip_prefix(&self.ctx.topic_prefix)
            .unwrap_or(&envelope.topic)
            .to_string();
        if topic == "clustering-choice" {
            let site = match envelope.from {
                PartyId::DataHolder(site) => site,
                PartyId::ThirdParty => {
                    return Err(CoreError::Protocol(
                        "third party cannot send itself a clustering choice".into(),
                    ))
                }
            };
            if !self.site_sizes.iter().any(|&(s, _)| s == site) {
                return Err(CoreError::Protocol(format!(
                    "clustering choice from unknown site {site}"
                )));
            }
            let decoded = ClusteringChoiceMsg::decode(&envelope.payload)?;
            self.agreed = Some(ClusteringRequest {
                weights: WeightVector::new(decoded.weights.clone())?,
                linkage: parse_linkage(&decoded.linkage)?,
                num_clusters: decoded.num_clusters as usize,
            });
            if !self.choice_sites.insert(site) {
                return Err(CoreError::Protocol(format!(
                    "site {site} sent its clustering choice twice"
                )));
            }
            return self.try_cluster();
        }
        if let Some(attr_name) = topic.strip_prefix("categorical/") {
            let attribute = attribute_index(&self.ctx.schema, attr_name)?;
            return self.on_categorical(attribute, envelope);
        }
        if let Some(rest) = topic.strip_prefix("local/") {
            let (attr_name, site) = rest
                .rsplit_once('/')
                .ok_or_else(|| CoreError::Protocol(format!("malformed local topic '{rest}'")))?;
            let site: u32 = site
                .parse()
                .map_err(|_| CoreError::Protocol(format!("malformed local topic '{rest}'")))?;
            let attribute = attribute_index(&self.ctx.schema, attr_name)?;
            return self.on_local(attribute, site, envelope);
        }
        if let Some(rest) = topic.strip_prefix("numeric/") {
            let (attr_name, tag, kind) = split_pair_topic(rest)?;
            let attribute = attribute_index(&self.ctx.schema, attr_name)?;
            let pair = parse_pair_tag(tag)?;
            self.check_expected_pair(pair)?;
            return match kind {
                "pairwise" => self.on_numeric_whole(attribute, pair, envelope),
                "pairwise-chunk" => self.on_numeric_chunk(attribute, pair, envelope),
                other => Err(CoreError::Protocol(format!(
                    "third party received unexpected numeric topic kind '{other}'"
                ))),
            };
        }
        if let Some(rest) = topic.strip_prefix("alphanumeric/") {
            let (attr_name, tag, kind) = split_pair_topic(rest)?;
            let attribute = attribute_index(&self.ctx.schema, attr_name)?;
            let pair = parse_pair_tag(tag)?;
            self.check_expected_pair(pair)?;
            return match kind {
                "ccms" => self.on_alpha_whole(attribute, pair, envelope),
                "ccms-chunk" => self.on_alpha_chunk(attribute, pair, envelope),
                other => Err(CoreError::Protocol(format!(
                    "third party received unexpected alphanumeric topic kind '{other}'"
                ))),
            };
        }
        Err(CoreError::Protocol(format!(
            "third party received unexpected topic '{}'",
            envelope.topic
        )))
    }

    fn on_categorical(&mut self, attribute: usize, envelope: &Envelope) -> Result<(), CoreError> {
        let decoded = EncryptedColumnMsg::decode(&envelope.payload)?;
        let site = match envelope.from {
            PartyId::DataHolder(site) => site,
            PartyId::ThirdParty => {
                return Err(CoreError::Protocol(
                    "third party cannot send itself a categorical column".into(),
                ))
            }
        };
        let pos = self.holder_pos(site)?;
        let tags: Vec<Tag128> = decoded
            .tags
            .iter()
            .map(|raw| Tag128 {
                lo: u64::from_le_bytes(raw[0..8].try_into().expect("16-byte tag")),
                hi: u64::from_le_bytes(raw[8..16].try_into().expect("16-byte tag")),
            })
            .collect();
        let attr = &mut self.attrs[attribute];
        if attr.complete || attr.columns.insert(pos, tags).is_some() {
            return Err(CoreError::Protocol(format!(
                "site {site} sent its encrypted column twice for attribute {attribute}"
            )));
        }
        if attr.columns.len() == self.site_sizes.len() {
            let columns: Vec<categorical::EncryptedColumn> = attr
                .columns
                .values()
                .map(|tags| categorical::EncryptedColumn { tags: tags.clone() })
                .collect();
            let matrix = categorical::third_party_dissimilarity(&columns)?;
            attr.columns.clear();
            attr.complete = true;
            self.finish_attribute(attribute, matrix)?;
        }
        Ok(())
    }

    fn on_local(
        &mut self,
        attribute: usize,
        site: u32,
        envelope: &Envelope,
    ) -> Result<(), CoreError> {
        let decoded = LocalMatrixMsg::decode(&envelope.payload)?;
        let local =
            CondensedDistanceMatrix::from_condensed(decoded.objects as usize, decoded.condensed)?;
        let range = self.index.site_range(site)?;
        if range.len() != local.len() {
            return Err(CoreError::Protocol(format!(
                "site {site} sent a local matrix over {} objects, expected {}",
                local.len(),
                range.len()
            )));
        }
        let attr = &mut self.attrs[attribute];
        let matrix = attr
            .matrix
            .as_mut()
            .ok_or_else(|| CoreError::Protocol("local matrix for categorical attribute".into()))?;
        for i in 1..local.len() {
            for j in 0..i {
                matrix.set(range.start + i, range.start + j, local.get(i, j));
            }
        }
        if !attr.locals_received.insert(site) {
            return Err(CoreError::Protocol(format!(
                "site {site} sent its local matrix twice for attribute {attribute}"
            )));
        }
        attr.locals_pending -= 1;
        self.check_pairwise_attr_complete(attribute)
    }

    /// Folds a decoded rectangular block of distances (responder rows ×
    /// initiator columns) into the attribute accumulator at `start_row`.
    fn fold_pair_rows(
        &mut self,
        attribute: usize,
        pair: (u32, u32),
        start_row: usize,
        cols: usize,
        values: &[f64],
    ) -> Result<(), CoreError> {
        let (j, k) = pair;
        let range_j = self.index.site_range(j)?;
        let range_k = self.index.site_range(k)?;
        let attr = &mut self.attrs[attribute];
        let matrix = attr
            .matrix
            .as_mut()
            .ok_or_else(|| CoreError::Protocol("pairwise rows for categorical attribute".into()))?;
        matrix
            .set_block(range_k.start + start_row, range_j.start, cols, values)
            .map_err(CoreError::from)
    }

    fn pair_rows_expected(&self, responder: u32) -> Result<usize, CoreError> {
        self.site_sizes
            .iter()
            .find(|&&(s, _)| s == responder)
            .map(|&(_, n)| n)
            .ok_or_else(|| CoreError::Protocol(format!("unknown site {responder}")))
    }

    /// Rejects pair tags that are not canonical initiations (earlier
    /// site-list position → later): a transposed or self-referential tag
    /// would bypass per-pair bookkeeping and fold into wrong ranges.
    fn check_expected_pair(&self, pair: (u32, u32)) -> Result<(), CoreError> {
        if self.expected_pairs.contains(&pair) {
            Ok(())
        } else {
            Err(CoreError::Protocol(format!(
                "unexpected pair tag {}-{}: not a canonical initiation pair",
                pair.0, pair.1
            )))
        }
    }

    fn complete_pair(&mut self, attribute: usize, pair: (u32, u32)) -> Result<(), CoreError> {
        let attr = &mut self.attrs[attribute];
        if !attr.pairs_done.insert(pair) {
            return Err(CoreError::Protocol(format!(
                "duplicate pairwise result {}-{} for attribute {attribute}",
                pair.0, pair.1
            )));
        }
        attr.pairs.remove(&pair);
        attr.pairs_pending -= 1;
        self.check_pairwise_attr_complete(attribute)
    }

    fn on_numeric_whole(
        &mut self,
        attribute: usize,
        pair: (u32, u32),
        envelope: &Envelope,
    ) -> Result<(), CoreError> {
        let descriptor = self.ctx.schema.attribute_at(attribute)?;
        let name = descriptor.name.clone();
        let codec = self.ctx.config.fixed_point;
        let algorithm = self.ctx.config.rng_algorithm;
        let pairwise = PairwiseMatrixMsg::decode(&envelope.payload)?;
        if pairwise.block.rows() != self.pair_rows_expected(pair.1)? {
            return Err(CoreError::Protocol(format!(
                "pairwise matrix for pair {}-{} has {} rows, expected {}",
                pair.0,
                pair.1,
                pairwise.block.rows(),
                self.pair_rows_expected(pair.1)?
            )));
        }
        if pairwise.block.cols() != self.pair_rows_expected(pair.0)? {
            return Err(CoreError::Protocol(format!(
                "pairwise matrix for pair {}-{} has {} columns, expected {}",
                pair.0,
                pair.1,
                pairwise.block.cols(),
                self.pair_rows_expected(pair.0)?
            )));
        }
        let tp_seed = self.keys.seed_for(pair.0, &name)?;
        let distances = match self.ctx.config.numeric_mode {
            NumericMode::Batch => {
                let cols = pairwise.block.cols();
                let started = Instant::now();
                let masks = self.ctx.raw_prefix(&tp_seed, cols);
                self.compute.derive_nanos += started.elapsed().as_nanos() as u64;
                let started = Instant::now();
                let values =
                    numeric::third_party_unmask_window(pairwise.block.values(), &masks[..cols]);
                self.compute.fold_unmask_nanos += started.elapsed().as_nanos() as u64;
                PairwiseBlock::new(pairwise.block.rows(), cols, values)?
            }
            NumericMode::PerPair => {
                let started = Instant::now();
                let block =
                    numeric::third_party_unmask_per_pair(&pairwise.block, &tp_seed, algorithm);
                self.compute.fold_unmask_nanos += started.elapsed().as_nanos() as u64;
                block
            }
        };
        self.note_rows(distances.rows());
        let decoded = distances.map(|&d| codec.decode_distance(d));
        self.fold_pair_rows(attribute, pair, 0, decoded.cols(), decoded.values())?;
        self.complete_pair(attribute, pair)
    }

    fn on_numeric_chunk(
        &mut self,
        attribute: usize,
        pair: (u32, u32),
        envelope: &Envelope,
    ) -> Result<(), CoreError> {
        let descriptor = self.ctx.schema.attribute_at(attribute)?;
        let name = descriptor.name.clone();
        let codec = self.ctx.config.fixed_point;
        let algorithm = self.ctx.config.rng_algorithm;
        let mode = self.ctx.config.numeric_mode;
        let chunk = PairwiseChunkMsg::decode(&envelope.payload)?;
        let expected_rows = self.pair_rows_expected(pair.1)?;
        if chunk.total_rows as usize != expected_rows {
            return Err(CoreError::Protocol(format!(
                "pairwise stream for pair {}-{} declares {} rows, expected {expected_rows}",
                pair.0, pair.1, chunk.total_rows
            )));
        }
        // A wrong column count would scatter into the wrong cross-block (or
        // desynchronise the cached batch mask prefix) — reject it here, the
        // one place that knows the initiator's true object count.
        let expected_cols = self.pair_rows_expected(pair.0)?;
        if chunk.cols as usize != expected_cols {
            return Err(CoreError::Protocol(format!(
                "pairwise stream for pair {}-{} declares {} columns, expected {expected_cols}",
                pair.0, pair.1, chunk.cols
            )));
        }
        let tp_seed = self.keys.seed_for(pair.0, &name)?;
        let attr = &mut self.attrs[attribute];
        let progress = attr.pairs.entry(pair).or_insert_with(|| PairProgress {
            rows_done: 0,
            masks: None,
            rng_jt: None,
        });
        if chunk.start_row as usize != progress.rows_done {
            return Err(CoreError::Protocol(format!(
                "pairwise chunk for rows {}.. arrived after {} rows",
                chunk.start_row, progress.rows_done
            )));
        }
        let unmasked: Vec<u64> = match mode {
            NumericMode::Batch => {
                if progress.masks.is_none() {
                    let cols = chunk.cols as usize;
                    let started = Instant::now();
                    let raw = self.ctx.raw_prefix(&tp_seed, cols);
                    progress.masks = Some(raw[..cols].to_vec());
                    self.compute.derive_nanos += started.elapsed().as_nanos() as u64;
                }
                let masks = progress.masks.as_ref().expect("just ensured");
                let started = Instant::now();
                let unmasked = numeric::third_party_unmask_window(&chunk.values, masks);
                self.compute.fold_unmask_nanos += started.elapsed().as_nanos() as u64;
                unmasked
            }
            NumericMode::PerPair => {
                let rng = progress
                    .rng_jt
                    .get_or_insert_with(|| DynStreamRng::new(algorithm, &tp_seed));
                let started = Instant::now();
                let unmasked = numeric::third_party_unmask_per_pair_window(&chunk.values, rng);
                self.compute.fold_unmask_nanos += started.elapsed().as_nanos() as u64;
                unmasked
            }
        };
        progress.rows_done += chunk.rows();
        let finished = progress.rows_done >= expected_rows;
        let decoded: Vec<f64> = unmasked.iter().map(|&d| codec.decode_distance(d)).collect();
        self.note_rows(chunk.rows());
        self.fold_pair_rows(
            attribute,
            pair,
            chunk.start_row as usize,
            chunk.cols as usize,
            &decoded,
        )?;
        if finished {
            self.complete_pair(attribute, pair)?;
        }
        Ok(())
    }

    fn on_alpha_whole(
        &mut self,
        attribute: usize,
        pair: (u32, u32),
        envelope: &Envelope,
    ) -> Result<(), CoreError> {
        let descriptor = self.ctx.schema.attribute_at(attribute)?;
        let name = descriptor.name.clone();
        let alphabet = descriptor.require_alphabet()?.clone();
        let bundle = CcmBundleMsg::decode(&envelope.payload)?;
        if bundle.bundle.initiator_count != self.pair_rows_expected(pair.0)? {
            return Err(CoreError::Protocol(format!(
                "CCM bundle for pair {}-{} covers {} initiator objects, expected {}",
                pair.0,
                pair.1,
                bundle.bundle.initiator_count,
                self.pair_rows_expected(pair.0)?
            )));
        }
        let tp_seed = self.keys.seed_for(pair.0, &name)?;
        let max_cols = bundle
            .bundle
            .ccms
            .iter()
            .map(|c| c.initiator_len)
            .max()
            .unwrap_or(0);
        let started = Instant::now();
        let raw = self.ctx.raw_prefix(&tp_seed, max_cols);
        let offsets = offsets_from_raw(&raw[..max_cols], alphabet.size());
        self.compute.derive_nanos += started.elapsed().as_nanos() as u64;
        let started = Instant::now();
        let distances = alphanumeric::third_party_edit_distances_with_offsets(
            &bundle.bundle,
            alphabet.size(),
            &offsets,
        )?;
        self.compute.fold_unmask_nanos += started.elapsed().as_nanos() as u64;
        if distances.rows() != self.pair_rows_expected(pair.1)? {
            return Err(CoreError::Protocol(format!(
                "CCM bundle for pair {}-{} covers {} responder objects, expected {}",
                pair.0,
                pair.1,
                distances.rows(),
                self.pair_rows_expected(pair.1)?
            )));
        }
        self.note_rows(distances.rows());
        let decoded = distances.map(|&d| f64::from(d));
        self.fold_pair_rows(attribute, pair, 0, decoded.cols(), decoded.values())?;
        self.complete_pair(attribute, pair)
    }

    fn on_alpha_chunk(
        &mut self,
        attribute: usize,
        pair: (u32, u32),
        envelope: &Envelope,
    ) -> Result<(), CoreError> {
        let descriptor = self.ctx.schema.attribute_at(attribute)?;
        let name = descriptor.name.clone();
        let alphabet = descriptor.require_alphabet()?.clone();
        let chunk = CcmChunkMsg::decode(&envelope.payload)?;
        let expected_rows = self.pair_rows_expected(pair.1)?;
        if chunk.total_rows as usize != expected_rows {
            return Err(CoreError::Protocol(format!(
                "CCM stream for pair {}-{} declares {} rows, expected {expected_rows}",
                pair.0, pair.1, chunk.total_rows
            )));
        }
        let expected_cols = self.pair_rows_expected(pair.0)?;
        if chunk.initiator_count as usize != expected_cols {
            return Err(CoreError::Protocol(format!(
                "CCM stream for pair {}-{} declares {} initiator objects, expected {expected_cols}",
                pair.0, pair.1, chunk.initiator_count
            )));
        }
        let attr = &mut self.attrs[attribute];
        let progress = attr.pairs.entry(pair).or_insert_with(|| PairProgress {
            rows_done: 0,
            masks: None,
            rng_jt: None,
        });
        if chunk.start_row as usize != progress.rows_done {
            return Err(CoreError::Protocol(format!(
                "CCM chunk for rows {}.. arrived after {} rows",
                chunk.start_row, progress.rows_done
            )));
        }
        let rows = chunk.rows();
        progress.rows_done += rows;
        let finished = progress.rows_done >= expected_rows;
        let tp_seed = self.keys.seed_for(pair.0, &name)?;
        // The offset prefix is a fixed stream prefix, so unmasking a window
        // of CCMs draws exactly the same offsets as unmasking the whole
        // bundle would.
        let window = alphanumeric::MaskedCcmBundle {
            responder_count: rows,
            initiator_count: chunk.initiator_count as usize,
            ccms: chunk.ccms,
        };
        let max_cols = window
            .ccms
            .iter()
            .map(|c| c.initiator_len)
            .max()
            .unwrap_or(0);
        let started = Instant::now();
        let raw = self.ctx.raw_prefix(&tp_seed, max_cols);
        let offsets = offsets_from_raw(&raw[..max_cols], alphabet.size());
        self.compute.derive_nanos += started.elapsed().as_nanos() as u64;
        let started = Instant::now();
        let distances = alphanumeric::third_party_edit_distances_with_offsets(
            &window,
            alphabet.size(),
            &offsets,
        )?;
        self.compute.fold_unmask_nanos += started.elapsed().as_nanos() as u64;
        self.note_rows(rows);
        let decoded = distances.map(|&d| f64::from(d));
        self.fold_pair_rows(
            attribute,
            pair,
            chunk.start_row as usize,
            decoded.cols(),
            decoded.values(),
        )?;
        if finished {
            self.complete_pair(attribute, pair)?;
        }
        Ok(())
    }

    fn check_pairwise_attr_complete(&mut self, attribute: usize) -> Result<(), CoreError> {
        let attr = &mut self.attrs[attribute];
        if attr.complete || attr.locals_pending > 0 || attr.pairs_pending > 0 {
            return Ok(());
        }
        attr.complete = true;
        let matrix = attr.matrix.take().expect("pairwise attribute has a matrix");
        self.finish_attribute(attribute, matrix)
    }

    /// Retains or folds a completed attribute matrix, then checks whether
    /// clustering can start.
    fn finish_attribute(
        &mut self,
        attribute: usize,
        matrix: CondensedDistanceMatrix,
    ) -> Result<(), CoreError> {
        if self.ctx.retain_attributes {
            let name = self.ctx.schema.attribute_at(attribute)?.name.clone();
            self.retained[attribute] = Some(AttributeDissimilarity::new(name, matrix));
        } else {
            // Fold strictly in schema order so the float accumulation
            // matches the batch merge bit for bit.
            self.finished.insert(attribute, matrix);
            let started = Instant::now();
            while let Some(matrix) = self.finished.remove(&self.next_fold) {
                let weight = self.ctx.request.weights.weights()[self.next_fold];
                push_normalized(&mut self.merge, &matrix, weight)?;
                self.next_fold += 1;
            }
            self.compute.merge_nanos += started.elapsed().as_nanos() as u64;
        }
        self.try_cluster()
    }

    fn try_cluster(&mut self) -> Result<(), CoreError> {
        if self.outcome.is_some()
            || self.choice_sites.len() < self.site_sizes.len()
            || self.attrs.iter().any(|a| !a.complete)
        {
            return Ok(());
        }
        let agreed = self
            .agreed
            .clone()
            .unwrap_or_else(|| self.ctx.request.clone());
        let (result, final_matrix) = if self.ctx.retain_attributes {
            let per_attribute: Vec<AttributeDissimilarity> =
                self.retained.iter().flatten().cloned().collect();
            let driver = ThirdPartyDriver::new(self.ctx.schema.clone(), self.ctx.config);
            let output = ConstructionOutput {
                index: self.index.clone(),
                per_attribute,
            };
            driver.cluster(&output, &agreed)?
        } else {
            let merged = std::mem::replace(&mut self.merge, MergeAccumulator::new(0));
            let started = Instant::now();
            let finished = merged.finish();
            self.compute.merge_nanos += started.elapsed().as_nanos() as u64;
            let final_matrix = DissimilarityMatrix::new(self.index.clone(), finished)?;
            ThirdPartyDriver::cluster_matrix(final_matrix, &agreed)?
        };
        self.outcome = Some((result, final_matrix));
        self.publish_pending = true;
        Ok(())
    }
}

/// Folds one attribute matrix into the accumulator — the parallel reduction
/// when the `parallel` feature is on, the sequential fold otherwise. Both
/// are bit-identical for every input (same per-element fold order within
/// each partition, deterministic combine order), so the feature changes
/// wall time only, never the merged matrix.
#[cfg(feature = "parallel")]
fn push_normalized(
    merge: &mut MergeAccumulator,
    matrix: &CondensedDistanceMatrix,
    weight: f64,
) -> Result<(), CoreError> {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    merge.push_normalized_parallel(matrix, weight, threads)?;
    Ok(())
}

#[cfg(not(feature = "parallel"))]
fn push_normalized(
    merge: &mut MergeAccumulator,
    matrix: &CondensedDistanceMatrix,
    weight: f64,
) -> Result<(), CoreError> {
    merge.push_normalized(matrix, weight)?;
    Ok(())
}
