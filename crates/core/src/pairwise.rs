//! Flat row-major pairwise comparison blocks.
//!
//! Every comparison protocol materialises, per attribute and per ordered
//! holder pair `(DH_J, DH_K)`, a `|DH_K| × |DH_J|` matrix: masked differences
//! (numeric), edit distances (alphanumeric) or decoded attribute-unit
//! distances (both, on the third party's side). The seed implementation
//! carried these as `Vec<Vec<_>>`, costing one heap allocation per row and
//! scattering rows across the heap.
//!
//! [`PairwiseBlock`] replaces that shape everywhere: a single contiguous
//! buffer of `rows · cols` cells in **row-major** order (row `m` = the
//! responder `DH_K`'s object `m`, column `n` = the initiator `DH_J`'s object
//! `n`, matching Figures 5–6). One allocation per holder pair, cache-linear
//! iteration, and the flat buffer is exactly the wire layout of
//! [`PairwiseMatrixMsg`](crate::protocol::messages::PairwiseMatrixMsg), so
//! the codec moves it without re-chunking.
//!
//! ## Layout
//!
//! ```text
//! cell (m, n)  ->  values[m * cols + n]         (0 ≤ m < rows, 0 ≤ n < cols)
//! row m        ->  values[m * cols .. (m + 1) * cols]
//! ```

use crate::error::CoreError;

/// A dense `rows × cols` pairwise matrix stored row-major in one allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairwiseBlock<T> {
    rows: usize,
    cols: usize,
    values: Vec<T>,
}

impl<T> PairwiseBlock<T> {
    /// Wraps a flat row-major buffer, validating its length.
    pub fn new(rows: usize, cols: usize, values: Vec<T>) -> Result<Self, CoreError> {
        if values.len() != rows * cols {
            return Err(CoreError::Protocol(format!(
                "pairwise block claims {rows}×{cols} but carries {} values",
                values.len()
            )));
        }
        Ok(PairwiseBlock { rows, cols, values })
    }

    /// Builds a block by evaluating `f(m, n)` for every cell, row-major.
    pub fn from_fn<F: FnMut(usize, usize) -> T>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut values = Vec::with_capacity(rows * cols);
        for m in 0..rows {
            for n in 0..cols {
                values.push(f(m, n));
            }
        }
        PairwiseBlock { rows, cols, values }
    }

    /// Number of rows (responder objects).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (initiator objects).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the block holds zero cells.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The flat row-major buffer.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Consumes the block, returning the flat buffer (wire layout).
    pub fn into_values(self) -> Vec<T> {
        self.values
    }

    /// Row `m` as a contiguous slice.
    pub fn row(&self, m: usize) -> &[T] {
        &self.values[m * self.cols..(m + 1) * self.cols]
    }

    /// Iterator over the rows as contiguous slices (zero-width rows are
    /// yielded as empty slices, so the row count is always `rows`).
    pub fn iter_rows(&self) -> impl Iterator<Item = &[T]> {
        (0..self.rows).map(move |m| &self.values[m * self.cols..(m + 1) * self.cols])
    }

    /// Cell `(m, n)`.
    pub fn get(&self, m: usize, n: usize) -> &T {
        &self.values[m * self.cols + n]
    }

    /// Maps every cell into a new block of the same shape, preserving
    /// row-major order (single pass, single allocation).
    pub fn map<U, F: FnMut(&T) -> U>(&self, f: F) -> PairwiseBlock<U> {
        PairwiseBlock {
            rows: self.rows,
            cols: self.cols,
            values: self.values.iter().map(f).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_shape() {
        assert!(PairwiseBlock::new(2, 3, vec![0i64; 6]).is_ok());
        assert!(PairwiseBlock::new(2, 3, vec![0i64; 5]).is_err());
        assert!(PairwiseBlock::new(0, 5, Vec::<i64>::new()).is_ok());
    }

    #[test]
    fn indexing_is_row_major() {
        let block = PairwiseBlock::from_fn(3, 2, |m, n| (m * 10 + n) as i64);
        assert_eq!(block.values(), &[0, 1, 10, 11, 20, 21]);
        assert_eq!(*block.get(2, 1), 21);
        assert_eq!(block.row(1), &[10, 11]);
        let rows: Vec<&[i64]> = block.iter_rows().collect();
        assert_eq!(rows, vec![&[0, 1][..], &[10, 11], &[20, 21]]);
    }

    #[test]
    fn zero_row_blocks_keep_an_explicit_column_count() {
        let empty = PairwiseBlock::<i64>::new(0, 4, vec![]).unwrap();
        assert_eq!((empty.rows(), empty.cols()), (0, 4));
        assert!(empty.is_empty());
        assert_eq!(empty.iter_rows().count(), 0);
    }

    #[test]
    fn zero_width_rows_iterate_cleanly() {
        let block = PairwiseBlock::<u32>::new(2, 0, vec![]).unwrap();
        assert_eq!(block.rows(), 2);
        assert_eq!(block.iter_rows().count(), 2);
        assert!(block.iter_rows().all(<[u32]>::is_empty));
        assert!(block.is_empty());
    }

    #[test]
    fn map_preserves_shape_and_order() {
        let block = PairwiseBlock::from_fn(2, 2, |m, n| (m + n) as i64);
        let doubled = block.map(|&v| (v * 2) as u64);
        assert_eq!((doubled.rows(), doubled.cols()), (2, 2));
        assert_eq!(doubled.values(), &[0, 2, 2, 4]);
        assert_eq!(doubled.clone().into_values(), vec![0, 2, 2, 4]);
    }
}
