//! Published clustering results (Figure 13).
//!
//! The third party must keep the dissimilarity matrix secret (data holders
//! could combine distance scores with their own data to infer other sites'
//! values), so what it publishes is only the list of objects in each cluster
//! — identified by site-qualified ids — plus aggregate quality parameters.

use std::fmt;

use serde::{Deserialize, Serialize};

use ppc_cluster::ClusterAssignment;

use crate::dissimilarity::ObjectIndex;
use crate::error::CoreError;
use crate::record::ObjectId;

/// The result the third party publishes to every data holder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusteringResult {
    /// Cluster membership lists, by cluster id.
    pub clusters: Vec<Vec<ObjectId>>,
    /// The paper's published quality parameter: average squared distance
    /// between members of the same cluster.
    pub average_within_cluster_squared_distance: f64,
    /// Mean silhouette coefficient (additional quality parameter).
    pub silhouette: Option<f64>,
}

impl ClusteringResult {
    /// Builds the published result from a flat assignment and the object
    /// index, keeping only membership lists and aggregate quality values.
    pub fn from_assignment(
        assignment: &ClusterAssignment,
        index: &ObjectIndex,
        average_within_cluster_squared_distance: f64,
        silhouette: Option<f64>,
    ) -> Result<Self, CoreError> {
        if assignment.len() != index.len() {
            return Err(CoreError::Protocol(format!(
                "assignment covers {} objects, index covers {}",
                assignment.len(),
                index.len()
            )));
        }
        let mut clusters = vec![Vec::new(); assignment.num_clusters()];
        for (global, &label) in assignment.labels().iter().enumerate() {
            clusters[label].push(index.object_id(global)?);
        }
        for members in &mut clusters {
            members.sort();
        }
        Ok(ClusteringResult {
            clusters,
            average_within_cluster_squared_distance,
            silhouette,
        })
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Total number of clustered objects.
    pub fn num_objects(&self) -> usize {
        self.clusters.iter().map(Vec::len).sum()
    }

    /// The cluster id containing `object`, if any.
    pub fn cluster_of(&self, object: ObjectId) -> Option<usize> {
        self.clusters
            .iter()
            .position(|members| members.contains(&object))
    }

    /// Only the objects owned by `site` in each cluster — what a single data
    /// holder learns about its own records.
    pub fn view_for_site(&self, site: u32) -> Vec<Vec<ObjectId>> {
        self.clusters
            .iter()
            .map(|members| members.iter().copied().filter(|o| o.site == site).collect())
            .collect()
    }
}

impl fmt::Display for ClusteringResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, members) in self.clusters.iter().enumerate() {
            let labels: Vec<String> = members.iter().map(ToString::to_string).collect();
            writeln!(f, "Cluster{}  {}", i + 1, labels.join(", "))?;
        }
        write!(
            f,
            "avg within-cluster squared distance: {:.6}",
            self.average_within_cluster_squared_distance
        )?;
        if let Some(s) = self.silhouette {
            write!(f, ", silhouette: {s:.4}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ClusteringResult {
        let index = ObjectIndex::from_site_sizes(&[(0, 3), (1, 4), (2, 3)]);
        // Mirror Figure 13's shape: three clusters mixing objects of all sites.
        let labels = vec![0, 2, 0, 2, 1, 1, 0, 1, 1, 0];
        let assignment = ClusterAssignment::from_labels(&labels);
        ClusteringResult::from_assignment(&assignment, &index, 0.04, Some(0.8)).unwrap()
    }

    #[test]
    fn membership_lists_use_site_qualified_labels() {
        let r = sample();
        assert_eq!(r.num_clusters(), 3);
        assert_eq!(r.num_objects(), 10);
        let rendered = r.to_string();
        assert!(rendered.contains("Cluster1"));
        assert!(rendered.contains("A1"));
        assert!(rendered.contains("B2"));
        assert!(rendered.contains("C3"));
        assert!(rendered.contains("squared distance"));
        assert!(rendered.contains("silhouette"));
    }

    #[test]
    fn cluster_lookup_and_site_views() {
        let r = sample();
        let a1 = ObjectId::new(0, 0);
        let cluster = r.cluster_of(a1).unwrap();
        assert!(r.clusters[cluster].contains(&a1));
        assert_eq!(r.cluster_of(ObjectId::new(9, 0)), None);
        let site0 = r.view_for_site(0);
        assert_eq!(site0.len(), 3);
        let total: usize = site0.iter().map(Vec::len).sum();
        assert_eq!(total, 3); // site 0 owns 3 objects
        assert!(site0.iter().flatten().all(|o| o.site == 0));
    }

    #[test]
    fn from_assignment_validates_sizes() {
        let index = ObjectIndex::from_site_sizes(&[(0, 2)]);
        let assignment = ClusterAssignment::from_labels(&[0, 0, 1]);
        assert!(ClusteringResult::from_assignment(&assignment, &index, 0.0, None).is_err());
    }
}
