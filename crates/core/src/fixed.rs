//! Fixed-point encoding of numeric attribute values.
//!
//! The numeric comparison protocol exchanges *masked integers*: the additive
//! mask is a uniformly random 64-bit value acting as a one-time pad over
//! `Z_{2^64}`, and the third party recovers the exact distance by modular
//! subtraction. Floating-point addition would not be exactly invertible
//! under such large masks, so numeric values are first scaled to a signed
//! fixed-point representation. The scale is configurable; the default keeps
//! six decimal digits, far more precision than the normalised dissimilarity
//! matrix retains anyway.
//!
//! The paper's own pseudocode works directly on integers ("for other data
//! types, i.e. real values, only the data type … needs to be changed"); the
//! fixed-point codec is the substitution that makes the real-valued case
//! exact.

use serde::{Deserialize, Serialize};

use crate::error::CoreError;

/// Converts between `f64` attribute values and the `i64` fixed-point form
/// the protocol exchanges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FixedPointCodec {
    scale: f64,
}

impl Default for FixedPointCodec {
    fn default() -> Self {
        FixedPointCodec { scale: 1_000_000.0 }
    }
}

impl FixedPointCodec {
    /// Creates a codec with the given scale (values are multiplied by the
    /// scale and rounded to the nearest integer).
    pub fn new(scale: f64) -> Result<Self, CoreError> {
        if !scale.is_finite() || scale <= 0.0 {
            return Err(CoreError::Protocol(format!(
                "fixed-point scale must be positive and finite, got {scale}"
            )));
        }
        Ok(FixedPointCodec { scale })
    }

    /// The scale factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Encodes a value; errors if it is not finite or too large to be
    /// represented without overflow (the protocol's wrapping arithmetic
    /// needs |x| well below 2^62).
    pub fn encode(&self, value: f64) -> Result<i64, CoreError> {
        if !value.is_finite() {
            return Err(CoreError::FixedPointOverflow { value });
        }
        let scaled = value * self.scale;
        // Keep a generous safety margin so |x − y| can never overflow i64.
        const LIMIT: f64 = (1i64 << 61) as f64;
        if scaled.abs() >= LIMIT {
            return Err(CoreError::FixedPointOverflow { value });
        }
        Ok(scaled.round() as i64)
    }

    /// Encodes a whole column of values.
    pub fn encode_column(&self, values: &[f64]) -> Result<Vec<i64>, CoreError> {
        values.iter().map(|&v| self.encode(v)).collect()
    }

    /// Decodes a fixed-point value back to `f64`.
    pub fn decode(&self, value: i64) -> f64 {
        value as f64 / self.scale
    }

    /// Decodes an unsigned distance produced by the protocol.
    pub fn decode_distance(&self, value: u64) -> f64 {
        value as f64 / self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(FixedPointCodec::new(0.0).is_err());
        assert!(FixedPointCodec::new(-3.0).is_err());
        assert!(FixedPointCodec::new(f64::INFINITY).is_err());
        assert!(FixedPointCodec::new(1000.0).is_ok());
        assert_eq!(FixedPointCodec::default().scale(), 1_000_000.0);
    }

    #[test]
    fn encode_decode_roundtrip_within_precision() {
        let codec = FixedPointCodec::default();
        for v in [0.0, 1.5, -273.15, 98765.4321, 1e-6, -1e-6] {
            let encoded = codec.encode(v).unwrap();
            assert!((codec.decode(encoded) - v).abs() < 1e-6, "value {v}");
        }
    }

    #[test]
    fn distances_are_exact_in_fixed_point() {
        let codec = FixedPointCodec::new(1000.0).unwrap();
        let a = codec.encode(10.125).unwrap();
        let b = codec.encode(3.5).unwrap();
        assert_eq!(a - b, 6625);
        assert!((codec.decode_distance((a - b) as u64) - 6.625).abs() < 1e-9);
    }

    #[test]
    fn overflow_and_non_finite_values_rejected() {
        let codec = FixedPointCodec::default();
        assert!(codec.encode(f64::NAN).is_err());
        assert!(codec.encode(f64::INFINITY).is_err());
        assert!(codec.encode(1e60).is_err());
        assert!(codec.encode(4e12).is_err()); // 4e12 · 1e6 = 4e18 exceeds the 2^61 margin
        assert!(codec.encode(1e12).is_ok()); // 1e12 · 1e6 = 1e18 still fits
    }

    #[test]
    fn encode_column_propagates_errors() {
        let codec = FixedPointCodec::default();
        assert!(codec.encode_column(&[1.0, 2.0, f64::NAN]).is_err());
        assert_eq!(
            codec.encode_column(&[1.0, 2.0]).unwrap(),
            vec![1_000_000, 2_000_000]
        );
    }
}
