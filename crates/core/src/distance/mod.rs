//! Comparison functions for the three attribute types (§2.3).
//!
//! These are the *public* comparison functions every party (including the
//! third party) knows; the protocols in [`crate::protocol`] compute exactly
//! these distances without revealing the compared values.

pub mod edit;

pub use edit::{edit_distance, edit_distance_from_ccm};

use crate::error::CoreError;
use crate::schema::AttributeDescriptor;
use crate::value::{AttributeKind, AttributeValue};

/// Distance between two numeric values: `|x − y|`.
pub fn numeric_distance(x: f64, y: f64) -> f64 {
    (x - y).abs()
}

/// Distance between two categorical values: 0 if equal, 1 otherwise.
pub fn categorical_distance(a: &str, b: &str) -> f64 {
    if a == b {
        0.0
    } else {
        1.0
    }
}

/// Distance between two alphanumeric values: the edit distance.
pub fn alphanumeric_distance(a: &str, b: &str) -> f64 {
    edit_distance(a, b) as f64
}

/// Distance between two values of the same attribute, dispatching on the
/// attribute's declared kind.
pub fn attribute_distance(
    descriptor: &AttributeDescriptor,
    a: &AttributeValue,
    b: &AttributeValue,
) -> Result<f64, CoreError> {
    descriptor.validate_value(a)?;
    descriptor.validate_value(b)?;
    Ok(match descriptor.kind {
        AttributeKind::Numeric => numeric_distance(
            a.as_numeric().expect("validated"),
            b.as_numeric().expect("validated"),
        ),
        AttributeKind::Categorical => categorical_distance(
            a.as_categorical().expect("validated"),
            b.as_categorical().expect("validated"),
        ),
        AttributeKind::Alphanumeric => alphanumeric_distance(
            a.as_alphanumeric().expect("validated"),
            b.as_alphanumeric().expect("validated"),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    #[test]
    fn numeric_distance_is_absolute_difference() {
        assert_eq!(numeric_distance(3.0, 8.0), 5.0);
        assert_eq!(numeric_distance(8.0, 3.0), 5.0);
        assert_eq!(numeric_distance(-2.5, 2.5), 5.0);
        assert_eq!(numeric_distance(7.0, 7.0), 0.0);
    }

    #[test]
    fn categorical_distance_is_equality_indicator() {
        assert_eq!(categorical_distance("A", "A"), 0.0);
        assert_eq!(categorical_distance("A", "B"), 1.0);
        assert_eq!(categorical_distance("", ""), 0.0);
    }

    #[test]
    fn alphanumeric_distance_is_edit_distance() {
        assert_eq!(alphanumeric_distance("kitten", "sitting"), 3.0);
        assert_eq!(alphanumeric_distance("acgt", "acgt"), 0.0);
    }

    #[test]
    fn attribute_distance_dispatches_and_validates() {
        let num = AttributeDescriptor::numeric("age");
        let cat = AttributeDescriptor::categorical("blood");
        let dna = AttributeDescriptor::alphanumeric("dna", Alphabet::dna());
        assert_eq!(
            attribute_distance(
                &num,
                &AttributeValue::numeric(3.0),
                &AttributeValue::numeric(8.0)
            )
            .unwrap(),
            5.0
        );
        assert_eq!(
            attribute_distance(
                &cat,
                &AttributeValue::categorical("A"),
                &AttributeValue::categorical("B")
            )
            .unwrap(),
            1.0
        );
        assert_eq!(
            attribute_distance(
                &dna,
                &AttributeValue::alphanumeric("acgt"),
                &AttributeValue::alphanumeric("aggt")
            )
            .unwrap(),
            1.0
        );
        assert!(attribute_distance(
            &num,
            &AttributeValue::categorical("oops"),
            &AttributeValue::numeric(1.0)
        )
        .is_err());
        assert!(attribute_distance(
            &dna,
            &AttributeValue::alphanumeric("zz"),
            &AttributeValue::alphanumeric("aa")
        )
        .is_err());
    }

    #[test]
    fn distances_are_symmetric_and_non_negative() {
        let pairs = [("abc", "cab"), ("", "xyz"), ("same", "same")];
        for (a, b) in pairs {
            assert_eq!(alphanumeric_distance(a, b), alphanumeric_distance(b, a));
            assert!(alphanumeric_distance(a, b) >= 0.0);
        }
        assert_eq!(numeric_distance(1.0, 9.0), numeric_distance(9.0, 1.0));
    }
}
