//! Edit (Levenshtein) distance, over plaintext strings and over character
//! comparison matrices.
//!
//! The dynamic program fills an `(n+1) × (m+1)` table with insertion,
//! deletion and substitution costs of 1; the substitution cost of a cell is
//! read either from the plaintext characters or from a
//! [`CharacterComparisonMatrix`] — the two variants must agree, which the
//! property tests in this module and the protocol tests both check.

use crate::ccm::CharacterComparisonMatrix;

/// Edit distance between two plaintext strings.
pub fn edit_distance(source: &str, target: &str) -> u32 {
    let s: Vec<char> = source.chars().collect();
    let t: Vec<char> = target.chars().collect();
    edit_distance_by(s.len(), t.len(), |i, j| u32::from(s[i] != t[j]))
}

/// Edit distance computed from a character comparison matrix, the way the
/// third party does it in the alphanumeric protocol.
pub fn edit_distance_from_ccm(ccm: &CharacterComparisonMatrix) -> u32 {
    edit_distance_by(ccm.source_len(), ccm.target_len(), |i, j| {
        ccm.substitution_cost(i, j)
    })
}

/// Shared dynamic program: `cost(i, j)` returns the substitution cost of
/// aligning source position `i` with target position `j`.
fn edit_distance_by<F: Fn(usize, usize) -> u32>(n: usize, m: usize, cost: F) -> u32 {
    if n == 0 {
        return m as u32;
    }
    if m == 0 {
        return n as u32;
    }
    // Two-row rolling table.
    let mut prev: Vec<u32> = (0..=m as u32).collect();
    let mut curr = vec![0u32; m + 1];
    for i in 1..=n {
        curr[0] = i as u32;
        for j in 1..=m {
            let substitution = prev[j - 1] + cost(i - 1, j - 1);
            let deletion = prev[j] + 1;
            let insertion = curr[j - 1] + 1;
            curr[j] = substitution.min(deletion).min(insertion);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_examples() {
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("flaw", "lawn"), 2);
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("gattaca", "gtacca"), 3);
    }

    #[test]
    fn symmetry_and_bounds() {
        let pairs = [("abcdef", "azced"), ("acgt", "tgca"), ("aaaa", "aa")];
        for (a, b) in pairs {
            let d = edit_distance(a, b);
            assert_eq!(d, edit_distance(b, a));
            assert!(d as usize <= a.chars().count().max(b.chars().count()));
            assert!(d as usize >= a.chars().count().abs_diff(b.chars().count()));
        }
    }

    #[test]
    fn ccm_variant_agrees_with_plaintext_variant() {
        let pairs = [
            ("abc", "bd"),
            ("kitten", "sitting"),
            ("gattaca", "gtacca"),
            ("", "xyz"),
            ("same", "same"),
            ("aaaaabbbbb", "bbbbbaaaaa"),
        ];
        for (s, t) in pairs {
            let ccm = CharacterComparisonMatrix::from_strings(s, t);
            assert_eq!(
                edit_distance_from_ccm(&ccm),
                edit_distance(s, t),
                "{s} vs {t}"
            );
        }
    }

    #[test]
    fn triangle_inequality_on_samples() {
        let words = ["acgt", "aggt", "tgca", "ac", "acgtacgt", ""];
        for a in words {
            for b in words {
                for c in words {
                    let ab = edit_distance(a, b);
                    let bc = edit_distance(b, c);
                    let ac = edit_distance(a, c);
                    assert!(ac <= ab + bc, "triangle violated for {a} {b} {c}");
                }
            }
        }
    }

    #[test]
    fn unicode_strings_are_compared_by_chars() {
        assert_eq!(edit_distance("naïve", "naive"), 1);
        assert_eq!(edit_distance("çava", "cava"), 1);
    }
}
