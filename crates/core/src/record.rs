//! Objects and their site-qualified identities.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::schema::Schema;
use crate::value::AttributeValue;

/// Site-qualified identity of an object.
///
/// Figure 13 of the paper publishes clustering results as lists of objects
/// written `A1`, `B4`, `C3`, … — the site letter followed by the local
/// (1-based) object id. Keeping the identity site-qualified is what lets
/// data holders find their own objects in the published result without the
/// third party revealing anybody's attribute values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId {
    /// Index of the owning data holder.
    pub site: u32,
    /// Zero-based index of the object within its site's partition.
    pub local_index: usize,
}

impl ObjectId {
    /// Creates an object id.
    pub fn new(site: u32, local_index: usize) -> Self {
        ObjectId { site, local_index }
    }

    /// The paper's display form: site letter + 1-based index (`A1`, `B4`).
    pub fn display_label(&self) -> String {
        let site = if self.site < 26 {
            char::from(b'A' + self.site as u8).to_string()
        } else {
            format!("S{}", self.site)
        };
        format!("{}{}", site, self.local_index + 1)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_label())
    }
}

/// One object: its values for every attribute of the agreed schema, in
/// schema order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    values: Vec<AttributeValue>,
}

impl Record {
    /// Creates a record from attribute values in schema order.
    pub fn new(values: Vec<AttributeValue>) -> Self {
        Record { values }
    }

    /// Values in schema order.
    pub fn values(&self) -> &[AttributeValue] {
        &self.values
    }

    /// Number of attribute values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the record has no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value of the attribute at `index`.
    pub fn value_at(&self, index: usize) -> Option<&AttributeValue> {
        self.values.get(index)
    }

    /// Validates the record against a schema (arity and per-value types).
    pub fn validate(&self, schema: &Schema) -> Result<(), CoreError> {
        if self.values.len() != schema.len() {
            return Err(CoreError::ArityMismatch {
                expected: schema.len(),
                got: self.values.len(),
            });
        }
        for (value, descriptor) in self.values.iter().zip(schema.attributes()) {
            descriptor.validate_value(value)?;
        }
        Ok(())
    }
}

impl From<Vec<AttributeValue>> for Record {
    fn from(values: Vec<AttributeValue>) -> Self {
        Record::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::schema::AttributeDescriptor;

    #[test]
    fn object_id_labels_match_figure_13_style() {
        assert_eq!(ObjectId::new(0, 0).to_string(), "A1");
        assert_eq!(ObjectId::new(1, 3).to_string(), "B4");
        assert_eq!(ObjectId::new(2, 2).to_string(), "C3");
        assert_eq!(ObjectId::new(27, 0).to_string(), "S271");
        assert!(ObjectId::new(0, 1) < ObjectId::new(1, 0));
    }

    #[test]
    fn record_validation() {
        let schema = Schema::new(vec![
            AttributeDescriptor::numeric("age"),
            AttributeDescriptor::alphanumeric("dna", Alphabet::dna()),
        ])
        .unwrap();
        let ok = Record::new(vec![
            AttributeValue::numeric(41.0),
            AttributeValue::alphanumeric("acgt"),
        ]);
        assert!(ok.validate(&schema).is_ok());
        assert_eq!(ok.len(), 2);
        assert!(!ok.is_empty());
        assert_eq!(ok.value_at(0).unwrap().as_numeric(), Some(41.0));
        assert!(ok.value_at(5).is_none());

        let wrong_arity = Record::new(vec![AttributeValue::numeric(1.0)]);
        assert!(matches!(
            wrong_arity.validate(&schema),
            Err(CoreError::ArityMismatch { .. })
        ));
        let wrong_type = Record::new(vec![
            AttributeValue::categorical("x"),
            AttributeValue::alphanumeric("acgt"),
        ]);
        assert!(matches!(
            wrong_type.validate(&schema),
            Err(CoreError::TypeMismatch { .. })
        ));
        let bad_symbol = Record::new(vec![
            AttributeValue::numeric(41.0),
            AttributeValue::alphanumeric("zzz"),
        ]);
        assert!(matches!(
            bad_symbol.validate(&schema),
            Err(CoreError::SymbolOutsideAlphabet { .. })
        ));
    }

    #[test]
    fn record_from_vec() {
        let r: Record = vec![AttributeValue::numeric(1.0)].into();
        assert_eq!(r.len(), 1);
    }
}
