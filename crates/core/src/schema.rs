//! Schemas and attribute weight vectors.
//!
//! §3 of the paper: data holders "have previously agreed on the list of
//! attributes that are going to be used for clustering" and this list (with
//! comparison functions) is also shared with the third party. At the end of
//! the construction, each data holder may impose a *weight vector* merging
//! the per-attribute dissimilarity matrices into the final one.

use serde::{Deserialize, Serialize};

use crate::alphabet::Alphabet;
use crate::error::CoreError;
use crate::value::{AttributeKind, AttributeValue};

/// Description of one attribute used for clustering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeDescriptor {
    /// Attribute name (unique within a schema).
    pub name: String,
    /// Data type.
    pub kind: AttributeKind,
    /// Alphabet for alphanumeric attributes (ignored otherwise).
    pub alphabet: Option<Alphabet>,
}

impl AttributeDescriptor {
    /// Declares a numeric attribute.
    pub fn numeric(name: impl Into<String>) -> Self {
        AttributeDescriptor {
            name: name.into(),
            kind: AttributeKind::Numeric,
            alphabet: None,
        }
    }

    /// Declares a categorical attribute.
    pub fn categorical(name: impl Into<String>) -> Self {
        AttributeDescriptor {
            name: name.into(),
            kind: AttributeKind::Categorical,
            alphabet: None,
        }
    }

    /// Declares an alphanumeric attribute over `alphabet`.
    pub fn alphanumeric(name: impl Into<String>, alphabet: Alphabet) -> Self {
        AttributeDescriptor {
            name: name.into(),
            kind: AttributeKind::Alphanumeric,
            alphabet: Some(alphabet),
        }
    }

    /// Returns the declared alphabet, erroring for non-alphanumeric kinds
    /// or a missing declaration.
    pub fn require_alphabet(&self) -> Result<&Alphabet, CoreError> {
        match (&self.kind, &self.alphabet) {
            (AttributeKind::Alphanumeric, Some(a)) => Ok(a),
            (AttributeKind::Alphanumeric, None) => Err(CoreError::Protocol(format!(
                "alphanumeric attribute '{}' has no alphabet declared",
                self.name
            ))),
            _ => Err(CoreError::Protocol(format!(
                "attribute '{}' is not alphanumeric",
                self.name
            ))),
        }
    }

    /// Checks that `value` matches this attribute's kind (and alphabet).
    pub fn validate_value(&self, value: &AttributeValue) -> Result<(), CoreError> {
        if value.kind() != self.kind {
            return Err(CoreError::TypeMismatch {
                attribute: self.name.clone(),
                expected: self.kind.to_string(),
                found: value.kind().to_string(),
            });
        }
        if let (AttributeKind::Alphanumeric, Some(alphabet)) = (self.kind, &self.alphabet) {
            if let Some(s) = value.as_alphanumeric() {
                alphabet.validate(s)?;
            }
        }
        Ok(())
    }
}

/// The agreed list of clustering attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    attributes: Vec<AttributeDescriptor>,
}

impl Schema {
    /// Builds a schema, checking attribute-name uniqueness.
    pub fn new(attributes: Vec<AttributeDescriptor>) -> Result<Self, CoreError> {
        if attributes.is_empty() {
            return Err(CoreError::EmptyInput);
        }
        for (i, a) in attributes.iter().enumerate() {
            if attributes[..i].iter().any(|b| b.name == a.name) {
                return Err(CoreError::SchemaMismatch(format!(
                    "duplicate attribute name '{}'",
                    a.name
                )));
            }
            if a.kind == AttributeKind::Alphanumeric && a.alphabet.is_none() {
                return Err(CoreError::SchemaMismatch(format!(
                    "alphanumeric attribute '{}' must declare an alphabet",
                    a.name
                )));
            }
        }
        Ok(Schema { attributes })
    }

    /// Attributes in declaration order.
    pub fn attributes(&self) -> &[AttributeDescriptor] {
        &self.attributes
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// Whether the schema declares no attributes (never true for a
    /// successfully constructed schema).
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Index of the attribute called `name`.
    pub fn index_of(&self, name: &str) -> Result<usize, CoreError> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| CoreError::UnknownAttribute(name.to_string()))
    }

    /// Descriptor of the attribute called `name`.
    pub fn attribute(&self, name: &str) -> Result<&AttributeDescriptor, CoreError> {
        Ok(&self.attributes[self.index_of(name)?])
    }

    /// Descriptor at position `index`.
    pub fn attribute_at(&self, index: usize) -> Result<&AttributeDescriptor, CoreError> {
        self.attributes
            .get(index)
            .ok_or_else(|| CoreError::UnknownAttribute(format!("#{index}")))
    }

    /// Uniform weight vector over this schema's attributes.
    pub fn uniform_weights(&self) -> WeightVector {
        WeightVector::uniform(self.len())
    }
}

/// Attribute weights used to merge per-attribute dissimilarity matrices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightVector {
    weights: Vec<f64>,
}

impl WeightVector {
    /// Builds a weight vector; weights must be non-negative, not all zero,
    /// and are normalised to sum to 1.
    pub fn new(weights: Vec<f64>) -> Result<Self, CoreError> {
        if weights.is_empty() {
            return Err(CoreError::InvalidWeights("empty weight vector".into()));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(CoreError::InvalidWeights(
                "weights must be finite and non-negative".into(),
            ));
        }
        let sum: f64 = weights.iter().sum();
        if sum <= 0.0 {
            return Err(CoreError::InvalidWeights("weights sum to zero".into()));
        }
        Ok(WeightVector {
            weights: weights.into_iter().map(|w| w / sum).collect(),
        })
    }

    /// Uniform weights over `n` attributes.
    pub fn uniform(n: usize) -> Self {
        WeightVector {
            weights: vec![1.0 / n.max(1) as f64; n.max(1)],
        }
    }

    /// Normalised weights (they sum to 1).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of attributes covered.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the vector is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Checks the vector covers exactly the schema's attributes.
    pub fn validate_for(&self, schema: &Schema) -> Result<(), CoreError> {
        if self.weights.len() != schema.len() {
            return Err(CoreError::InvalidWeights(format!(
                "weight vector has {} entries but the schema has {} attributes",
                self.weights.len(),
                schema.len()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> Schema {
        Schema::new(vec![
            AttributeDescriptor::numeric("age"),
            AttributeDescriptor::categorical("blood_type"),
            AttributeDescriptor::alphanumeric("dna", Alphabet::dna()),
        ])
        .unwrap()
    }

    #[test]
    fn schema_construction_and_lookup() {
        let schema = sample_schema();
        assert_eq!(schema.len(), 3);
        assert!(!schema.is_empty());
        assert_eq!(schema.index_of("blood_type").unwrap(), 1);
        assert!(schema.index_of("missing").is_err());
        assert_eq!(
            schema.attribute("dna").unwrap().kind,
            AttributeKind::Alphanumeric
        );
        assert!(schema.attribute_at(2).is_ok());
        assert!(schema.attribute_at(3).is_err());
    }

    #[test]
    fn schema_rejects_duplicates_and_missing_alphabets() {
        assert!(Schema::new(vec![]).is_err());
        assert!(Schema::new(vec![
            AttributeDescriptor::numeric("x"),
            AttributeDescriptor::numeric("x"),
        ])
        .is_err());
        let missing_alphabet = AttributeDescriptor {
            name: "dna".into(),
            kind: AttributeKind::Alphanumeric,
            alphabet: None,
        };
        assert!(Schema::new(vec![missing_alphabet]).is_err());
    }

    #[test]
    fn descriptor_validation() {
        let schema = sample_schema();
        let age = schema.attribute("age").unwrap();
        assert!(age.validate_value(&AttributeValue::numeric(30.0)).is_ok());
        assert!(age
            .validate_value(&AttributeValue::categorical("x"))
            .is_err());
        let dna = schema.attribute("dna").unwrap();
        assert!(dna
            .validate_value(&AttributeValue::alphanumeric("acgt"))
            .is_ok());
        assert!(dna
            .validate_value(&AttributeValue::alphanumeric("xyz"))
            .is_err());
        assert!(dna.require_alphabet().is_ok());
        assert!(age.require_alphabet().is_err());
    }

    #[test]
    fn weight_vector_normalisation_and_validation() {
        let w = WeightVector::new(vec![2.0, 1.0, 1.0]).unwrap();
        assert!((w.weights().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((w.weights()[0] - 0.5).abs() < 1e-12);
        assert_eq!(w.len(), 3);
        assert!(WeightVector::new(vec![]).is_err());
        assert!(WeightVector::new(vec![-1.0, 2.0]).is_err());
        assert!(WeightVector::new(vec![0.0, 0.0]).is_err());
        assert!(WeightVector::new(vec![f64::NAN]).is_err());
        let schema = sample_schema();
        assert!(w.validate_for(&schema).is_ok());
        assert!(WeightVector::uniform(2).validate_for(&schema).is_err());
        assert_eq!(schema.uniform_weights().len(), 3);
    }
}
