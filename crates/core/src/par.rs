//! Fan-out helper for the third party's independent work items.
//!
//! The construction driver's unmask/fold work factors into independent
//! tasks: one per attribute, and within a pairwise attribute one per ordered
//! holder pair. With the `parallel` cargo feature enabled,
//! [`try_par_map`] distributes those tasks over `std::thread::scope` workers
//! (the offline build environment has no crates.io access, so this plays the
//! role rayon's `par_iter` would); without the feature it degrades to a
//! plain sequential loop, which keeps protocol traces deterministic for the
//! byte-level session tests.
//!
//! Tasks only *read* shared protocol state, so the closure takes `&self`-ish
//! captures via `Sync` and returns owned results that are re-assembled in
//! index order — output ordering is identical in both modes.

use crate::error::CoreError;

/// Applies `f` to every index in `0..n`, returning results in index order or
/// the first error encountered (by index, so error selection is
/// deterministic across both modes).
#[cfg(not(feature = "parallel"))]
pub fn try_par_map<T, F>(n: usize, f: F) -> Result<Vec<T>, CoreError>
where
    T: Send,
    F: Fn(usize) -> Result<T, CoreError> + Sync,
{
    (0..n).map(f).collect()
}

/// Applies `f` to every index in `0..n` on scoped worker threads, returning
/// results in index order or the lowest-index error.
///
/// Nested calls (a task body that itself calls `try_par_map`, as the
/// construction driver does for holder pairs inside attributes) run
/// sequentially: only the outermost level fans out, so the worker count
/// stays bounded by `available_parallelism` instead of multiplying per
/// nesting level.
#[cfg(feature = "parallel")]
pub fn try_par_map<T, F>(n: usize, f: F) -> Result<Vec<T>, CoreError>
where
    T: Send,
    F: Fn(usize) -> Result<T, CoreError> + Sync,
{
    use std::cell::Cell;
    use std::sync::atomic::{AtomicUsize, Ordering};

    thread_local! {
        static INSIDE_PAR: Cell<bool> = const { Cell::new(false) };
    }

    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 || n <= 1 || INSIDE_PAR.with(Cell::get) {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let mut per_worker: Vec<Vec<(usize, Result<T, CoreError>)>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    INSIDE_PAR.with(|flag| flag.set(true));
                    let mut produced = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= n {
                            break;
                        }
                        produced.push((index, f(index)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            per_worker.push(handle.join().expect("parallel worker panicked"));
        }
    });
    let mut indexed: Vec<(usize, Result<T, CoreError>)> =
        per_worker.into_iter().flatten().collect();
    indexed.sort_by_key(|&(index, _)| index);
    debug_assert_eq!(indexed.len(), n);
    indexed.into_iter().map(|(_, result)| result).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_index_order() {
        let out = try_par_map(100, |i| Ok(i * 2)).unwrap();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<usize> = try_par_map(0, |_| unreachable!()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn nested_maps_stay_correct() {
        // Inner calls run sequentially under `parallel` (depth guard), but
        // results must be identical either way.
        let out = try_par_map(8, |i| try_par_map(8, move |j| Ok(i * 8 + j))).unwrap();
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(*inner, (i * 8..(i + 1) * 8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn errors_propagate() {
        let result: Result<Vec<usize>, _> = try_par_map(10, |i| {
            if i == 7 {
                Err(CoreError::Protocol("task 7 failed".into()))
            } else {
                Ok(i)
            }
        });
        assert!(result.is_err());
    }
}
