//! Unified error type for the core crate.

use std::fmt;

use ppc_cluster::ClusterError;
use ppc_crypto::CryptoError;
use ppc_net::NetError;

/// Errors produced while building dissimilarity matrices or running the
/// comparison protocols.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A value did not match the attribute kind declared in the schema.
    TypeMismatch {
        /// Attribute name.
        attribute: String,
        /// Expected kind (as text).
        expected: String,
        /// Found kind (as text).
        found: String,
    },
    /// A record had the wrong number of attributes.
    ArityMismatch {
        /// Number of attributes in the schema.
        expected: usize,
        /// Number of values in the record.
        got: usize,
    },
    /// Schemas of two partitions disagree.
    SchemaMismatch(String),
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// A character was outside the declared finite alphabet.
    SymbolOutsideAlphabet {
        /// The offending character.
        symbol: char,
    },
    /// A weight vector was invalid (wrong length, negative or all-zero).
    InvalidWeights(String),
    /// A numeric value could not be represented in fixed point.
    FixedPointOverflow {
        /// The offending value.
        value: f64,
    },
    /// Protocol-level failure (unexpected message shape, missing seed, ...).
    Protocol(String),
    /// There is nothing to cluster.
    EmptyInput,
    /// Error from the crypto substrate.
    Crypto(CryptoError),
    /// Error from the transport substrate.
    Net(NetError),
    /// Error from the clustering substrate.
    Cluster(ClusterError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::TypeMismatch {
                attribute,
                expected,
                found,
            } => write!(
                f,
                "attribute '{attribute}' expects {expected} values, found {found}"
            ),
            CoreError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "record has {got} values but the schema declares {expected}"
                )
            }
            CoreError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            CoreError::UnknownAttribute(name) => write!(f, "unknown attribute '{name}'"),
            CoreError::SymbolOutsideAlphabet { symbol } => {
                write!(f, "symbol '{symbol}' is outside the declared alphabet")
            }
            CoreError::InvalidWeights(msg) => write!(f, "invalid weight vector: {msg}"),
            CoreError::FixedPointOverflow { value } => {
                write!(f, "value {value} cannot be represented in fixed point")
            }
            CoreError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            CoreError::EmptyInput => write!(f, "empty input"),
            CoreError::Crypto(e) => write!(f, "crypto error: {e}"),
            CoreError::Net(e) => write!(f, "network error: {e}"),
            CoreError::Cluster(e) => write!(f, "clustering error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<CryptoError> for CoreError {
    fn from(e: CryptoError) -> Self {
        CoreError::Crypto(e)
    }
}

impl From<NetError> for CoreError {
    fn from(e: NetError) -> Self {
        CoreError::Net(e)
    }
}

impl From<ClusterError> for CoreError {
    fn from(e: ClusterError) -> Self {
        CoreError::Cluster(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_from_substrate_errors() {
        let e: CoreError = CryptoError::InvalidAlphabet("x".into()).into();
        assert!(matches!(e, CoreError::Crypto(_)));
        let e: CoreError = NetError::Decode("bad".into()).into();
        assert!(matches!(e, CoreError::Net(_)));
        let e: CoreError = ClusterError::EmptyInput.into();
        assert!(matches!(e, CoreError::Cluster(_)));
    }

    #[test]
    fn display_mentions_key_fields() {
        let e = CoreError::TypeMismatch {
            attribute: "age".into(),
            expected: "numeric".into(),
            found: "categorical".into(),
        };
        assert!(e.to_string().contains("age"));
        assert!(CoreError::UnknownAttribute("dna".into())
            .to_string()
            .contains("dna"));
        assert!(CoreError::FixedPointOverflow { value: 1e300 }
            .to_string()
            .contains("cannot be represented"));
    }
}
