//! Dissimilarity matrices (§2.2, §5).
//!
//! The third party assembles one dissimilarity matrix *per attribute*, then
//! normalises each into `[0, 1]` and merges them under a weight vector into
//! the final matrix that is handed to the clustering algorithm. Objects are
//! addressed globally by concatenating the sites' partitions in site order,
//! but every entry remains retrievable by site-qualified [`ObjectId`].
//!
//! The paper chooses to normalise the *dissimilarity* matrix rather than the
//! data matrix precisely because partitions may cover different value
//! ranges; normalising afterwards needs no extra protocol (§2.1).

use serde::{Deserialize, Serialize};

use ppc_cluster::CondensedDistanceMatrix;

use crate::error::CoreError;
use crate::record::ObjectId;
use crate::schema::{Schema, WeightVector};

/// Mapping between global object indices and site-qualified object ids.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectIndex {
    /// Number of objects per site, in ascending site order.
    site_sizes: Vec<(u32, usize)>,
    /// Flattened object ids, global order.
    ids: Vec<ObjectId>,
    /// Precomputed `site → (global offset, count)` lookup, so that
    /// [`global_index`](Self::global_index) and
    /// [`site_range`](Self::site_range) — which sit on the condensed-matrix
    /// addressing hot path — cost one hash probe instead of a linear scan
    /// over the site list.
    site_offsets: std::collections::HashMap<u32, (usize, usize)>,
}

impl ObjectIndex {
    /// Builds the index from `(site, object_count)` pairs in the order the
    /// third party concatenates partitions.
    pub fn from_site_sizes(site_sizes: &[(u32, usize)]) -> Self {
        let mut ids = Vec::new();
        let mut site_offsets = std::collections::HashMap::with_capacity(site_sizes.len());
        let mut offset = 0usize;
        for &(site, count) in site_sizes {
            for i in 0..count {
                ids.push(ObjectId::new(site, i));
            }
            // First occurrence wins, matching the scan order of the seed.
            site_offsets.entry(site).or_insert((offset, count));
            offset += count;
        }
        ObjectIndex {
            site_sizes: site_sizes.to_vec(),
            ids,
            site_offsets,
        }
    }

    /// Total number of objects.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the index covers zero objects.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.site_sizes.len()
    }

    /// Site sizes in concatenation order.
    pub fn site_sizes(&self) -> &[(u32, usize)] {
        &self.site_sizes
    }

    /// Global index of a site-qualified object id (O(1) via the offset map).
    pub fn global_index(&self, id: ObjectId) -> Result<usize, CoreError> {
        match self.site_offsets.get(&id.site) {
            Some(&(offset, count)) => {
                if id.local_index < count {
                    Ok(offset + id.local_index)
                } else {
                    Err(CoreError::Protocol(format!(
                        "object {id} outside site partition of size {count}"
                    )))
                }
            }
            None => Err(CoreError::Protocol(format!(
                "unknown site {} for object {id}",
                id.site
            ))),
        }
    }

    /// Object id at a global index.
    pub fn object_id(&self, global: usize) -> Result<ObjectId, CoreError> {
        self.ids
            .get(global)
            .copied()
            .ok_or_else(|| CoreError::Protocol(format!("global index {global} out of range")))
    }

    /// All object ids in global order.
    pub fn ids(&self) -> &[ObjectId] {
        &self.ids
    }

    /// Range of global indices covered by `site` (O(1) via the offset map).
    pub fn site_range(&self, site: u32) -> Result<std::ops::Range<usize>, CoreError> {
        self.site_offsets
            .get(&site)
            .map(|&(offset, count)| offset..offset + count)
            .ok_or_else(|| CoreError::Protocol(format!("unknown site {site}")))
    }
}

/// The dissimilarity matrix of a single attribute, before or after
/// normalisation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeDissimilarity {
    /// Attribute name.
    pub attribute: String,
    /// The pairwise distances.
    pub matrix: CondensedDistanceMatrix,
}

impl AttributeDissimilarity {
    /// Creates the per-attribute matrix.
    pub fn new(attribute: impl Into<String>, matrix: CondensedDistanceMatrix) -> Self {
        AttributeDissimilarity {
            attribute: attribute.into(),
            matrix,
        }
    }

    /// Normalises the matrix into `[0, 1]` by dividing by its maximum
    /// (paper §5, step 4).
    pub fn normalize(&mut self) {
        self.matrix.normalize_max();
    }
}

/// The final, merged dissimilarity matrix together with the object index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DissimilarityMatrix {
    index: ObjectIndex,
    matrix: CondensedDistanceMatrix,
}

impl DissimilarityMatrix {
    /// Wraps an already-built matrix.
    pub fn new(index: ObjectIndex, matrix: CondensedDistanceMatrix) -> Result<Self, CoreError> {
        if index.len() != matrix.len() {
            return Err(CoreError::Protocol(format!(
                "object index covers {} objects but the matrix covers {}",
                index.len(),
                matrix.len()
            )));
        }
        Ok(DissimilarityMatrix { index, matrix })
    }

    /// Merges normalised per-attribute matrices under a weight vector.
    ///
    /// Every per-attribute matrix is normalised (idempotent if already done),
    /// then combined as `Σ w_a · d_a`. The weight vector must cover exactly
    /// the schema's attributes, in order.
    ///
    /// Normalisation and weighting happen *in one pass over the condensed
    /// accumulator*: each attribute contributes `(w_a / max_a) · d_a`
    /// directly, so no per-attribute matrix is ever cloned or mutated.
    pub fn merge(
        index: ObjectIndex,
        per_attribute: &[AttributeDissimilarity],
        schema: &Schema,
        weights: &WeightVector,
    ) -> Result<Self, CoreError> {
        weights.validate_for(schema)?;
        if per_attribute.len() != schema.len() {
            return Err(CoreError::Protocol(format!(
                "{} per-attribute matrices for a schema of {} attributes",
                per_attribute.len(),
                schema.len()
            )));
        }
        for (d, a) in per_attribute.iter().zip(schema.attributes()) {
            if d.attribute != a.name {
                return Err(CoreError::Protocol(format!(
                    "attribute matrix order mismatch: expected '{}', found '{}'",
                    a.name, d.attribute
                )));
            }
        }
        let mut merged = CondensedDistanceMatrix::zeros(index.len());
        for (d, &w) in per_attribute.iter().zip(weights.weights()) {
            // Dividing the weight by the attribute's maximum is exactly the
            // paper's "normalise, then weight" (§5 step 4) without the copy;
            // an all-zero matrix contributes nothing either way.
            let max = d.matrix.max_value();
            let scale = if max > 0.0 { w / max } else { w };
            merged.accumulate_scaled(&d.matrix, scale)?;
        }
        DissimilarityMatrix::new(index, merged)
    }

    /// The object index.
    pub fn index(&self) -> &ObjectIndex {
        &self.index
    }

    /// The underlying condensed matrix (global-index addressing).
    pub fn matrix(&self) -> &CondensedDistanceMatrix {
        &self.matrix
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.matrix.len()
    }

    /// Whether the matrix covers zero objects.
    pub fn is_empty(&self) -> bool {
        self.matrix.is_empty()
    }

    /// Distance between two site-qualified objects.
    pub fn distance(&self, a: ObjectId, b: ObjectId) -> Result<f64, CoreError> {
        let i = self.index.global_index(a)?;
        let j = self.index.global_index(b)?;
        Ok(self.matrix.get(i, j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttributeDescriptor;

    fn index() -> ObjectIndex {
        ObjectIndex::from_site_sizes(&[(0, 2), (1, 3)])
    }

    #[test]
    fn object_index_mapping_roundtrips() {
        let idx = index();
        assert_eq!(idx.len(), 5);
        assert_eq!(idx.num_sites(), 2);
        assert!(!idx.is_empty());
        assert_eq!(idx.global_index(ObjectId::new(0, 1)).unwrap(), 1);
        assert_eq!(idx.global_index(ObjectId::new(1, 0)).unwrap(), 2);
        assert_eq!(idx.global_index(ObjectId::new(1, 2)).unwrap(), 4);
        assert_eq!(idx.object_id(3).unwrap(), ObjectId::new(1, 1));
        assert!(idx.object_id(5).is_err());
        assert!(idx.global_index(ObjectId::new(0, 2)).is_err());
        assert!(idx.global_index(ObjectId::new(7, 0)).is_err());
        assert_eq!(idx.site_range(1).unwrap(), 2..5);
        assert!(idx.site_range(9).is_err());
        for (g, id) in idx.ids().iter().enumerate() {
            assert_eq!(idx.global_index(*id).unwrap(), g);
        }
    }

    #[test]
    fn merge_normalises_and_weights_attributes() {
        let schema = Schema::new(vec![
            AttributeDescriptor::numeric("age"),
            AttributeDescriptor::numeric("income"),
        ])
        .unwrap();
        let idx = ObjectIndex::from_site_sizes(&[(0, 3)]);
        // Attribute "age" distances max out at 10, "income" at 1000.
        let age = AttributeDissimilarity::new(
            "age",
            CondensedDistanceMatrix::from_condensed(3, vec![10.0, 5.0, 5.0]).unwrap(),
        );
        let income = AttributeDissimilarity::new(
            "income",
            CondensedDistanceMatrix::from_condensed(3, vec![1000.0, 0.0, 1000.0]).unwrap(),
        );
        let weights = WeightVector::new(vec![1.0, 3.0]).unwrap();
        let merged = DissimilarityMatrix::merge(idx, &[age, income], &schema, &weights).unwrap();
        // (1,0): 0.25·(10/10) + 0.75·(1000/1000) = 1.0
        assert!(
            (merged
                .distance(ObjectId::new(0, 1), ObjectId::new(0, 0))
                .unwrap()
                - 1.0)
                .abs()
                < 1e-12
        );
        // (2,0): 0.25·0.5 + 0.75·0 = 0.125
        assert!(
            (merged
                .distance(ObjectId::new(0, 2), ObjectId::new(0, 0))
                .unwrap()
                - 0.125)
                .abs()
                < 1e-12
        );
        assert_eq!(merged.len(), 3);
    }

    #[test]
    fn merge_of_already_normalised_matrices_is_idempotent() {
        let schema = Schema::new(vec![
            AttributeDescriptor::numeric("age"),
            AttributeDescriptor::numeric("income"),
        ])
        .unwrap();
        let idx = ObjectIndex::from_site_sizes(&[(0, 4)]);
        let raw = vec![
            AttributeDissimilarity::new(
                "age",
                CondensedDistanceMatrix::from_condensed(4, vec![8.0, 2.0, 4.0, 6.0, 1.0, 8.0])
                    .unwrap(),
            ),
            AttributeDissimilarity::new(
                "income",
                CondensedDistanceMatrix::from_condensed(
                    4,
                    vec![0.5, 100.0, 25.0, 75.0, 50.0, 10.0],
                )
                .unwrap(),
            ),
        ];
        let weights = WeightVector::new(vec![2.0, 1.0]).unwrap();
        let merged_raw = DissimilarityMatrix::merge(idx.clone(), &raw, &schema, &weights).unwrap();
        // Pre-normalise every attribute, then merge again: the result must
        // be identical, because merge normalises internally and
        // normalisation is idempotent.
        let normalised: Vec<AttributeDissimilarity> = raw
            .iter()
            .map(|d| {
                let mut n = d.clone();
                n.normalize();
                assert!((n.matrix.max_value() - 1.0).abs() < 1e-12);
                n
            })
            .collect();
        let merged_normalised =
            DissimilarityMatrix::merge(idx, &normalised, &schema, &weights).unwrap();
        assert!(
            merged_raw
                .matrix()
                .max_abs_difference(merged_normalised.matrix())
                < 1e-12,
            "merge must be idempotent under pre-normalisation"
        );
    }

    #[test]
    fn merge_validates_order_and_counts() {
        let schema = Schema::new(vec![
            AttributeDescriptor::numeric("a"),
            AttributeDescriptor::numeric("b"),
        ])
        .unwrap();
        let idx = ObjectIndex::from_site_sizes(&[(0, 2)]);
        let one = AttributeDissimilarity::new("a", CondensedDistanceMatrix::zeros(2));
        // Too few matrices.
        assert!(DissimilarityMatrix::merge(
            idx.clone(),
            std::slice::from_ref(&one),
            &schema,
            &schema.uniform_weights()
        )
        .is_err());
        // Wrong order.
        let wrong = AttributeDissimilarity::new("b", CondensedDistanceMatrix::zeros(2));
        assert!(DissimilarityMatrix::merge(
            idx.clone(),
            &[wrong, one],
            &schema,
            &schema.uniform_weights()
        )
        .is_err());
        // Weight vector of the wrong size.
        let a = AttributeDissimilarity::new("a", CondensedDistanceMatrix::zeros(2));
        let b = AttributeDissimilarity::new("b", CondensedDistanceMatrix::zeros(2));
        assert!(
            DissimilarityMatrix::merge(idx, &[a, b], &schema, &WeightVector::uniform(3)).is_err()
        );
    }

    #[test]
    fn new_checks_size_consistency() {
        let idx = index();
        assert!(DissimilarityMatrix::new(idx.clone(), CondensedDistanceMatrix::zeros(4)).is_err());
        assert!(DissimilarityMatrix::new(idx, CondensedDistanceMatrix::zeros(5)).is_ok());
    }
}
