//! Character comparison matrices (§2.3).
//!
//! A CCM for source string `s` and target string `t` is an
//! `s.len() × t.len()` boolean matrix whose entry `[i][j]` is 0 when
//! `s[i] == t[j]` and non-zero otherwise. The paper's observation is that a
//! CCM is "equally expressive" input to the edit-distance dynamic program as
//! the strings themselves — which is exactly what lets the third party
//! compute edit distances without ever seeing either string.

use serde::{Deserialize, Serialize};

use crate::error::CoreError;

/// A character comparison matrix: `true` means the characters differ.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CharacterComparisonMatrix {
    source_len: usize,
    target_len: usize,
    /// Row-major `source_len × target_len`; `true` = mismatch.
    mismatch: Vec<bool>,
}

impl CharacterComparisonMatrix {
    /// Builds a CCM directly from two strings (the non-private path used by
    /// local computations and tests).
    pub fn from_strings(source: &str, target: &str) -> Self {
        let s: Vec<char> = source.chars().collect();
        let t: Vec<char> = target.chars().collect();
        let mut mismatch = Vec::with_capacity(s.len() * t.len());
        for &sc in &s {
            for &tc in &t {
                mismatch.push(sc != tc);
            }
        }
        CharacterComparisonMatrix {
            source_len: s.len(),
            target_len: t.len(),
            mismatch,
        }
    }

    /// Builds a CCM from a row-major mismatch bitmap.
    pub fn from_mismatches(
        source_len: usize,
        target_len: usize,
        mismatch: Vec<bool>,
    ) -> Result<Self, CoreError> {
        if mismatch.len() != source_len * target_len {
            return Err(CoreError::Protocol(format!(
                "CCM bitmap has {} entries, expected {}",
                mismatch.len(),
                source_len * target_len
            )));
        }
        Ok(CharacterComparisonMatrix {
            source_len,
            target_len,
            mismatch,
        })
    }

    /// Length of the source string.
    pub fn source_len(&self) -> usize {
        self.source_len
    }

    /// Length of the target string.
    pub fn target_len(&self) -> usize {
        self.target_len
    }

    /// Whether `source[i]` differs from `target[j]`.
    pub fn differs(&self, i: usize, j: usize) -> bool {
        self.mismatch[i * self.target_len + j]
    }

    /// Substitution cost for the edit-distance dynamic program (0 or 1).
    pub fn substitution_cost(&self, i: usize, j: usize) -> u32 {
        u32::from(self.differs(i, j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_strings_marks_equal_positions() {
        let ccm = CharacterComparisonMatrix::from_strings("abc", "bd");
        assert_eq!(ccm.source_len(), 3);
        assert_eq!(ccm.target_len(), 2);
        // s[1] = 'b' equals t[0] = 'b' — the pair highlighted in Figure 7.
        assert!(!ccm.differs(1, 0));
        assert!(ccm.differs(0, 0));
        assert!(ccm.differs(2, 1));
        assert_eq!(ccm.substitution_cost(1, 0), 0);
        assert_eq!(ccm.substitution_cost(0, 1), 1);
    }

    #[test]
    fn from_mismatches_validates_dimensions() {
        assert!(CharacterComparisonMatrix::from_mismatches(2, 2, vec![true; 3]).is_err());
        let ccm = CharacterComparisonMatrix::from_mismatches(2, 2, vec![false, true, true, false])
            .unwrap();
        assert!(!ccm.differs(0, 0));
        assert!(ccm.differs(0, 1));
        assert!(!ccm.differs(1, 1));
    }

    #[test]
    fn empty_strings_produce_empty_ccm() {
        let ccm = CharacterComparisonMatrix::from_strings("", "abc");
        assert_eq!(ccm.source_len(), 0);
        assert_eq!(ccm.target_len(), 3);
        let ccm = CharacterComparisonMatrix::from_strings("", "");
        assert_eq!(ccm.source_len(), 0);
        assert_eq!(ccm.target_len(), 0);
    }

    #[test]
    fn matches_plaintext_equality_for_all_pairs() {
        let source = "gattaca";
        let target = "gtacca";
        let ccm = CharacterComparisonMatrix::from_strings(source, target);
        let s: Vec<char> = source.chars().collect();
        let t: Vec<char> = target.chars().collect();
        for (i, &sc) in s.iter().enumerate() {
            for (j, &tc) in t.iter().enumerate() {
                assert_eq!(ccm.differs(i, j), sc != tc);
            }
        }
    }
}
