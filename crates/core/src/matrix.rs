//! Data matrices and horizontal partitions (§2.1).

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::record::{ObjectId, Record};
use crate::schema::Schema;
use crate::value::{AttributeKind, AttributeValue};

/// An object-by-attribute data matrix with a declared schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataMatrix {
    schema: Schema,
    rows: Vec<Record>,
}

impl DataMatrix {
    /// Creates an empty matrix over `schema`.
    pub fn new(schema: Schema) -> Self {
        DataMatrix {
            schema,
            rows: Vec::new(),
        }
    }

    /// Creates a matrix from validated rows.
    pub fn with_rows(schema: Schema, rows: Vec<Record>) -> Result<Self, CoreError> {
        let mut matrix = DataMatrix::new(schema);
        for row in rows {
            matrix.push(row)?;
        }
        Ok(matrix)
    }

    /// Appends a row after validating it against the schema.
    pub fn push(&mut self, record: Record) -> Result<(), CoreError> {
        record.validate(&self.schema)?;
        self.rows.push(record);
        Ok(())
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All rows.
    pub fn rows(&self) -> &[Record] {
        &self.rows
    }

    /// Number of objects (the paper's `D_i.Length`).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the matrix holds no objects.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The column of values for the attribute at `attribute_index` — the
    /// paper's column view `D_i`.
    pub fn column(&self, attribute_index: usize) -> Result<Vec<&AttributeValue>, CoreError> {
        self.schema.attribute_at(attribute_index)?;
        Ok(self
            .rows
            .iter()
            .map(|r| r.value_at(attribute_index).expect("validated arity"))
            .collect())
    }

    /// Numeric column as `f64` values (errors for non-numeric attributes).
    pub fn numeric_column(&self, attribute_index: usize) -> Result<Vec<f64>, CoreError> {
        let descriptor = self.schema.attribute_at(attribute_index)?;
        if descriptor.kind != AttributeKind::Numeric {
            return Err(CoreError::TypeMismatch {
                attribute: descriptor.name.clone(),
                expected: "numeric".into(),
                found: descriptor.kind.to_string(),
            });
        }
        Ok(self
            .rows
            .iter()
            .map(|r| {
                r.value_at(attribute_index)
                    .and_then(|v| v.as_numeric())
                    .expect("validated")
            })
            .collect())
    }

    /// String column (alphanumeric attributes).
    pub fn string_column(&self, attribute_index: usize) -> Result<Vec<String>, CoreError> {
        let descriptor = self.schema.attribute_at(attribute_index)?;
        if descriptor.kind != AttributeKind::Alphanumeric {
            return Err(CoreError::TypeMismatch {
                attribute: descriptor.name.clone(),
                expected: "alphanumeric".into(),
                found: descriptor.kind.to_string(),
            });
        }
        Ok(self
            .rows
            .iter()
            .map(|r| {
                r.value_at(attribute_index)
                    .and_then(|v| v.as_alphanumeric())
                    .expect("validated")
                    .to_string()
            })
            .collect())
    }

    /// Categorical column.
    pub fn categorical_column(&self, attribute_index: usize) -> Result<Vec<String>, CoreError> {
        let descriptor = self.schema.attribute_at(attribute_index)?;
        if descriptor.kind != AttributeKind::Categorical {
            return Err(CoreError::TypeMismatch {
                attribute: descriptor.name.clone(),
                expected: "categorical".into(),
                found: descriptor.kind.to_string(),
            });
        }
        Ok(self
            .rows
            .iter()
            .map(|r| {
                r.value_at(attribute_index)
                    .and_then(|v| v.as_categorical())
                    .expect("validated")
                    .to_string()
            })
            .collect())
    }
}

/// The horizontal partition owned by one data holder: a data matrix plus the
/// owning site's index, giving each row a site-qualified [`ObjectId`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HorizontalPartition {
    site: u32,
    matrix: DataMatrix,
}

impl HorizontalPartition {
    /// Creates a partition owned by data holder `site`.
    pub fn new(site: u32, matrix: DataMatrix) -> Self {
        HorizontalPartition { site, matrix }
    }

    /// The owning site index.
    pub fn site(&self) -> u32 {
        self.site
    }

    /// The partition's data matrix.
    pub fn matrix(&self) -> &DataMatrix {
        &self.matrix
    }

    /// Number of objects in this partition.
    pub fn len(&self) -> usize {
        self.matrix.len()
    }

    /// Whether the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.matrix.is_empty()
    }

    /// Site-qualified ids of this partition's objects, in row order.
    pub fn object_ids(&self) -> Vec<ObjectId> {
        (0..self.matrix.len())
            .map(|i| ObjectId::new(self.site, i))
            .collect()
    }

    /// Checks that this partition's schema equals `schema` (the protocol
    /// requires all data holders to have agreed on the attribute list).
    pub fn validate_schema(&self, schema: &Schema) -> Result<(), CoreError> {
        if self.matrix.schema() != schema {
            return Err(CoreError::SchemaMismatch(format!(
                "site {} uses a different attribute list than the agreed schema",
                self.site
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::schema::AttributeDescriptor;

    fn schema() -> Schema {
        Schema::new(vec![
            AttributeDescriptor::numeric("age"),
            AttributeDescriptor::categorical("blood"),
            AttributeDescriptor::alphanumeric("dna", Alphabet::dna()),
        ])
        .unwrap()
    }

    fn record(age: f64, blood: &str, dna: &str) -> Record {
        Record::new(vec![
            AttributeValue::numeric(age),
            AttributeValue::categorical(blood),
            AttributeValue::alphanumeric(dna),
        ])
    }

    #[test]
    fn build_matrix_and_read_columns() {
        let m = DataMatrix::with_rows(
            schema(),
            vec![record(30.0, "A", "acgt"), record(45.0, "B", "tgca")],
        )
        .unwrap();
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        assert_eq!(m.numeric_column(0).unwrap(), vec![30.0, 45.0]);
        assert_eq!(m.categorical_column(1).unwrap(), vec!["A", "B"]);
        assert_eq!(m.string_column(2).unwrap(), vec!["acgt", "tgca"]);
        assert_eq!(m.column(0).unwrap().len(), 2);
        assert!(m.column(7).is_err());
    }

    #[test]
    fn column_type_checks() {
        let m = DataMatrix::with_rows(schema(), vec![record(30.0, "A", "acgt")]).unwrap();
        assert!(m.numeric_column(1).is_err());
        assert!(m.string_column(0).is_err());
        assert!(m.categorical_column(2).is_err());
    }

    #[test]
    fn push_validates_rows() {
        let mut m = DataMatrix::new(schema());
        assert!(m.push(record(30.0, "A", "acgt")).is_ok());
        assert!(m
            .push(Record::new(vec![AttributeValue::numeric(1.0)]))
            .is_err());
        assert!(m
            .push(Record::new(vec![
                AttributeValue::numeric(1.0),
                AttributeValue::categorical("A"),
                AttributeValue::alphanumeric("xxxx"),
            ]))
            .is_err());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn partition_ids_and_schema_check() {
        let m = DataMatrix::with_rows(
            schema(),
            vec![record(30.0, "A", "acgt"), record(45.0, "B", "tgca")],
        )
        .unwrap();
        let p = HorizontalPartition::new(1, m);
        assert_eq!(p.site(), 1);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(
            p.object_ids()
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>(),
            vec!["B1", "B2"]
        );
        assert!(p.validate_schema(&schema()).is_ok());
        let other = Schema::new(vec![AttributeDescriptor::numeric("age")]).unwrap();
        assert!(p.validate_schema(&other).is_err());
        assert_eq!(p.matrix().len(), 2);
    }
}
