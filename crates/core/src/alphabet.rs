//! Finite alphabets for alphanumeric attributes.
//!
//! The alphanumeric comparison protocol requires the string alphabet to be
//! finite so that "addition of a random number and a character is another
//! alphabet character" (§4.2). An [`Alphabet`] maps characters to dense
//! symbol indices `0..size` and back.

use serde::{Deserialize, Serialize};

use crate::error::CoreError;

/// A finite, ordered character alphabet.
///
/// Alphabets are small (a handful to a few dozen symbols), so lookups use a
/// linear scan; this keeps the type trivially serializable and cheap to
/// clone into protocol sessions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Alphabet {
    symbols: Vec<char>,
}

impl Alphabet {
    /// Builds an alphabet from a list of distinct characters.
    pub fn new(symbols: impl IntoIterator<Item = char>) -> Result<Self, CoreError> {
        let symbols: Vec<char> = symbols.into_iter().collect();
        if symbols.len() < 2 {
            return Err(CoreError::Protocol(
                "an alphabet needs at least two symbols".into(),
            ));
        }
        for (i, &c) in symbols.iter().enumerate() {
            if symbols[..i].contains(&c) {
                return Err(CoreError::Protocol(format!(
                    "duplicate symbol '{c}' in alphabet"
                )));
            }
        }
        Ok(Alphabet { symbols })
    }

    /// The DNA alphabet `{a, c, g, t}` from the paper's bird-flu motivation.
    pub fn dna() -> Self {
        Alphabet::new(['a', 'c', 'g', 't']).expect("static alphabet is valid")
    }

    /// The four-symbol demo alphabet `{a, b, c, d}` used in Figure 7.
    pub fn abcd() -> Self {
        Alphabet::new(['a', 'b', 'c', 'd']).expect("static alphabet is valid")
    }

    /// Lower-case Latin letters.
    pub fn lowercase() -> Self {
        Alphabet::new('a'..='z').expect("static alphabet is valid")
    }

    /// Lower-case Latin letters, digits and a space (useful for free-text
    /// identifiers in the record-linkage example).
    pub fn alphanumeric_lower() -> Self {
        let mut symbols: Vec<char> = ('a'..='z').collect();
        symbols.extend('0'..='9');
        symbols.push(' ');
        Alphabet::new(symbols).expect("static alphabet is valid")
    }

    /// Number of symbols.
    pub fn size(&self) -> u32 {
        self.symbols.len() as u32
    }

    /// Maps a character to its symbol index.
    pub fn index_of(&self, c: char) -> Result<u32, CoreError> {
        self.symbols
            .iter()
            .position(|&s| s == c)
            .map(|i| i as u32)
            .ok_or(CoreError::SymbolOutsideAlphabet { symbol: c })
    }

    /// Maps a symbol index back to its character.
    pub fn char_at(&self, index: u32) -> Option<char> {
        self.symbols.get(index as usize).copied()
    }

    /// Encodes a string into symbol indices.
    pub fn encode(&self, s: &str) -> Result<Vec<u32>, CoreError> {
        s.chars().map(|c| self.index_of(c)).collect()
    }

    /// Decodes symbol indices back into a string (indices must be in range).
    pub fn decode(&self, indices: &[u32]) -> Result<String, CoreError> {
        indices
            .iter()
            .map(|&i| {
                self.char_at(i).ok_or_else(|| {
                    CoreError::Protocol(format!("symbol index {i} outside alphabet"))
                })
            })
            .collect()
    }

    /// Checks that every character of `s` belongs to the alphabet.
    pub fn validate(&self, s: &str) -> Result<(), CoreError> {
        for c in s.chars() {
            self.index_of(c)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Alphabet::new(['a']).is_err());
        assert!(Alphabet::new(['a', 'a']).is_err());
        assert!(Alphabet::new(['a', 'b']).is_ok());
    }

    #[test]
    fn builtin_alphabets() {
        assert_eq!(Alphabet::dna().size(), 4);
        assert_eq!(Alphabet::abcd().size(), 4);
        assert_eq!(Alphabet::lowercase().size(), 26);
        assert_eq!(Alphabet::alphanumeric_lower().size(), 37);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let dna = Alphabet::dna();
        let encoded = dna.encode("gattaca").unwrap();
        assert_eq!(encoded, vec![2, 0, 3, 3, 0, 1, 0]);
        assert_eq!(dna.decode(&encoded).unwrap(), "gattaca");
        assert!(dna.encode("gattacax").is_err());
        assert!(dna.decode(&[9]).is_err());
        assert!(dna.validate("acgt").is_ok());
        assert!(dna.validate("xyz").is_err());
    }

    #[test]
    fn index_lookup() {
        let ab = Alphabet::abcd();
        assert_eq!(ab.index_of('a').unwrap(), 0);
        assert_eq!(ab.index_of('d').unwrap(), 3);
        assert!(ab.index_of('z').is_err());
        assert_eq!(ab.char_at(2), Some('c'));
        assert_eq!(ab.char_at(9), None);
    }

    #[test]
    fn clone_roundtrip_preserves_lookups() {
        // serde_json is unavailable offline (the serde derives are no-op
        // stand-ins); assert that a structural copy preserves the lookup
        // tables a serialisation round-trip would have to reconstruct.
        let dna = Alphabet::dna();
        let back = dna.clone();
        assert_eq!(back, dna);
        assert_eq!(back.index_of('t').unwrap(), 3);
        assert_eq!(back.char_at(3), dna.char_at(3));
    }
}
