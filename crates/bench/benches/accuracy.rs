//! Accuracy-pipeline benchmark (E7): times the privacy-preserving pipeline
//! against the centralized and sanitization baselines on the same workload,
//! and prints the accuracy table once so the bench log documents the
//! "no loss of accuracy" result.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ppc_baselines::centralized::CentralizedBaseline;
use ppc_baselines::sanitization::SanitizationBaseline;
use ppc_bench::runners::{accuracy_comparison, run_session};
use ppc_cluster::Linkage;
use ppc_core::protocol::NumericMode;
use ppc_data::Workload;

fn bench_accuracy(c: &mut Criterion) {
    let workload = Workload::bird_flu(30, 3, 3, 31).unwrap();
    let rows = accuracy_comparison(&workload, 3, &[0.3]).unwrap();
    for row in &rows {
        eprintln!(
            "[accuracy] {:<44} ARI(truth)={:.3} ARI(centralized)={:.3}",
            row.method, row.ari_vs_truth, row.ari_vs_centralized
        );
    }

    let mut group = c.benchmark_group("accuracy_pipelines");
    group.sample_size(10);
    group.bench_function("privacy_preserving_protocol", |b| {
        b.iter(|| {
            run_session(
                black_box(&workload),
                NumericMode::Batch,
                3,
                Linkage::Average,
            )
            .unwrap()
        })
    });
    let schema = workload.schema().clone();
    let central = CentralizedBaseline::new(schema.clone());
    group.bench_function("centralized_baseline", |b| {
        b.iter(|| {
            central
                .run(
                    black_box(&workload.partitions),
                    &schema.uniform_weights(),
                    Linkage::Average,
                    3,
                )
                .unwrap()
        })
    });
    let sanitizer = SanitizationBaseline::new(schema.clone(), 0.3, 7).unwrap();
    group.bench_function("sanitization_baseline", |b| {
        b.iter(|| {
            let sanitized = sanitizer
                .sanitize_all(black_box(&workload.partitions))
                .unwrap();
            central
                .run(&sanitized, &schema.uniform_weights(), Linkage::Average, 3)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_accuracy);
criterion_main!(benches);
