//! Multi-session engine throughput: wall-clock cost of completing 1 / 4 / 8
//! concurrent clustering sessions over one in-memory transport, chunked vs
//! whole-matrix streaming.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ppc_cluster::Linkage;
use ppc_core::protocol::driver::ClusteringRequest;
use ppc_core::protocol::engine::{SessionEngine, SessionSpec};
use ppc_core::protocol::party::TrustedSetup;
use ppc_core::protocol::ProtocolConfig;
use ppc_crypto::Seed;
use ppc_data::Workload;
use ppc_net::Network;

fn spec(seed: u64, chunk_rows: Option<usize>) -> SessionSpec {
    let workload = Workload::bird_flu(24, 3, 3, seed).unwrap();
    let schema = workload.schema().clone();
    let setup =
        TrustedSetup::deterministic(workload.partitions.clone(), &Seed::from_u64(seed)).unwrap();
    SessionSpec {
        schema: schema.clone(),
        config: ProtocolConfig::default(),
        holders: setup.holders,
        keys: setup.third_party,
        request: ClusteringRequest {
            weights: schema.uniform_weights(),
            linkage: Linkage::Average,
            num_clusters: 3,
        },
        chunk_rows,
    }
}

fn run_engine(specs: &[SessionSpec]) -> usize {
    let mut engine = SessionEngine::new(Network::with_parties(3));
    for spec in specs {
        engine.add_session(spec.clone());
    }
    engine.run().unwrap().len()
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    for &sessions in &[1usize, 4, 8] {
        let specs: Vec<SessionSpec> = (0..sessions)
            .map(|i| spec(40 + i as u64, Some(4)))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("concurrent_sessions", sessions),
            &sessions,
            |b, _| b.iter(|| run_engine(black_box(&specs))),
        );
    }
    let whole: Vec<SessionSpec> = vec![spec(40, None)];
    group.bench_function("one_session_whole_matrix", |b| {
        b.iter(|| run_engine(black_box(&whole)))
    });
    let chunked: Vec<SessionSpec> = vec![spec(40, Some(4))];
    group.bench_function("one_session_chunked_w4", |b| {
        b.iter(|| run_engine(black_box(&chunked)))
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
