//! Multi-session engine throughput: wall-clock cost of completing 1 / 4 / 8
//! concurrent clustering sessions over one in-memory transport, chunked vs
//! whole-matrix streaming, plus the sharded engine at 1 / 2 / 4 worker
//! threads over in-memory and loopback-TCP transports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ppc_cluster::Linkage;
use ppc_core::protocol::driver::ClusteringRequest;
use ppc_core::protocol::engine::{SessionEngine, SessionSpec};
use ppc_core::protocol::party::TrustedSetup;
use ppc_core::protocol::sharded::ShardedEngine;
use ppc_core::protocol::ProtocolConfig;
use ppc_crypto::Seed;
use ppc_data::Workload;
use ppc_net::{Backoff, Network, PartyId, TcpRouter, TcpTransport};

fn spec(seed: u64, chunk_rows: Option<usize>) -> SessionSpec {
    let workload = Workload::bird_flu(24, 3, 3, seed).unwrap();
    let schema = workload.schema().clone();
    let setup =
        TrustedSetup::deterministic(workload.partitions.clone(), &Seed::from_u64(seed)).unwrap();
    SessionSpec {
        schema: schema.clone(),
        config: ProtocolConfig::default(),
        holders: setup.holders,
        keys: setup.third_party,
        request: ClusteringRequest {
            weights: schema.uniform_weights(),
            linkage: Linkage::Average,
            num_clusters: 3,
        },
        chunk_rows,
    }
}

fn run_engine(specs: &[SessionSpec]) -> usize {
    let mut engine = SessionEngine::new(Network::with_parties(3));
    for spec in specs {
        engine.add_session(spec.clone());
    }
    engine.run().unwrap().len()
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    for &sessions in &[1usize, 4, 8] {
        let specs: Vec<SessionSpec> = (0..sessions)
            .map(|i| spec(40 + i as u64, Some(4)))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("concurrent_sessions", sessions),
            &sessions,
            |b, _| b.iter(|| run_engine(black_box(&specs))),
        );
    }
    let whole: Vec<SessionSpec> = vec![spec(40, None)];
    group.bench_function("one_session_whole_matrix", |b| {
        b.iter(|| run_engine(black_box(&whole)))
    });
    let chunked: Vec<SessionSpec> = vec![spec(40, Some(4))];
    group.bench_function("one_session_chunked_w4", |b| {
        b.iter(|| run_engine(black_box(&chunked)))
    });
    group.finish();
}

fn run_sharded_memory(specs: &[SessionSpec], shards: usize) -> usize {
    let transports: Vec<Network> = (0..shards).map(|_| Network::with_parties(3)).collect();
    let mut engine = ShardedEngine::new(transports).unwrap();
    for spec in specs {
        engine.add_session(spec.clone());
    }
    engine.run().unwrap().outcomes.len()
}

fn run_sharded_tcp(specs: &[SessionSpec], addr: std::net::SocketAddr, shards: usize) -> usize {
    let parties: Vec<PartyId> = (0..3u32)
        .map(PartyId::DataHolder)
        .chain([PartyId::ThirdParty])
        .collect();
    let transports: Vec<TcpTransport> = (0..shards)
        .map(|_| {
            let t = TcpTransport::new(parties.iter().copied());
            t.connect(addr, &Backoff::default()).unwrap();
            t
        })
        .collect();
    let mut engine = ShardedEngine::new(transports).unwrap();
    for spec in specs {
        engine.add_session(spec.clone());
    }
    engine.set_stall_budget(std::time::Duration::from_millis(100), 100);
    let count = engine.run().unwrap().outcomes.len();
    for transport in engine.transports() {
        transport.shutdown();
    }
    count
}

fn bench_sharded(c: &mut Criterion) {
    let specs: Vec<SessionSpec> = (0..8).map(|i| spec(40 + i as u64, Some(4))).collect();
    let mut group = c.benchmark_group("sharded");
    group.sample_size(10);
    for &shards in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("memory/shards", shards),
            &shards,
            |b, &shards| b.iter(|| run_sharded_memory(black_box(&specs), shards)),
        );
    }
    let (mut router, addr) = TcpRouter::spawn("127.0.0.1:0").unwrap();
    for &shards in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("loopback_tcp/shards", shards),
            &shards,
            |b, &shards| b.iter(|| run_sharded_tcp(black_box(&specs), addr, shards)),
        );
    }
    router.shutdown();
    group.finish();
}

criterion_group!(benches, bench_engine, bench_sharded);
criterion_main!(benches);
