//! Clustering-stage benchmarks: the Lance–Williams linkages, the
//! partitioning baselines and the agreement metrics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ppc_cluster::agreement::adjusted_rand_index;
use ppc_cluster::dbscan::{dbscan, DbscanConfig};
use ppc_cluster::kmedoids::{kmedoids, KMedoidsConfig};
use ppc_cluster::{AgglomerativeClustering, ClusterAssignment, CondensedDistanceMatrix, Linkage};

fn blob_matrix(n: usize) -> CondensedDistanceMatrix {
    // Three 1-D blobs at 0, 100, 200.
    let coords: Vec<f64> = (0..n)
        .map(|i| (i % 3) as f64 * 100.0 + (i as f64 * 0.618).fract() * 5.0)
        .collect();
    CondensedDistanceMatrix::from_fn(n, |i, j| (coords[i] - coords[j]).abs())
}

fn bench_linkages(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchical_linkages");
    group.sample_size(10);
    let matrix = blob_matrix(200);
    for linkage in Linkage::ALL {
        group.bench_function(BenchmarkId::new("fit", format!("{linkage:?}")), |b| {
            b.iter(|| {
                AgglomerativeClustering::new(linkage)
                    .fit(black_box(&matrix))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchical_scaling");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let matrix = blob_matrix(n);
        group.bench_with_input(BenchmarkId::new("average_linkage", n), &n, |b, _| {
            b.iter(|| {
                AgglomerativeClustering::new(Linkage::Average)
                    .fit_k(black_box(&matrix), 3)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering_baselines");
    group.sample_size(10);
    let matrix = blob_matrix(150);
    group.bench_function("kmedoids_k3", |b| {
        b.iter(|| kmedoids(black_box(&matrix), &KMedoidsConfig::new(3)).unwrap())
    });
    group.bench_function("dbscan", |b| {
        b.iter(|| {
            dbscan(
                black_box(&matrix),
                &DbscanConfig {
                    eps: 10.0,
                    min_points: 3,
                },
            )
            .unwrap()
        })
    });
    let truth: Vec<usize> = (0..150).map(|i| i % 3).collect();
    let truth = ClusterAssignment::from_labels(&truth);
    let predicted = AgglomerativeClustering::new(Linkage::Average)
        .fit_k(&matrix, 3)
        .unwrap();
    group.bench_function("adjusted_rand_index", |b| {
        b.iter(|| adjusted_rand_index(black_box(&predicted), &truth).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_linkages, bench_scaling, bench_baselines);
criterion_main!(benches);
