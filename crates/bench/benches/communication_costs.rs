//! Communication-cost sweeps (E4/E5): the benchmark times the sweep runner
//! and, once per size, reports the measured bytes so `cargo bench` output
//! also documents the cost curves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ppc_bench::runners::{alphanumeric_cost_sweep, numeric_cost_sweep};
use ppc_core::protocol::NumericMode;

fn bench_numeric_costs(c: &mut Criterion) {
    let mut group = c.benchmark_group("communication_numeric");
    group.sample_size(10);
    for &n in &[32usize, 128] {
        // Print the measured byte counts once so the bench log doubles as a
        // cost table.
        let rows = numeric_cost_sweep(&[n], NumericMode::Batch).unwrap();
        eprintln!(
            "[costs] numeric batch n={n}: DH_J {} B, DH_K {} B, total {} B",
            rows[0].initiator_bytes, rows[0].responder_bytes, rows[0].total_bytes
        );
        group.bench_with_input(BenchmarkId::new("batch", n), &n, |b, &n| {
            b.iter(|| numeric_cost_sweep(black_box(&[n]), NumericMode::Batch).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("per_pair", n), &n, |b, &n| {
            b.iter(|| numeric_cost_sweep(black_box(&[n]), NumericMode::PerPair).unwrap())
        });
    }
    group.finish();
}

fn bench_alphanumeric_costs(c: &mut Criterion) {
    let mut group = c.benchmark_group("communication_alphanumeric");
    group.sample_size(10);
    for &(n, len) in &[(8usize, 16usize), (16, 32)] {
        let rows = alphanumeric_cost_sweep(&[n], len).unwrap();
        eprintln!(
            "[costs] alphanumeric n={n} |s|={len}: DH_J {} B, DH_K {} B, total {} B",
            rows[0].initiator_bytes, rows[0].responder_bytes, rows[0].total_bytes
        );
        group.bench_with_input(
            BenchmarkId::new("sweep", format!("n{n}_len{len}")),
            &(n, len),
            |b, &(n, len)| b.iter(|| alphanumeric_cost_sweep(black_box(&[n]), len).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_numeric_costs, bench_alphanumeric_costs);
criterion_main!(benches);
