//! End-to-end dissimilarity-matrix construction (Figure 11) benchmarks:
//! in-memory driver vs networked session, over workload size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ppc_cluster::Linkage;
use ppc_core::protocol::driver::{ClusteringRequest, ThirdPartyDriver};
use ppc_core::protocol::party::TrustedSetup;
use ppc_core::protocol::session::ClusteringSession;
use ppc_core::protocol::ProtocolConfig;
use ppc_crypto::Seed;
use ppc_data::Workload;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    for &objects in &[24usize, 48, 96] {
        let workload = Workload::bird_flu(objects, 3, 3, 11).unwrap();
        let schema = workload.schema().clone();
        let setup =
            TrustedSetup::deterministic(workload.partitions.clone(), &Seed::from_u64(1)).unwrap();
        let driver = ThirdPartyDriver::new(schema.clone(), ProtocolConfig::default());
        group.bench_with_input(
            BenchmarkId::new("driver_construct", objects),
            &objects,
            |b, _| {
                b.iter(|| {
                    driver
                        .construct(black_box(&setup.holders), &setup.third_party)
                        .unwrap()
                })
            },
        );
        let request = ClusteringRequest {
            weights: schema.uniform_weights(),
            linkage: Linkage::Average,
            num_clusters: 3,
        };
        group.bench_with_input(
            BenchmarkId::new("networked_session", objects),
            &objects,
            |b, _| {
                b.iter(|| {
                    let session =
                        ClusteringSession::new(schema.clone(), ProtocolConfig::default(), 3);
                    session
                        .run(black_box(&setup.holders), &setup.third_party, &request)
                        .unwrap()
                })
            },
        );
        let output = driver
            .construct(&setup.holders, &setup.third_party)
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("cluster_stage", objects),
            &objects,
            |b, _| b.iter(|| driver.cluster(black_box(&output), &request).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
