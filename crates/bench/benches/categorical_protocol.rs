//! Microbenchmarks of the categorical comparison protocol (§4.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ppc_core::protocol::categorical;
use ppc_crypto::Prf128;

fn labels(n: usize) -> Vec<String> {
    let vocabulary = ["A", "B", "AB", "O", "unknown"];
    (0..n)
        .map(|i| vocabulary[i % vocabulary.len()].to_string())
        .collect()
}

fn bench_categorical(c: &mut Criterion) {
    let key = Prf128::new(&[9u8; 32]);
    let mut group = c.benchmark_group("categorical");
    group.sample_size(20);
    for &n in &[256usize, 1024, 4096] {
        let column = labels(n);
        group.bench_with_input(BenchmarkId::new("encrypt_column", n), &n, |b, _| {
            b.iter(|| categorical::encrypt_column(black_box(&column), &key))
        });
    }
    for &n in &[128usize, 512] {
        let sites: Vec<_> = (0..3)
            .map(|_| categorical::encrypt_column(&labels(n), &key))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("third_party_dissimilarity", 3 * n),
            &n,
            |b, _| b.iter(|| categorical::third_party_dissimilarity(black_box(&sites)).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_categorical);
criterion_main!(benches);
