//! Microbenchmarks of the numeric comparison protocol roles (§4.1), with the
//! batch vs per-pair and ChaCha20 vs Xoshiro ablations from DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ppc_core::protocol::numeric;
use ppc_crypto::{PairwiseSeeds, RngAlgorithm, Seed};

fn column(n: usize) -> Vec<i64> {
    (0..n as i64)
        .map(|i| i.wrapping_mul(1_000_003) % 1_000_000)
        .collect()
}

fn seeds() -> PairwiseSeeds {
    PairwiseSeeds::new(Seed::from_u64(1), Seed::from_u64(2))
}

fn bench_roles(c: &mut Criterion) {
    let mut group = c.benchmark_group("numeric_roles");
    group.sample_size(20);
    for &n in &[64usize, 256, 1024] {
        let j = column(n);
        let k = column(n / 2);
        let seeds = seeds();
        let algorithm = RngAlgorithm::ChaCha20;
        group.bench_with_input(BenchmarkId::new("initiator_mask", n), &n, |b, _| {
            b.iter(|| numeric::initiator_mask(black_box(&j), &seeds, algorithm))
        });
        let masked = numeric::initiator_mask(&j, &seeds, algorithm);
        group.bench_with_input(BenchmarkId::new("responder_fold", n), &n, |b, _| {
            b.iter(|| {
                numeric::responder_fold(black_box(&masked), &k, &seeds.holder_holder, algorithm)
            })
        });
        let pairwise = numeric::responder_fold(&masked, &k, &seeds.holder_holder, algorithm);
        group.bench_with_input(BenchmarkId::new("third_party_unmask", n), &n, |b, _| {
            b.iter(|| {
                numeric::third_party_unmask(
                    black_box(&pairwise),
                    &seeds.holder_third_party,
                    algorithm,
                )
            })
        });
    }
    group.finish();
}

fn bench_rng_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("numeric_rng_ablation");
    group.sample_size(20);
    let j = column(512);
    let k = column(256);
    let seeds = seeds();
    for algorithm in [
        RngAlgorithm::ChaCha20,
        RngAlgorithm::Xoshiro256PlusPlus,
        RngAlgorithm::SplitMix64,
    ] {
        group.bench_function(
            BenchmarkId::new("full_pair", format!("{algorithm:?}")),
            |b| {
                b.iter(|| {
                    let masked = numeric::initiator_mask(black_box(&j), &seeds, algorithm);
                    let pairwise =
                        numeric::responder_fold(&masked, &k, &seeds.holder_holder, algorithm);
                    numeric::third_party_unmask(&pairwise, &seeds.holder_third_party, algorithm)
                })
            },
        );
    }
    group.finish();
}

fn bench_batch_vs_per_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("numeric_batch_vs_per_pair");
    group.sample_size(15);
    let j = column(256);
    let k = column(128);
    let seeds = seeds();
    let algorithm = RngAlgorithm::ChaCha20;
    group.bench_function("batch", |b| {
        b.iter(|| {
            let masked = numeric::initiator_mask(black_box(&j), &seeds, algorithm);
            let pairwise = numeric::responder_fold(&masked, &k, &seeds.holder_holder, algorithm);
            numeric::third_party_unmask(&pairwise, &seeds.holder_third_party, algorithm)
        })
    });
    group.bench_function("per_pair", |b| {
        b.iter(|| {
            let masked =
                numeric::initiator_mask_per_pair(black_box(&j), k.len(), &seeds, algorithm);
            let pairwise =
                numeric::responder_fold_per_pair(&masked, &k, &seeds.holder_holder, algorithm)
                    .unwrap();
            numeric::third_party_unmask_per_pair(&pairwise, &seeds.holder_third_party, algorithm)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_roles,
    bench_rng_ablation,
    bench_batch_vs_per_pair
);
criterion_main!(benches);
