//! Microbenchmarks of the alphanumeric (edit-distance) comparison protocol
//! roles (§4.2), swept over string length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ppc_core::alphabet::Alphabet;
use ppc_core::protocol::alphanumeric;
use ppc_crypto::{PairwiseSeeds, RngAlgorithm, Seed};

fn strings(count: usize, length: usize, alphabet: &Alphabet) -> Vec<Vec<u32>> {
    (0..count)
        .map(|i| {
            (0..length)
                .map(|p| ((i * 31 + p * 7) as u32) % alphabet.size())
                .collect()
        })
        .collect()
}

fn bench_alphanumeric(c: &mut Criterion) {
    let alphabet = Alphabet::dna();
    let seeds = PairwiseSeeds::new(Seed::from_u64(3), Seed::from_u64(4));
    let algorithm = RngAlgorithm::ChaCha20;
    let mut group = c.benchmark_group("alphanumeric_roles");
    group.sample_size(15);
    for &length in &[16usize, 32, 64] {
        let j = strings(12, length, &alphabet);
        let k = strings(8, length, &alphabet);
        group.bench_with_input(
            BenchmarkId::new("initiator_mask", length),
            &length,
            |b, _| {
                b.iter(|| {
                    alphanumeric::initiator_mask_strings(
                        black_box(&j),
                        alphabet.size(),
                        &seeds,
                        algorithm,
                    )
                    .unwrap()
                })
            },
        );
        let masked =
            alphanumeric::initiator_mask_strings(&j, alphabet.size(), &seeds, algorithm).unwrap();
        group.bench_with_input(
            BenchmarkId::new("responder_bundle", length),
            &length,
            |b, _| {
                b.iter(|| {
                    alphanumeric::responder_build_bundle(black_box(&masked), &k, alphabet.size())
                        .unwrap()
                })
            },
        );
        let bundle = alphanumeric::responder_build_bundle(&masked, &k, alphabet.size()).unwrap();
        group.bench_with_input(
            BenchmarkId::new("third_party_edit_distances", length),
            &length,
            |b, _| {
                b.iter(|| {
                    alphanumeric::third_party_edit_distances(
                        black_box(&bundle),
                        alphabet.size(),
                        &seeds.holder_third_party,
                        algorithm,
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_alphanumeric);
criterion_main!(benches);
