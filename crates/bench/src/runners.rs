//! Shared machinery for the experiments and benches.

use ppc_baselines::centralized::CentralizedBaseline;
use ppc_baselines::sanitization::SanitizationBaseline;
use ppc_cluster::agreement::adjusted_rand_index;
use ppc_cluster::{ClusterAssignment, Linkage};
use ppc_core::protocol::driver::ClusteringRequest;
use ppc_core::protocol::party::TrustedSetup;
use ppc_core::protocol::session::ClusteringSession;
use ppc_core::protocol::{NumericMode, ProtocolConfig};
use ppc_core::CoreError;
use ppc_crypto::Seed;
use ppc_data::Workload;
use ppc_net::{CommReport, PartyId};

/// Summary of one networked protocol run.
#[derive(Debug, Clone)]
pub struct SessionSummary {
    /// Workload name.
    pub workload: String,
    /// Objects per site.
    pub site_sizes: Vec<usize>,
    /// Communication accounting.
    pub communication: CommReport,
    /// Adjusted Rand index of the published clustering against the
    /// workload's ground truth.
    pub ari_vs_truth: f64,
    /// Adjusted Rand index against the centralized baseline clustering
    /// (1.0 = identical partitions, the paper's "no loss of accuracy").
    pub ari_vs_centralized: f64,
    /// Maximum absolute difference between the protocol's final matrix and
    /// the centralized final matrix.
    pub matrix_max_difference: f64,
}

/// Runs the networked session for a workload and compares it against the
/// centralized baseline.
pub fn run_session(
    workload: &Workload,
    mode: NumericMode,
    clusters: usize,
    linkage: Linkage,
) -> Result<SessionSummary, CoreError> {
    let schema = workload.schema().clone();
    let setup = TrustedSetup::deterministic(workload.partitions.clone(), &Seed::from_u64(0xA11CE))?;
    let config = ProtocolConfig {
        numeric_mode: mode,
        ..ProtocolConfig::default()
    };
    let session = ClusteringSession::new(schema.clone(), config, workload.partitions.len());
    let request = ClusteringRequest {
        weights: schema.uniform_weights(),
        linkage,
        num_clusters: clusters,
    };
    let outcome = session.run(&setup.holders, &setup.third_party, &request)?;

    let truth = ClusterAssignment::from_labels(&workload.ground_truth_in_site_order());
    let published =
        assignment_from_result(&outcome.result, &outcome.final_matrix.index().ids().len());
    let ari_vs_truth = adjusted_rand_index(&published, &truth).unwrap_or(0.0);

    let central = CentralizedBaseline::new(schema.clone());
    let central_out = central
        .run(
            &workload.partitions,
            &schema.uniform_weights(),
            linkage,
            clusters,
        )
        .map_err(|e| CoreError::Protocol(e.to_string()))?;
    let ari_vs_centralized =
        adjusted_rand_index(&published, &central_out.assignment).unwrap_or(0.0);
    let matrix_max_difference = outcome
        .final_matrix
        .matrix()
        .max_abs_difference(central_out.final_matrix.matrix());

    Ok(SessionSummary {
        workload: workload.name.clone(),
        site_sizes: workload.partitions.iter().map(|p| p.len()).collect(),
        communication: outcome.communication,
        ari_vs_truth,
        ari_vs_centralized,
        matrix_max_difference,
    })
}

/// Converts a published membership-list result back into a flat assignment
/// in global object order.
pub fn assignment_from_result(
    result: &ppc_core::ClusteringResult,
    total_objects: &usize,
) -> ClusterAssignment {
    let mut labels = vec![0usize; *total_objects];
    // Global order is site-sorted, matching ObjectIndex; recover it by
    // sorting all object ids.
    let mut ids: Vec<(ppc_core::ObjectId, usize)> = Vec::with_capacity(*total_objects);
    for (cluster, members) in result.clusters.iter().enumerate() {
        for &id in members {
            ids.push((id, cluster));
        }
    }
    ids.sort_by_key(|(id, _)| *id);
    for (global, (_, cluster)) in ids.into_iter().enumerate() {
        if global < labels.len() {
            labels[global] = cluster;
        }
    }
    ClusterAssignment::from_labels(&labels)
}

/// One row of a communication-cost sweep.
#[derive(Debug, Clone)]
pub struct CostRow {
    /// Number of objects at the initiator site (`n`).
    pub initiator_objects: usize,
    /// Number of objects at the responder site (`m`).
    pub responder_objects: usize,
    /// Bytes sent by the initiator (`DH_J`).
    pub initiator_bytes: u64,
    /// Bytes sent by the responder (`DH_K`).
    pub responder_bytes: u64,
    /// Total bytes across all links.
    pub total_bytes: u64,
}

/// Sweeps the numeric protocol's communication cost over object counts,
/// using a two-site workload so `DH_0` is the initiator and `DH_1` the
/// responder for the single cross-site pair.
pub fn numeric_cost_sweep(sizes: &[usize], mode: NumericMode) -> Result<Vec<CostRow>, CoreError> {
    let mut rows = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let workload = Workload::numeric_only(2 * n, 2, 2, 7)
            .map_err(|e| CoreError::Protocol(e.to_string()))?;
        let summary = run_session(&workload, mode, 2, Linkage::Average)?;
        rows.push(CostRow {
            initiator_objects: summary.site_sizes[0],
            responder_objects: summary.site_sizes[1],
            initiator_bytes: summary.communication.bytes_sent_by(PartyId::DataHolder(0)),
            responder_bytes: summary.communication.bytes_sent_by(PartyId::DataHolder(1)),
            total_bytes: summary.communication.total_bytes(),
        });
    }
    Ok(rows)
}

/// Sweeps the alphanumeric protocol's communication cost over object counts
/// and string lengths.
pub fn alphanumeric_cost_sweep(
    sizes: &[usize],
    string_length: usize,
) -> Result<Vec<CostRow>, CoreError> {
    let mut rows = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let workload = Workload::dna_only(2 * n, 2, 2, string_length, 13)
            .map_err(|e| CoreError::Protocol(e.to_string()))?;
        let summary = run_session(&workload, NumericMode::Batch, 2, Linkage::Average)?;
        rows.push(CostRow {
            initiator_objects: summary.site_sizes[0],
            responder_objects: summary.site_sizes[1],
            initiator_bytes: summary.communication.bytes_sent_by(PartyId::DataHolder(0)),
            responder_bytes: summary.communication.bytes_sent_by(PartyId::DataHolder(1)),
            total_bytes: summary.communication.total_bytes(),
        });
    }
    Ok(rows)
}

/// One row of the accuracy comparison (E7).
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Method label.
    pub method: String,
    /// Adjusted Rand index against ground truth.
    pub ari_vs_truth: f64,
    /// Adjusted Rand index against the centralized clustering.
    pub ari_vs_centralized: f64,
    /// Maximum dissimilarity-matrix deviation from centralized (if the
    /// method produces a matrix).
    pub matrix_max_difference: Option<f64>,
}

/// Runs the accuracy comparison on one workload: protocol vs centralized vs
/// sanitization at several noise levels.
pub fn accuracy_comparison(
    workload: &Workload,
    clusters: usize,
    noise_levels: &[f64],
) -> Result<Vec<AccuracyRow>, CoreError> {
    let schema = workload.schema().clone();
    let linkage = Linkage::Average;
    let truth = ClusterAssignment::from_labels(&workload.ground_truth_in_site_order());

    let central = CentralizedBaseline::new(schema.clone());
    let central_out = central
        .run(
            &workload.partitions,
            &schema.uniform_weights(),
            linkage,
            clusters,
        )
        .map_err(|e| CoreError::Protocol(e.to_string()))?;
    let central_ari = adjusted_rand_index(&central_out.assignment, &truth).unwrap_or(0.0);

    let mut rows = Vec::new();
    rows.push(AccuracyRow {
        method: "centralized (non-private)".into(),
        ari_vs_truth: central_ari,
        ari_vs_centralized: 1.0,
        matrix_max_difference: Some(0.0),
    });

    let summary = run_session(workload, NumericMode::Batch, clusters, linkage)?;
    rows.push(AccuracyRow {
        method: "this paper (privacy-preserving protocol)".into(),
        ari_vs_truth: summary.ari_vs_truth,
        ari_vs_centralized: summary.ari_vs_centralized,
        matrix_max_difference: Some(summary.matrix_max_difference),
    });

    for &noise in noise_levels {
        let sanitizer = SanitizationBaseline::new(schema.clone(), noise, 17)
            .map_err(|e| CoreError::Protocol(e.to_string()))?;
        let sanitized = sanitizer
            .sanitize_all(&workload.partitions)
            .map_err(|e| CoreError::Protocol(e.to_string()))?;
        let noisy = central
            .run(&sanitized, &schema.uniform_weights(), linkage, clusters)
            .map_err(|e| CoreError::Protocol(e.to_string()))?;
        rows.push(AccuracyRow {
            method: format!("sanitization baseline (noise {noise:.2})"),
            ari_vs_truth: adjusted_rand_index(&noisy.assignment, &truth).unwrap_or(0.0),
            ari_vs_centralized: adjusted_rand_index(&noisy.assignment, &central_out.assignment)
                .unwrap_or(0.0),
            matrix_max_difference: None,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_session_produces_consistent_summary() {
        let w = Workload::bird_flu(18, 3, 3, 4).unwrap();
        let s = run_session(&w, NumericMode::Batch, 3, Linkage::Average).unwrap();
        assert_eq!(s.site_sizes.iter().sum::<usize>(), 18);
        assert!(s.communication.total_bytes() > 0);
        assert!(s.matrix_max_difference < 1e-6);
        assert!((s.ari_vs_centralized - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cost_sweeps_grow_with_input_size() {
        let rows = numeric_cost_sweep(&[8, 32], NumericMode::Batch).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows[1].total_bytes > rows[0].total_bytes);
        assert!(rows[1].responder_bytes > rows[1].initiator_bytes);
        let rows = alphanumeric_cost_sweep(&[4, 8], 12).unwrap();
        assert!(rows[1].total_bytes > rows[0].total_bytes);
    }

    #[test]
    fn accuracy_comparison_reports_protocol_equivalence() {
        let w = Workload::customer_segmentation(24, 2, 3, 6).unwrap();
        let rows = accuracy_comparison(&w, 3, &[0.5]).unwrap();
        assert_eq!(rows.len(), 3);
        let protocol = &rows[1];
        assert!((protocol.ari_vs_centralized - 1.0).abs() < 1e-9);
        assert!(protocol.matrix_max_difference.unwrap() < 1e-6);
    }
}
