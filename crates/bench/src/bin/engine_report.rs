//! Generates `BENCH_pr3.json`: sharded-engine throughput across a
//! 1 / 2 / 4-shard × {in-memory, simulated-WAN, loopback-TCP} matrix, the
//! single-threaded engine baseline at 1 / 4 / 8 concurrent sessions, and
//! chunked-vs-whole peak buffering — measured on this machine.
//!
//! ```text
//! cargo run --release -p ppc-bench --bin engine_report [output.json]
//! ```

use std::time::Instant;

use ppc_cluster::Linkage;
use ppc_core::protocol::driver::ClusteringRequest;
use ppc_core::protocol::engine::{SessionEngine, SessionSpec};
use ppc_core::protocol::party::TrustedSetup;
use ppc_core::protocol::sharded::ShardedEngine;
use ppc_core::protocol::ProtocolConfig;
use ppc_crypto::Seed;
use ppc_data::Workload;
use ppc_net::{
    Backoff, Network, PartyId, SimulatedWan, TcpRouter, TcpTransport, WaitTransport, WanProfile,
};

const OBJECTS: usize = 48;
const WINDOW: usize = 4;
const MATRIX_SESSIONS: usize = 8;
const REPS: usize = 5;

fn spec(seed: u64, chunk_rows: Option<usize>) -> SessionSpec {
    let workload = Workload::bird_flu(OBJECTS, 3, 3, seed).unwrap();
    let schema = workload.schema().clone();
    let setup =
        TrustedSetup::deterministic(workload.partitions.clone(), &Seed::from_u64(seed)).unwrap();
    SessionSpec {
        schema: schema.clone(),
        config: ProtocolConfig::default(),
        holders: setup.holders,
        keys: setup.third_party,
        request: ClusteringRequest {
            weights: schema.uniform_weights(),
            linkage: Linkage::Average,
            num_clusters: 3,
        },
        chunk_rows,
    }
}

fn run_single(specs: &[SessionSpec]) -> Vec<ppc_core::protocol::engine::EngineOutcome> {
    let mut engine = SessionEngine::new(Network::with_parties(3));
    for s in specs {
        engine.add_session(s.clone());
    }
    engine.run().unwrap()
}

fn run_sharded<T: WaitTransport + Sync>(specs: &[SessionSpec], transports: Vec<T>) {
    let mut engine = ShardedEngine::new(transports).unwrap();
    for s in specs {
        engine.add_session(s.clone());
    }
    engine.set_stall_budget(std::time::Duration::from_millis(100), 100);
    let run = engine.run().unwrap();
    assert_eq!(run.outcomes.len(), specs.len());
}

/// Median wall-clock seconds of `run` over [`REPS`] repetitions.
fn median_seconds(mut run: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let started = Instant::now();
            run();
            started.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn all_parties() -> Vec<PartyId> {
    (0..3u32)
        .map(PartyId::DataHolder)
        .chain([PartyId::ThirdParty])
        .collect()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr3.json".to_string());
    let mut rows = Vec::new();

    // Baseline: the single-threaded engine at increasing concurrency.
    // Each row carries its compute-phase breakdown (derivation /
    // fold-unmask / merge wall time) from the last repetition.
    for &sessions in &[1usize, 4, 8] {
        let specs: Vec<SessionSpec> = (0..sessions)
            .map(|i| spec(40 + i as u64, Some(WINDOW)))
            .collect();
        let mut compute = ppc_core::protocol::machines::ComputeStats::default();
        let median = median_seconds(|| {
            let outcomes = run_single(&specs);
            assert_eq!(outcomes.len(), specs.len());
            compute = ppc_core::protocol::machines::ComputeStats::default();
            for outcome in &outcomes {
                compute.absorb(&outcome.stats.compute);
            }
        });
        rows.push(format!(
            "    {{\"id\": \"engine/concurrent_sessions/{sessions}\", \
             \"median_seconds\": {median:.6}, \
             \"sessions_per_second\": {:.2}, \
             \"derive_seconds\": {:.6}, \"fold_unmask_seconds\": {:.6}, \
             \"merge_seconds\": {:.6}}}",
            sessions as f64 / median,
            compute.derive_nanos as f64 / 1e9,
            compute.fold_unmask_nanos as f64 / 1e9,
            compute.merge_nanos as f64 / 1e9,
        ));
    }

    // The sharding matrix: 8 sessions at 1/2/4 shards over three
    // transports.
    let matrix_specs: Vec<SessionSpec> = (0..MATRIX_SESSIONS)
        .map(|i| spec(40 + i as u64, Some(WINDOW)))
        .collect();
    for &shards in &[1usize, 2, 4] {
        let median = median_seconds(|| {
            let transports: Vec<Network> = (0..shards).map(|_| Network::with_parties(3)).collect();
            run_sharded(&matrix_specs, transports);
        });
        rows.push(format!(
            "    {{\"id\": \"sharded/memory/shards{shards}\", \
             \"sessions\": {MATRIX_SESSIONS}, \"median_seconds\": {median:.6}, \
             \"sessions_per_second\": {:.2}}}",
            MATRIX_SESSIONS as f64 / median
        ));
    }
    for &shards in &[1usize, 2, 4] {
        let median = median_seconds(|| {
            let transports: Vec<SimulatedWan<Network>> = (0..shards)
                .map(|i| {
                    SimulatedWan::new(
                        Network::with_parties(3),
                        WanProfile::lossy_dsl(),
                        99 + i as u64,
                    )
                    .unwrap()
                })
                .collect();
            run_sharded(&matrix_specs, transports);
        });
        rows.push(format!(
            "    {{\"id\": \"sharded/wan_sim/shards{shards}\", \
             \"sessions\": {MATRIX_SESSIONS}, \"median_seconds\": {median:.6}, \
             \"sessions_per_second\": {:.2}}}",
            MATRIX_SESSIONS as f64 / median
        ));
    }
    {
        let (mut router, addr) = TcpRouter::spawn("127.0.0.1:0").unwrap();
        let parties = all_parties();
        for &shards in &[1usize, 2, 4] {
            let median = median_seconds(|| {
                let transports: Vec<TcpTransport> = (0..shards)
                    .map(|_| {
                        let t = TcpTransport::new(parties.iter().copied());
                        t.connect(addr, &Backoff::default()).unwrap();
                        t
                    })
                    .collect();
                run_sharded(&matrix_specs, transports);
            });
            rows.push(format!(
                "    {{\"id\": \"sharded/loopback_tcp/shards{shards}\", \
                 \"sessions\": {MATRIX_SESSIONS}, \"median_seconds\": {median:.6}, \
                 \"sessions_per_second\": {:.2}}}",
                MATRIX_SESSIONS as f64 / median
            ));
        }
        router.shutdown();
    }

    // Peak buffering: the quantity the chunk window bounds.
    let whole = run_single(&[spec(40, None)]);
    let chunked = run_single(&[spec(40, Some(WINDOW))]);
    rows.push(format!(
        "    {{\"id\": \"engine/peak_buffered_rows/whole_matrix\", \"rows\": {}}}",
        whole[0].stats.peak_buffered_rows
    ));
    rows.push(format!(
        "    {{\"id\": \"engine/peak_buffered_rows/chunked_w{WINDOW}\", \"rows\": {}}}",
        chunked[0].stats.peak_buffered_rows
    ));

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"pr\": 3,\n  \"title\": \"Threaded session sharding over real TCP/UDS \
         transports\",\n  \"workload\": \"bird_flu {OBJECTS} objects, 3 sites, 3 attributes \
         (numeric + categorical + dna), average linkage, k=3, chunk window {WINDOW}\",\n  \
         \"harness\": \"engine_report binary, wall-clock medians of {REPS} runs; loopback-TCP \
         rows include per-run connect/handshake\",\n  \"cores\": {cores},\n  \"notes\": \
         \"sharded rows drive {MATRIX_SESSIONS} sessions hash-sharded across N worker threads; \
         on a 1-core container shard scaling is purely scheduling overhead — re-measure on \
         multi-core hardware\",\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out_path, &json).unwrap();
    println!("{json}");
    println!("wrote {out_path}");
}
