//! Generates `BENCH_pr2.json`: engine throughput at 1/4/8 concurrent
//! sessions and chunked-vs-whole peak buffering, measured on this machine.
//!
//! ```text
//! cargo run --release -p ppc-bench --bin engine_report [output.json]
//! ```

use std::time::Instant;

use ppc_cluster::Linkage;
use ppc_core::protocol::driver::ClusteringRequest;
use ppc_core::protocol::engine::{EngineOutcome, SessionEngine, SessionSpec};
use ppc_core::protocol::party::TrustedSetup;
use ppc_core::protocol::ProtocolConfig;
use ppc_crypto::Seed;
use ppc_data::Workload;
use ppc_net::Network;

const OBJECTS: usize = 48;
const WINDOW: usize = 4;

fn spec(seed: u64, chunk_rows: Option<usize>) -> SessionSpec {
    let workload = Workload::bird_flu(OBJECTS, 3, 3, seed).unwrap();
    let schema = workload.schema().clone();
    let setup =
        TrustedSetup::deterministic(workload.partitions.clone(), &Seed::from_u64(seed)).unwrap();
    SessionSpec {
        schema: schema.clone(),
        config: ProtocolConfig::default(),
        holders: setup.holders,
        keys: setup.third_party,
        request: ClusteringRequest {
            weights: schema.uniform_weights(),
            linkage: Linkage::Average,
            num_clusters: 3,
        },
        chunk_rows,
    }
}

fn run(specs: &[SessionSpec]) -> Vec<EngineOutcome> {
    let mut engine = SessionEngine::new(Network::with_parties(3));
    for s in specs {
        engine.add_session(s.clone());
    }
    engine.run().unwrap()
}

/// Median wall-clock seconds over `reps` runs.
fn median_seconds(specs: &[SessionSpec], reps: usize) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let started = Instant::now();
            let outcomes = run(specs);
            assert_eq!(outcomes.len(), specs.len());
            started.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr2.json".to_string());
    let mut rows = Vec::new();
    for &sessions in &[1usize, 4, 8] {
        let specs: Vec<SessionSpec> = (0..sessions)
            .map(|i| spec(40 + i as u64, Some(WINDOW)))
            .collect();
        let median = median_seconds(&specs, 7);
        rows.push(format!(
            "    {{\"id\": \"engine/concurrent_sessions/{sessions}\", \
             \"median_seconds\": {median:.6}, \
             \"sessions_per_second\": {:.2}}}",
            sessions as f64 / median
        ));
    }
    let whole = run(&[spec(40, None)]);
    let chunked = run(&[spec(40, Some(WINDOW))]);
    rows.push(format!(
        "    {{\"id\": \"engine/peak_buffered_rows/whole_matrix\", \"rows\": {}}}",
        whole[0].stats.peak_buffered_rows
    ));
    rows.push(format!(
        "    {{\"id\": \"engine/peak_buffered_rows/chunked_w{WINDOW}\", \"rows\": {}}}",
        chunked[0].stats.peak_buffered_rows
    ));
    let json = format!(
        "{{\n  \"pr\": 2,\n  \"title\": \"Transport-abstracted, chunked multi-session protocol \
         engine\",\n  \"workload\": \"bird_flu {OBJECTS} objects, 3 sites, 3 attributes \
         (numeric + categorical + dna), average linkage, k=3\",\n  \"harness\": \"engine_report \
         binary, wall-clock medians of 7 runs, in-memory transport\",\n  \"notes\": \"chunk \
         window {WINDOW} rows; peak_buffered_rows is the largest pairwise-row window any party \
         materialised — the quantity the chunk window bounds\",\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out_path, &json).unwrap();
    println!("{json}");
    println!("wrote {out_path}");
}
