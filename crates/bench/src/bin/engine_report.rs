//! Generates `BENCH_pr3.json`: sharded-engine throughput across a
//! 1 / 2 / 4-shard × {in-memory, simulated-WAN, loopback-TCP} matrix, the
//! single-threaded engine baseline at 1 / 4 / 8 concurrent sessions,
//! chunked-vs-whole peak buffering, and a scenario-factory workload row —
//! measured on this machine.
//!
//! ```text
//! cargo run --release -p ppc-bench --bin engine_report -- \
//!     [--reps N] [--scale quick|full] [--out output.json]
//! ```

use std::time::Instant;

use ppc_cluster::Linkage;
use ppc_core::protocol::driver::ClusteringRequest;
use ppc_core::protocol::engine::{SessionEngine, SessionSpec};
use ppc_core::protocol::party::TrustedSetup;
use ppc_core::protocol::sharded::ShardedEngine;
use ppc_core::protocol::ProtocolConfig;
use ppc_crypto::Seed;
use ppc_data::Workload;
use ppc_net::{
    Backoff, Network, PartyId, SimulatedWan, TcpRouter, TcpTransport, TransportBackend,
    WaitTransport, WanProfile,
};
use ppc_scenario::digest::fingerprint_outcomes;
use ppc_scenario::factory::ScenarioSpec;

const WINDOW: usize = 4;
const MATRIX_SESSIONS: usize = 8;

struct Args {
    reps: usize,
    /// Object count of the bird-flu workload rows (`quick` 48, `full` 192).
    objects: usize,
    scale: &'static str,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        reps: 5,
        objects: 48,
        scale: "quick",
        out: "BENCH_pr3.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--reps" => {
                args.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
                if args.reps == 0 {
                    return Err("--reps must be at least 1".into());
                }
            }
            "--scale" => {
                (args.scale, args.objects) = match value("--scale")?.as_str() {
                    "quick" => ("quick", 48),
                    "full" => ("full", 192),
                    other => return Err(format!("--scale must be quick or full, got '{other}'")),
                }
            }
            "--out" => args.out = value("--out")?,
            other => {
                return Err(format!(
                    "unknown flag '{other}' (expected --reps N, --scale quick|full, --out PATH)"
                ))
            }
        }
    }
    Ok(args)
}

fn spec(objects: usize, seed: u64, chunk_rows: Option<usize>) -> SessionSpec {
    let workload = Workload::bird_flu(objects, 3, 3, seed).unwrap();
    let schema = workload.schema().clone();
    let setup =
        TrustedSetup::deterministic(workload.partitions.clone(), &Seed::from_u64(seed)).unwrap();
    SessionSpec {
        schema: schema.clone(),
        config: ProtocolConfig::default(),
        holders: setup.holders,
        keys: setup.third_party,
        request: ClusteringRequest {
            weights: schema.uniform_weights(),
            linkage: Linkage::Average,
            num_clusters: 3,
        },
        chunk_rows,
    }
}

fn run_single(specs: &[SessionSpec]) -> Vec<ppc_core::protocol::engine::EngineOutcome> {
    let mut engine = SessionEngine::new(Network::with_parties(3));
    for s in specs {
        engine.add_session(s.clone());
    }
    engine.run().unwrap()
}

fn run_sharded<T: WaitTransport + Sync>(specs: &[SessionSpec], transports: Vec<T>) {
    let mut engine = ShardedEngine::new(transports).unwrap();
    for s in specs {
        engine.add_session(s.clone());
    }
    engine.set_stall_budget(std::time::Duration::from_millis(100), 100);
    let run = engine.run().unwrap();
    assert_eq!(run.outcomes.len(), specs.len());
}

/// Median wall-clock seconds of `run` over `reps` repetitions.
fn median_seconds(reps: usize, mut run: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let started = Instant::now();
            run();
            started.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn all_parties() -> Vec<PartyId> {
    (0..3u32)
        .map(PartyId::DataHolder)
        .chain([PartyId::ThirdParty])
        .collect()
}

/// Host parallelism, recorded in every row so a number is never read
/// without knowing the box it came from.
fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// `"cores": …, "transport_backend": "…"` — the provenance pair every
/// BENCH row carries. `backend` is `in-memory` for rows that never touch a
/// socket, otherwise the socket I/O driver the row ran on.
fn provenance(backend: &str) -> String {
    format!(
        "\"cores\": {}, \"transport_backend\": \"{backend}\"",
        cores()
    )
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("ERROR: {e}");
            std::process::exit(1);
        }
    };
    let (reps, objects) = (args.reps, args.objects);
    let mut rows = Vec::new();

    // Baseline: the single-threaded engine at increasing concurrency.
    // Each row carries its compute-phase breakdown (derivation /
    // fold-unmask / merge wall time) from the last repetition.
    for &sessions in &[1usize, 4, 8] {
        let specs: Vec<SessionSpec> = (0..sessions)
            .map(|i| spec(objects, 40 + i as u64, Some(WINDOW)))
            .collect();
        let mut compute = ppc_core::protocol::machines::ComputeStats::default();
        let median = median_seconds(reps, || {
            let outcomes = run_single(&specs);
            assert_eq!(outcomes.len(), specs.len());
            compute = ppc_core::protocol::machines::ComputeStats::default();
            for outcome in &outcomes {
                compute.absorb(&outcome.stats.compute);
            }
        });
        rows.push(format!(
            "    {{\"id\": \"engine/concurrent_sessions/{sessions}\", {}, \
             \"median_seconds\": {median:.6}, \
             \"sessions_per_second\": {:.2}, \
             \"derive_seconds\": {:.6}, \"fold_unmask_seconds\": {:.6}, \
             \"merge_seconds\": {:.6}}}",
            provenance("in-memory"),
            sessions as f64 / median,
            compute.derive_nanos as f64 / 1e9,
            compute.fold_unmask_nanos as f64 / 1e9,
            compute.merge_nanos as f64 / 1e9,
        ));
    }

    // The sharding matrix: 8 sessions at 1/2/4 shards over three
    // transports.
    let matrix_specs: Vec<SessionSpec> = (0..MATRIX_SESSIONS)
        .map(|i| spec(objects, 40 + i as u64, Some(WINDOW)))
        .collect();
    for &shards in &[1usize, 2, 4] {
        let median = median_seconds(reps, || {
            let transports: Vec<Network> = (0..shards).map(|_| Network::with_parties(3)).collect();
            run_sharded(&matrix_specs, transports);
        });
        rows.push(format!(
            "    {{\"id\": \"sharded/memory/shards{shards}\", {}, \
             \"sessions\": {MATRIX_SESSIONS}, \"median_seconds\": {median:.6}, \
             \"sessions_per_second\": {:.2}}}",
            provenance("in-memory"),
            MATRIX_SESSIONS as f64 / median
        ));
    }
    for &shards in &[1usize, 2, 4] {
        let median = median_seconds(reps, || {
            let transports: Vec<SimulatedWan<Network>> = (0..shards)
                .map(|i| {
                    SimulatedWan::new(
                        Network::with_parties(3),
                        WanProfile::lossy_dsl(),
                        99 + i as u64,
                    )
                    .unwrap()
                })
                .collect();
            run_sharded(&matrix_specs, transports);
        });
        rows.push(format!(
            "    {{\"id\": \"sharded/wan_sim/shards{shards}\", {}, \
             \"sessions\": {MATRIX_SESSIONS}, \"median_seconds\": {median:.6}, \
             \"sessions_per_second\": {:.2}}}",
            provenance("in-memory"),
            MATRIX_SESSIONS as f64 / median
        ));
    }
    // Loopback TCP on both socket I/O backends: the blocking
    // thread-per-link oracle and the shared-reactor event loop must land
    // on the same results; the rows sit side by side for comparison.
    for backend in [TransportBackend::Blocking, TransportBackend::Reactor] {
        let (mut router, addr) = TcpRouter::spawn_with_backend("127.0.0.1:0", backend).unwrap();
        let parties = all_parties();
        for &shards in &[1usize, 2, 4] {
            let median = median_seconds(reps, || {
                let transports: Vec<TcpTransport> = (0..shards)
                    .map(|_| {
                        let t = TcpTransport::new_with_backend(parties.iter().copied(), backend);
                        t.connect(addr, &Backoff::default()).unwrap();
                        t
                    })
                    .collect();
                run_sharded(&matrix_specs, transports);
            });
            rows.push(format!(
                "    {{\"id\": \"sharded/loopback_tcp/{backend}/shards{shards}\", {}, \
                 \"sessions\": {MATRIX_SESSIONS}, \"median_seconds\": {median:.6}, \
                 \"sessions_per_second\": {:.2}}}",
                provenance(backend.as_str()),
                MATRIX_SESSIONS as f64 / median
            ));
        }
        router.shutdown();
    }

    // Peak buffering: the quantity the chunk window bounds.
    let whole = run_single(&[spec(objects, 40, None)]);
    let chunked = run_single(&[spec(objects, 40, Some(WINDOW))]);
    rows.push(format!(
        "    {{\"id\": \"engine/peak_buffered_rows/whole_matrix\", {}, \"rows\": {}}}",
        provenance("in-memory"),
        whole[0].stats.peak_buffered_rows
    ));
    rows.push(format!(
        "    {{\"id\": \"engine/peak_buffered_rows/chunked_w{WINDOW}\", {}, \"rows\": {}}}",
        provenance("in-memory"),
        chunked[0].stats.peak_buffered_rows
    ));

    // A scenario-factory workload next to the hand-built bird_flu rows:
    // the standard CI scenario (5 sites, zipf skew, mixed schema,
    // per-session manifest diversity), seed recorded for reproduction.
    {
        let scenario = ScenarioSpec::ci(0xBE4C_0803).generate().unwrap();
        let sessions = scenario.spec.sessions as f64;
        let mut fingerprint = 0u64;
        let median = median_seconds(reps, || {
            let outcomes = scenario.oracle().unwrap();
            fingerprint = fingerprint_outcomes(&outcomes);
        });
        rows.push(format!(
            "    {{\"id\": \"engine/scenario/ci\", {}, \"seed\": {}, \"sites\": {}, \
             \"objects\": {}, \"sessions\": {}, \"median_seconds\": {median:.6}, \
             \"sessions_per_second\": {:.2}, \"fingerprint\": \"{fingerprint:016x}\"}}",
            provenance("in-memory"),
            scenario.spec.seed,
            scenario.spec.sites,
            scenario.spec.objects,
            scenario.spec.sessions,
            sessions / median,
        ));
    }

    let cores = cores();
    let json = format!(
        "{{\n  \"pr\": 3,\n  \"title\": \"Threaded session sharding over real TCP/UDS \
         transports\",\n  \"workload\": \"bird_flu {objects} objects, 3 sites, 3 attributes \
         (numeric + categorical + dna), average linkage, k=3, chunk window {WINDOW}\",\n  \
         \"harness\": \"engine_report binary, wall-clock medians of {reps} runs (--reps/--scale \
         flags; this run: scale {}); loopback-TCP rows include per-run connect/handshake and run \
         on both socket I/O backends (blocking thread-per-link vs shared reactor); the \
         engine/scenario row runs a seeded scenario-factory workload\",\n  \"cores\": \
         {cores},\n  \"notes\": \"sharded rows drive {MATRIX_SESSIONS} sessions hash-sharded \
         across N worker threads; on a 1-core container shard scaling is purely scheduling \
         overhead — re-measure on multi-core hardware\",\n  \"results\": [\n{}\n  ]\n}}\n",
        args.scale,
        rows.join(",\n")
    );
    std::fs::write(&args.out, &json).unwrap();
    println!("{json}");
    println!("wrote {}", args.out);
}
