//! Regenerates every experiment table of `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run -p ppc-bench --release --bin experiments            # all experiments
//! cargo run -p ppc-bench --release --bin experiments -- E4 E7   # a selection
//! ```

use std::env;
use std::process::ExitCode;

use ppc_bench::tables;

fn main() -> ExitCode {
    let requested: Vec<String> = env::args().skip(1).map(|a| a.to_uppercase()).collect();
    let mut failures = 0usize;
    for report in tables::all_experiments() {
        match report {
            Ok(report) => {
                if !requested.is_empty() && !requested.contains(&report.id) {
                    continue;
                }
                println!("================================================================");
                println!("{} — {}", report.id, report.title);
                println!("================================================================");
                println!("{}", report.body);
            }
            Err(error) => {
                eprintln!("experiment failed: {error}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
