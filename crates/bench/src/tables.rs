//! One function per experiment, each producing a printable report.
//!
//! Experiment ids follow `DESIGN.md` / `EXPERIMENTS.md`: E1–E3 reproduce the
//! paper's worked examples and published-result format, E4–E6 measure the
//! communication-cost claims, E7 the accuracy claim, E8 the privacy
//! analysis, E9 the multi-party scaling and E10 the hierarchical-vs-
//! partitioning argument.

use std::fmt::Write as _;

use ppc_baselines::atallah::AtallahCostModel;
use ppc_baselines::distributed_kmeans::{distributed_kmeans, DistributedKMeansConfig};
use ppc_cluster::agreement::adjusted_rand_index;
use ppc_cluster::dbscan::{dbscan, DbscanConfig};
use ppc_cluster::kmedoids::{kmedoids, KMedoidsConfig};
use ppc_cluster::quality::silhouette;
use ppc_cluster::{AgglomerativeClustering, ClusterAssignment, CondensedDistanceMatrix, Linkage};
use ppc_core::alphabet::Alphabet;
use ppc_core::distance::edit_distance;
use ppc_core::privacy::{
    eavesdrop_initiator_link, eavesdrop_responder_link, frequency_attack_on_batch_column,
};
use ppc_core::protocol::driver::{ClusteringRequest, ThirdPartyDriver};
use ppc_core::protocol::party::TrustedSetup;
use ppc_core::protocol::{alphanumeric, numeric, NumericMode, ProtocolConfig};
use ppc_core::CoreError;
use ppc_crypto::prng::DynStreamRng;
use ppc_crypto::{Negator, NumericMasker, PairwiseSeeds, RngAlgorithm, Seed};
use ppc_data::Workload;
use ppc_net::{CostModel, PartyId};

use crate::runners::{
    accuracy_comparison, alphanumeric_cost_sweep, numeric_cost_sweep, run_session,
};

/// A rendered experiment report.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment id (e.g. `"E4"`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The rendered table / narrative.
    pub body: String,
}

impl ExperimentReport {
    fn new(id: &str, title: &str, body: String) -> Self {
        ExperimentReport {
            id: id.to_string(),
            title: title.to_string(),
            body,
        }
    }
}

/// E1 — the paper's Figure 3 worked example of the numeric protocol.
pub fn e1_numeric_worked_example() -> Result<ExperimentReport, CoreError> {
    let mut body = String::new();
    // Figure 3 uses x = 3, y = 8, R_JK = 5, R_JT = 7.
    let negator = Negator::from_random(5);
    let x_masked = NumericMasker::mask_initiator(3, 7, negator);
    let m = NumericMasker::fold_responder(x_masked, 8, negator);
    let d = NumericMasker::unmask_distance(m, 7);
    writeln!(body, "step                        paper   reproduced").unwrap();
    writeln!(body, "x'' = -x + R_JT             4       {x_masked}").unwrap();
    writeln!(body, "m   = y + x''               12      {m}").unwrap();
    writeln!(body, "|x - y| = |m - R_JT|        5       {d}").unwrap();
    let ok = x_masked == 4 && m == 12 && d == 5;
    writeln!(body, "matches paper: {ok}").unwrap();
    // And the same distance recovered through the full batch protocol.
    let seeds = PairwiseSeeds::new(Seed::from_u64(5), Seed::from_u64(7));
    let masked = numeric::initiator_mask(&[3], &seeds, RngAlgorithm::ChaCha20);
    let pairwise =
        numeric::responder_fold(&masked, &[8], &seeds.holder_holder, RngAlgorithm::ChaCha20);
    let distances =
        numeric::third_party_unmask(&pairwise, &seeds.holder_third_party, RngAlgorithm::ChaCha20);
    writeln!(
        body,
        "full protocol |3 - 8|               {}",
        distances.get(0, 0)
    )
    .unwrap();
    Ok(ExperimentReport::new(
        "E1",
        "Figure 3 — numeric comparison worked example",
        body,
    ))
}

/// E2 — the paper's Figure 7 worked example of the alphanumeric protocol.
pub fn e2_alphanumeric_worked_example() -> Result<ExperimentReport, CoreError> {
    let mut body = String::new();
    let alphabet = Alphabet::abcd();
    let seeds = PairwiseSeeds::new(Seed::from_u64(11), Seed::from_u64(13));
    let s = "abc";
    let t = "bd";
    let s_encoded = vec![alphabet.encode(s)?];
    let t_encoded = vec![alphabet.encode(t)?];
    let masked = alphanumeric::initiator_mask_strings(
        &s_encoded,
        alphabet.size(),
        &seeds,
        RngAlgorithm::ChaCha20,
    )?;
    let masked_str = alphabet.decode(&masked[0])?;
    let bundle = alphanumeric::responder_build_bundle(&masked, &t_encoded, alphabet.size())?;
    let distances = alphanumeric::third_party_edit_distances(
        &bundle,
        alphabet.size(),
        &seeds.holder_third_party,
        RngAlgorithm::ChaCha20,
    )?;
    writeln!(body, "alphabet          {{a, b, c, d}}").unwrap();
    writeln!(body, "DH_J string S     {s}").unwrap();
    writeln!(body, "DH_K string T     {t}").unwrap();
    writeln!(
        body,
        "masked S' sent to DH_K: {masked_str} (random over the alphabet)"
    )
    .unwrap();
    writeln!(
        body,
        "TP edit distance via CCM: {}   plaintext edit distance: {}",
        distances.get(0, 0),
        edit_distance(s, t)
    )
    .unwrap();
    writeln!(
        body,
        "CCM reveals to TP only the character-equality pattern, never the symbols."
    )
    .unwrap();
    Ok(ExperimentReport::new(
        "E2",
        "Figure 7 — alphanumeric comparison worked example",
        body,
    ))
}

/// E3 — the published result format of Figure 13 on a 3-site mixed workload.
pub fn e3_published_result() -> Result<ExperimentReport, CoreError> {
    let workload =
        Workload::bird_flu(18, 3, 3, 2024).map_err(|e| CoreError::Protocol(e.to_string()))?;
    let schema = workload.schema().clone();
    let setup = TrustedSetup::deterministic(workload.partitions.clone(), &Seed::from_u64(99))?;
    let driver = ThirdPartyDriver::new(schema.clone(), ProtocolConfig::default());
    let output = driver.construct(&setup.holders, &setup.third_party)?;
    let (result, _) = driver.cluster(&output, &ClusteringRequest::uniform(&schema, 3))?;
    let truth = ClusterAssignment::from_labels(&workload.ground_truth_in_site_order());
    let published = crate::runners::assignment_from_result(&result, &workload.len());
    let ari = adjusted_rand_index(&published, &truth).unwrap_or(0.0);
    let mut body = String::new();
    writeln!(body, "{result}").unwrap();
    writeln!(body).unwrap();
    writeln!(
        body,
        "objects are labelled <site letter><local id> exactly as in Figure 13"
    )
    .unwrap();
    writeln!(
        body,
        "adjusted Rand index vs ground-truth strains: {ari:.3}"
    )
    .unwrap();
    Ok(ExperimentReport::new(
        "E3",
        "Figure 13 — published clustering result (3 sites)",
        body,
    ))
}

/// E4 — numeric communication-cost sweep (the §4.1 cost analysis, measured).
pub fn e4_numeric_costs() -> Result<ExperimentReport, CoreError> {
    let sizes = [32usize, 64, 128, 256, 512];
    let rows = numeric_cost_sweep(&sizes, NumericMode::Batch)?;
    let mut body = String::new();
    writeln!(
        body,
        "{:>6} {:>6} {:>14} {:>14} {:>14} {:>10} {:>10}",
        "n", "m", "DH_J bytes", "DH_K bytes", "total bytes", "J ratio", "K ratio"
    )
    .unwrap();
    let mut prev: Option<&crate::runners::CostRow> = None;
    for row in &rows {
        let (jr, kr) = match prev {
            Some(p) => (
                row.initiator_bytes as f64 / p.initiator_bytes as f64,
                row.responder_bytes as f64 / p.responder_bytes as f64,
            ),
            None => (1.0, 1.0),
        };
        writeln!(
            body,
            "{:>6} {:>6} {:>14} {:>14} {:>14} {:>10.2} {:>10.2}",
            row.initiator_objects,
            row.responder_objects,
            row.initiator_bytes,
            row.responder_bytes,
            row.total_bytes,
            jr,
            kr
        )
        .unwrap();
        prev = Some(row);
    }
    writeln!(body).unwrap();
    writeln!(
        body,
        "paper: DH_J cost O(n^2 + n), DH_K cost O(m^2 + m*n); doubling n should roughly"
    )
    .unwrap();
    writeln!(
        body,
        "quadruple both (the O(n^2) local-matrix term dominates), which the ratio columns show."
    )
    .unwrap();
    // Estimated transfer times under the three network profiles for the
    // largest configuration.
    if let Some(last) = rows.last() {
        let report = ppc_net::CommReport::default();
        let _ = report;
        writeln!(
            body,
            "largest run total = {} bytes; est. transfer time LAN {:.3}s / WAN {:.3}s / 2006 DSL {:.3}s",
            last.total_bytes,
            last.total_bytes as f64 / CostModel::lan().bandwidth_bytes_per_sec,
            last.total_bytes as f64 / CostModel::wan().bandwidth_bytes_per_sec,
            last.total_bytes as f64 / CostModel::dsl_2006().bandwidth_bytes_per_sec,
        )
        .unwrap();
    }
    Ok(ExperimentReport::new(
        "E4",
        "Numeric protocol communication cost (§4.1)",
        body,
    ))
}

/// E5 — alphanumeric cost sweep and comparison with the Atallah protocol.
pub fn e5_alphanumeric_costs() -> Result<ExperimentReport, CoreError> {
    let mut body = String::new();
    writeln!(
        body,
        "{:>4} {:>4} {:>6} {:>14} {:>14} {:>18} {:>10}",
        "n", "m", "|s|", "DH_J bytes", "DH_K bytes", "Atallah[8] bytes", "overhead"
    )
    .unwrap();
    for &(objects, length) in &[(8usize, 16usize), (16, 16), (16, 32), (32, 32), (32, 64)] {
        let rows = alphanumeric_cost_sweep(&[objects], length)?;
        let row = &rows[0];
        let atallah = AtallahCostModel::default();
        let lengths = vec![length; objects];
        let atallah_bytes = atallah.bytes_for_columns(&lengths, &lengths);
        let ours = row.initiator_bytes + row.responder_bytes;
        writeln!(
            body,
            "{:>4} {:>4} {:>6} {:>14} {:>14} {:>18} {:>9.0}x",
            row.initiator_objects,
            row.responder_objects,
            length,
            row.initiator_bytes,
            row.responder_bytes,
            atallah_bytes,
            atallah_bytes as f64 / ours as f64
        )
        .unwrap();
    }
    writeln!(body).unwrap();
    writeln!(
        body,
        "paper: DH_J O(n^2 + n*p), DH_K O(m^2 + m*q*n*p); the CCM bundle (4 bytes/cell)"
    )
    .unwrap();
    writeln!(
        body,
        "dominates DH_K. The Atallah et al. [8] protocol ships ~8 Paillier ciphertexts per"
    )
    .unwrap();
    writeln!(
        body,
        "DP cell (2048-bit modulus), hence the 2-3 orders of magnitude overhead column —"
    )
    .unwrap();
    writeln!(
        body,
        "the paper's 'not feasible for clustering' argument, measured."
    )
    .unwrap();
    Ok(ExperimentReport::new(
        "E5",
        "Alphanumeric protocol communication cost vs Atallah et al. (§4.2)",
        body,
    ))
}

/// E6 — categorical cost (O(n) per site) measured over growing sites.
pub fn e6_categorical_costs() -> Result<ExperimentReport, CoreError> {
    let mut body = String::new();
    writeln!(
        body,
        "{:>8} {:>16} {:>16}",
        "objects", "bytes per site", "bytes/object"
    )
    .unwrap();
    for &n in &[64usize, 256, 1024, 4096] {
        // Build a categorical-only workload by hand.
        let workload = Workload::customer_segmentation(2 * n, 2, 3, 3)
            .map_err(|e| CoreError::Protocol(e.to_string()))?;
        // Only measure the categorical attribute's traffic: encrypt columns
        // directly (16-byte tags + framing).
        let column = workload.partitions[0]
            .matrix()
            .categorical_column(2)
            .map_err(|e| CoreError::Protocol(e.to_string()))?;
        let key = ppc_crypto::Prf128::new(&[7u8; 32]);
        let encrypted = ppc_core::protocol::categorical::encrypt_column(&column, &key);
        let msg = ppc_core::protocol::messages::EncryptedColumnMsg {
            attribute: "region".into(),
            tags: encrypted.tags.iter().map(|t| t.to_bytes()).collect(),
        };
        let bytes = msg.encode().len();
        writeln!(
            body,
            "{:>8} {:>16} {:>16.1}",
            column.len(),
            bytes,
            bytes as f64 / column.len() as f64
        )
        .unwrap();
    }
    writeln!(body).unwrap();
    writeln!(
        body,
        "paper: categorical cost is O(n) per site — bytes/object stays constant (~20 B:"
    )
    .unwrap();
    writeln!(
        body,
        "16-byte deterministic ciphertext + 4-byte length framing)."
    )
    .unwrap();
    Ok(ExperimentReport::new(
        "E6",
        "Categorical protocol communication cost (§4.3)",
        body,
    ))
}

/// E7 — accuracy: protocol vs centralized vs sanitization.
pub fn e7_accuracy() -> Result<ExperimentReport, CoreError> {
    let workload =
        Workload::bird_flu(36, 3, 3, 31).map_err(|e| CoreError::Protocol(e.to_string()))?;
    let rows = accuracy_comparison(&workload, 3, &[0.1, 0.3, 0.6])?;
    let mut body = String::new();
    writeln!(
        body,
        "workload: {} ({} objects, 3 sites)",
        workload.name,
        workload.len()
    )
    .unwrap();
    writeln!(
        body,
        "{:<44} {:>12} {:>16} {:>16}",
        "method", "ARI(truth)", "ARI(centralized)", "max matrix diff"
    )
    .unwrap();
    for row in &rows {
        writeln!(
            body,
            "{:<44} {:>12.3} {:>16.3} {:>16}",
            row.method,
            row.ari_vs_truth,
            row.ari_vs_centralized,
            row.matrix_max_difference
                .map(|d| format!("{d:.2e}"))
                .unwrap_or_else(|| "-".into()),
        )
        .unwrap();
    }
    writeln!(body).unwrap();
    writeln!(
        body,
        "paper claim: 'there is no loss of accuracy' — the protocol row must match the"
    )
    .unwrap();
    writeln!(
        body,
        "centralized row exactly (ARI 1.0, matrix diff ≈ fixed-point epsilon), while the"
    )
    .unwrap();
    writeln!(
        body,
        "sanitization baselines trade accuracy for privacy as noise grows."
    )
    .unwrap();
    Ok(ExperimentReport::new(
        "E7",
        "Accuracy: no loss vs centralized; sanitization degrades",
        body,
    ))
}

/// E8 — privacy: frequency-analysis attack and eavesdropping inferences.
pub fn e8_privacy() -> Result<ExperimentReport, CoreError> {
    let mut body = String::new();
    let algorithm = RngAlgorithm::ChaCha20;
    writeln!(
        body,
        "{:>12} {:>10} {:>22} {:>22}",
        "value range", "mode", "consistent candidates", "exact column recovered"
    )
    .unwrap();
    for &range in &[4i64, 16, 64, 256, 1024] {
        for (label, per_pair) in [("batch", false), ("per-pair", true)] {
            let seeds = PairwiseSeeds::new(Seed::from_u64(3), Seed::from_u64(4));
            let k_values: Vec<i64> = (0..24).map(|i| (i * 7) % range).collect();
            let j_values = vec![range / 2];
            let (column, mask) = if per_pair {
                let masked =
                    numeric::initiator_mask_per_pair(&j_values, k_values.len(), &seeds, algorithm);
                let pairwise = numeric::responder_fold_per_pair(
                    &masked,
                    &k_values,
                    &seeds.holder_holder,
                    algorithm,
                )?;
                let mut rng = DynStreamRng::new(algorithm, &seeds.holder_third_party);
                (
                    pairwise.iter_rows().map(|r| r[0]).collect::<Vec<_>>(),
                    rng.next_u64(),
                )
            } else {
                let masked = numeric::initiator_mask(&j_values, &seeds, algorithm);
                let pairwise =
                    numeric::responder_fold(&masked, &k_values, &seeds.holder_holder, algorithm);
                let mut rng = DynStreamRng::new(algorithm, &seeds.holder_third_party);
                (
                    pairwise.iter_rows().map(|r| r[0]).collect::<Vec<_>>(),
                    rng.next_u64(),
                )
            };
            let outcome = frequency_attack_on_batch_column(&column, mask, (0, range - 1));
            writeln!(
                body,
                "{:>12} {:>10} {:>22} {:>22}",
                format!("[0, {})", range),
                label,
                outcome.consistent_candidates,
                outcome.contains_truth(&k_values)
            )
            .unwrap();
        }
    }
    writeln!(body).unwrap();
    writeln!(
        body,
        "batch mode + small range ⇒ the third party pins DH_K's column down to a couple of"
    )
    .unwrap();
    writeln!(
        body,
        "candidates (the §4.1 frequency-analysis warning); per-pair masking removes the leak."
    )
    .unwrap();
    writeln!(body).unwrap();
    // Eavesdropping inferences (why channels must be secured).
    let tp_view = eavesdrop_initiator_link(4, 7);
    let dhj_view = eavesdrop_responder_link(12, 7, 3);
    writeln!(
        body,
        "eavesdropping on plaintext channels (Figure 3 values):"
    )
    .unwrap();
    writeln!(
        body,
        "  TP on DH_J→DH_K sees x''=4, knows r=7  ⇒ x ∈ {:?} (true x = 3)",
        tp_view.candidates()
    )
    .unwrap();
    writeln!(
        body,
        "  DH_J on DH_K→TP sees m=12, knows r=7, x=3 ⇒ y ∈ {:?} (true y = 8)",
        dhj_view.candidates()
    )
    .unwrap();
    writeln!(
        body,
        "with secured channels (the default) neither observation exists."
    )
    .unwrap();
    Ok(ExperimentReport::new(
        "E8",
        "Privacy: frequency-analysis attack and eavesdropping",
        body,
    ))
}

/// E9 — scaling with the number of data holders (C(k,2) protocol runs).
pub fn e9_party_scaling() -> Result<ExperimentReport, CoreError> {
    let mut body = String::new();
    writeln!(
        body,
        "{:>3} {:>8} {:>14} {:>14} {:>16}",
        "k", "objects", "total bytes", "TP recv bytes", "holder pair runs"
    )
    .unwrap();
    let objects = 48usize;
    for &k in &[2u32, 3, 4, 6, 8] {
        let workload = Workload::numeric_only(objects, k, 2, 5)
            .map_err(|e| CoreError::Protocol(e.to_string()))?;
        let summary = run_session(&workload, NumericMode::Batch, 2, Linkage::Average)?;
        let tp_recv = summary.communication.bytes_received_by(PartyId::ThirdParty);
        writeln!(
            body,
            "{:>3} {:>8} {:>14} {:>14} {:>16}",
            k,
            objects,
            summary.communication.total_bytes(),
            tp_recv,
            k * (k - 1) / 2
        )
        .unwrap();
    }
    writeln!(body).unwrap();
    writeln!(
        body,
        "with the total object count fixed, more sites mean smaller local matrices but"
    )
    .unwrap();
    writeln!(
        body,
        "C(k,2) pairwise protocol runs; the cross-site traffic still covers every object"
    )
    .unwrap();
    writeln!(body, "pair once, so total bytes stay in the same ballpark.").unwrap();
    Ok(ExperimentReport::new(
        "E9",
        "Scaling with the number of data holders (§4)",
        body,
    ))
}

/// E10 — hierarchical vs partitioning methods on non-spherical / string data.
pub fn e10_hierarchical_vs_partitioning() -> Result<ExperimentReport, CoreError> {
    let mut body = String::new();

    // Part 1: two concentric rings (numeric, non-spherical).
    let mut points: Vec<(f64, f64)> = Vec::new();
    let mut truth_labels = Vec::new();
    for i in 0..40 {
        let a = i as f64 * std::f64::consts::TAU / 40.0;
        points.push((a.cos(), a.sin()));
        truth_labels.push(0usize);
    }
    for i in 0..60 {
        let a = i as f64 * std::f64::consts::TAU / 60.0;
        points.push((5.0 * a.cos(), 5.0 * a.sin()));
        truth_labels.push(1usize);
    }
    let matrix = CondensedDistanceMatrix::from_fn(points.len(), |i, j| {
        let dx = points[i].0 - points[j].0;
        let dy = points[i].1 - points[j].1;
        (dx * dx + dy * dy).sqrt()
    });
    let truth = ClusterAssignment::from_labels(&truth_labels);
    let single = AgglomerativeClustering::new(Linkage::Single).fit_k(&matrix, 2)?;
    let average = AgglomerativeClustering::new(Linkage::Average).fit_k(&matrix, 2)?;
    let medoids = kmedoids(&matrix, &KMedoidsConfig::new(2))?;
    let density = dbscan(
        &matrix,
        &DbscanConfig {
            eps: 0.9,
            min_points: 3,
        },
    )?;
    writeln!(
        body,
        "two concentric rings (non-spherical clusters), 100 points:"
    )
    .unwrap();
    writeln!(body, "{:<36} {:>10}", "method", "ARI(truth)").unwrap();
    for (name, assignment) in [
        ("hierarchical, single linkage", &single),
        ("hierarchical, average linkage", &average),
        ("k-medoids (partitioning)", &medoids.assignment),
        ("DBSCAN (density, matrix-driven)", &density.assignment),
    ] {
        let ari = adjusted_rand_index(assignment, &truth).unwrap_or(0.0);
        writeln!(body, "{name:<36} {ari:>10.3}").unwrap();
    }
    writeln!(body).unwrap();

    // Part 2: DNA strings — partitioning methods have no mean to work with.
    let workload =
        Workload::dna_only(24, 2, 3, 24, 8).map_err(|e| CoreError::Protocol(e.to_string()))?;
    let summary = run_session(&workload, NumericMode::Batch, 3, Linkage::Average)?;
    let kmeans_result = distributed_kmeans(
        workload.schema(),
        &workload.partitions,
        &DistributedKMeansConfig {
            k: 3,
            max_iterations: 20,
            seed: 1,
        },
    );
    writeln!(
        body,
        "DNA strings (edit distance), 24 sequences across 2 sites:"
    )
    .unwrap();
    writeln!(
        body,
        "  hierarchical on protocol-built dissimilarity matrix: ARI(truth) = {:.3}",
        summary.ari_vs_truth
    )
    .unwrap();
    writeln!(
        body,
        "  secure-sum distributed k-means (numeric only):       {}",
        match kmeans_result {
            Ok(_) => "unexpectedly ran".to_string(),
            Err(e) => format!("cannot run — {e}"),
        }
    )
    .unwrap();
    writeln!(body).unwrap();
    writeln!(
        body,
        "paper argument: partitioning methods favour spherical clusters and 'can not handle"
    )
    .unwrap();
    writeln!(body, "string data type for which a mean is not defined'.").unwrap();
    Ok(ExperimentReport::new(
        "E10",
        "Hierarchical vs partitioning clustering (paper §2/§6 argument)",
        body,
    ))
}

/// E11 — internal quality parameters the third party can publish (§5).
pub fn e11_quality_parameters() -> Result<ExperimentReport, CoreError> {
    let workload =
        Workload::bird_flu(24, 3, 3, 77).map_err(|e| CoreError::Protocol(e.to_string()))?;
    let schema = workload.schema().clone();
    let setup = TrustedSetup::deterministic(workload.partitions.clone(), &Seed::from_u64(1))?;
    let driver = ThirdPartyDriver::new(schema.clone(), ProtocolConfig::default());
    let output = driver.construct(&setup.holders, &setup.third_party)?;
    let mut body = String::new();
    writeln!(
        body,
        "{:>3} {:>28} {:>14}",
        "k", "avg within-cluster sq dist", "silhouette"
    )
    .unwrap();
    for k in 2..=6 {
        let (result, matrix) = driver.cluster(&output, &ClusteringRequest::uniform(&schema, k))?;
        let assignment = crate::runners::assignment_from_result(&result, &workload.len());
        let sil = silhouette(matrix.matrix(), &assignment).unwrap_or(0.0);
        writeln!(
            body,
            "{:>3} {:>28.5} {:>14.3}",
            k, result.average_within_cluster_squared_distance, sil
        )
        .unwrap();
    }
    writeln!(body).unwrap();
    writeln!(
        body,
        "the third party can publish these aggregates without leaking private values;"
    )
    .unwrap();
    writeln!(
        body,
        "the silhouette peak identifies the ground-truth cluster count (3)."
    )
    .unwrap();
    Ok(ExperimentReport::new(
        "E11",
        "Published clustering-quality parameters (§5)",
        body,
    ))
}

/// Runs every experiment in order.
pub fn all_experiments() -> Vec<Result<ExperimentReport, CoreError>> {
    vec![
        e1_numeric_worked_example(),
        e2_alphanumeric_worked_example(),
        e3_published_result(),
        e4_numeric_costs(),
        e5_alphanumeric_costs(),
        e6_categorical_costs(),
        e7_accuracy(),
        e8_privacy(),
        e9_party_scaling(),
        e10_hierarchical_vs_partitioning(),
        e11_quality_parameters(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worked_examples_match_the_paper() {
        let e1 = e1_numeric_worked_example().unwrap();
        assert!(e1.body.contains("matches paper: true"));
        let e2 = e2_alphanumeric_worked_example().unwrap();
        assert!(e2
            .body
            .contains("TP edit distance via CCM: 2   plaintext edit distance: 2"));
    }

    #[test]
    fn small_experiments_render_tables() {
        let e3 = e3_published_result().unwrap();
        assert!(e3.body.contains("Cluster1"));
        let e8 = e8_privacy().unwrap();
        assert!(e8.body.contains("batch"));
        assert!(e8.body.contains("per-pair"));
        let e11 = e11_quality_parameters().unwrap();
        assert!(e11.body.contains("silhouette"));
    }
}
