//! # ppc-bench — experiment harness for `ppclust`
//!
//! Two consumers share this crate:
//!
//! * the `experiments` binary (`cargo run -p ppc-bench --bin experiments`),
//!   which regenerates every table of `EXPERIMENTS.md` (the measured
//!   counterparts of the paper's worked examples, communication-cost
//!   analyses and qualitative comparisons), and
//! * the Criterion benches under `benches/`, which time the individual
//!   protocol roles and the end-to-end pipelines.
//!
//! [`runners`] holds the shared machinery (building workloads, running
//! sessions, collecting byte counts and accuracy numbers); [`tables`] turns
//! runner output into the printable tables, one function per experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runners;
pub mod tables;

pub use runners::{AccuracyRow, CostRow, SessionSummary};
pub use tables::{all_experiments, ExperimentReport};
