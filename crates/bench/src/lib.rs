//! # ppc-bench — experiment harness for `ppclust`
//!
//! Two consumers share this crate:
//!
//! * the `experiments` binary (`cargo run -p ppc-bench --bin experiments`),
//!   which regenerates every table of `EXPERIMENTS.md` (the measured
//!   counterparts of the paper's worked examples, communication-cost
//!   analyses and qualitative comparisons), and
//! * the Criterion benches under `benches/`, which time the individual
//!   protocol roles and the end-to-end pipelines.
//!
//! [`runners`] holds the shared machinery (building workloads, running
//! sessions, collecting byte counts and accuracy numbers); [`tables`] turns
//! runner output into the printable tables, one function per experiment.
//!
//! ## Performance
//!
//! The headline benches are `dissimilarity_construction` (the whole
//! Figure 11 pipeline, in-memory and networked) and `clustering` (the
//! Lance–Williams linkages and scaling curves). Their results are
//! snapshotted in the repository root as `BENCH_<pr>.json`
//! (before/after medians plus speedups per benchmark id).
//!
//! The build environment is offline, so `criterion` resolves to the
//! stand-in under `vendor/criterion`: it measures wall-clock medians, prints
//! one line per benchmark and honours two environment knobs:
//!
//! * `PPC_BENCH_JSON=<path>` — append one `{"id": ..., "median_ns": ...}`
//!   JSON line per benchmark to `<path>`;
//! * `PPC_BENCH_QUICK=1` — cap sampling (≤ 5 samples of ≤ 50 ms) for CI.
//!
//! To regenerate a `BENCH_*.json` snapshot:
//!
//! ```text
//! PPC_BENCH_QUICK=1 PPC_BENCH_JSON=after.json \
//!     cargo bench -p ppc-bench --bench dissimilarity_construction --bench clustering
//! # combine the per-id medians of the baseline and current runs into
//! # BENCH_<pr>.json (see the existing file for the schema)
//! ```
//!
//! Benchmarks run on whatever cores are available; the `parallel` feature
//! (forwarded to `ppc-core`) fans independent attributes and holder pairs
//! out over threads, and degrades to the sequential path on 1-core runners,
//! so recorded speedups are algorithmic lower bounds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runners;
pub mod tables;

pub use runners::{AccuracyRow, CostRow, SessionSummary};
pub use tables::{all_experiments, ExperimentReport};
