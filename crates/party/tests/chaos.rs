//! Process-level chaos harness: scenario-factory workloads driven through
//! real `ppc-party` OS processes under chaos-matrix faults, with every
//! run classified into the machine-readable outcome taxonomy
//! (`ppc_scenario::chaos::RunOutcome`) and checked against the cell's
//! expectation — a settled run can never pass as completed.
//!
//! Reuses the multi-process scaffolding style of `multi_process.rs`
//! (spawn via `CARGO_BIN_EXE_ppc-party`, deadline waits, field parsing)
//! but feeds the federation **generated** artefacts: per-site CSVs, the
//! `--schema` string and the `--manifest` file all come from one seeded
//! [`ScenarioSpec`], so the adversarial workload is the same object the
//! in-process matrix and the benches consume.

use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ppc_core::protocol::party_engine::SessionPlan;
use ppc_core::protocol::ProtocolConfig;
use ppc_party::{parse_manifest, parse_schema, render_clusters, render_f64_bits};
use ppc_scenario::chaos::{self, classify_process_run, Fault, RunOutcome};
use ppc_scenario::factory::{Scenario, ScenarioSpec, SchemaShape, SiteSkew};
use ppc_scenario::proxy::TamperProxy;

const SEED: u64 = 0xCAFE_0008;

/// A 3-site scenario keeps the federation at 4 processes + router.
fn process_scenario(objects: usize, sessions: usize) -> Scenario {
    ScenarioSpec {
        seed: SEED,
        sites: 3,
        objects,
        clusters: 2,
        skew: SiteSkew::Zipf { exponent: 0.9 },
        shape: SchemaShape::default(),
        sessions,
        chunk_base: Some(4),
    }
    .generate()
    .expect("process scenario")
}

/// A spawned `ppc-party` process whose stdout/stderr are drained by
/// background threads from the moment it starts. Draining eagerly matters:
/// a 60-object session prints ~30 KB `MATRIX` lines, so a coordinator left
/// on an undrained pipe blocks on `write` once the OS buffer fills and the
/// whole federation reads as "stalled" when it is merely gagged.
struct Proc {
    child: Child,
    stdout: JoinHandle<Vec<u8>>,
    stderr: JoinHandle<Vec<u8>>,
}

struct ProcOutput {
    success: bool,
    stdout: String,
    stderr: String,
}

fn drain(pipe: impl Read + Send + 'static) -> JoinHandle<Vec<u8>> {
    std::thread::spawn(move || {
        let mut pipe = pipe;
        let mut buf = Vec::new();
        let _ = pipe.read_to_end(&mut buf);
        buf
    })
}

fn spawn(args: &[String]) -> Proc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ppc-party"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ppc-party");
    let stdout = drain(child.stdout.take().expect("child stdout"));
    let stderr = drain(child.stderr.take().expect("child stderr"));
    Proc {
        child,
        stdout,
        stderr,
    }
}

fn wait_with_deadline(mut proc: Proc, label: &str, deadline: Duration) -> (ProcOutput, bool) {
    let started = Instant::now();
    let timed_out = loop {
        match proc.child.try_wait().expect("try_wait") {
            Some(_) => break false,
            None if started.elapsed() > deadline => {
                let _ = proc.child.kill();
                eprintln!("{label} timed out after {deadline:?}");
                break true;
            }
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    };
    let status = proc.child.wait().expect("wait");
    let stdout = String::from_utf8_lossy(&proc.stdout.join().expect("stdout drained")).into_owned();
    let stderr = String::from_utf8_lossy(&proc.stderr.join().expect("stderr drained")).into_owned();
    (
        ProcOutput {
            success: status.success(),
            stdout,
            stderr,
        },
        timed_out,
    )
}

/// Finds the value of `key=` on the line matching all `selectors`.
fn field<'a>(stdout: &'a str, selectors: &[&str], key: &str) -> &'a str {
    let line = stdout
        .lines()
        .find(|line| selectors.iter().all(|s| line.contains(s)))
        .unwrap_or_else(|| panic!("no line matching {selectors:?} in:\n{stdout}"));
    line.split_whitespace()
        .find_map(|token| token.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no field {key}= on line '{line}'"))
}

/// Writes the scenario's artefacts (CSVs + manifest) into a fresh temp dir.
fn stage_artifacts(scenario: &Scenario, tag: &str) -> (PathBuf, Vec<PathBuf>, PathBuf) {
    let dir = std::env::temp_dir().join(format!("ppc-chaos-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csvs = scenario.write_csvs(&dir).unwrap();
    let manifest = dir.join("manifest.txt");
    std::fs::write(&manifest, scenario.manifest_text()).unwrap();
    (dir, csvs, manifest)
}

fn common_flags(scenario: &Scenario, connect: &str, extra: &[(&str, &str)]) -> Vec<String> {
    let mut flags = vec![
        "--connect".into(),
        format!("tcp:{connect}"),
        "--seed".into(),
        scenario.spec.seed.to_string(),
        "--schema".into(),
        scenario.schema_cli().to_string(),
    ];
    for (key, value) in extra {
        flags.push(format!("--{key}"));
        if !value.is_empty() {
            flags.push((*value).to_string());
        }
    }
    flags
}

fn serve_args(
    scenario: &Scenario,
    connect: &str,
    party: &str,
    csv: Option<&Path>,
    extra: &[(&str, &str)],
) -> Vec<String> {
    let mut args = vec![
        "serve".to_string(),
        "--party".into(),
        party.into(),
        "--coordinator".into(),
        "DH0".into(),
    ];
    if let Some(csv) = csv {
        args.push("--csv".into());
        args.push(csv.display().to_string());
    }
    args.extend(common_flags(scenario, connect, extra));
    args
}

fn coordinate_args(
    scenario: &Scenario,
    connect: &str,
    csv: &Path,
    manifest: Option<&Path>,
    extra: &[(&str, &str)],
) -> Vec<String> {
    let sites = scenario.spec.sites;
    let remote: Vec<String> = (1..sites)
        .map(|i| format!("DH{i}"))
        .chain(["TP".to_string()])
        .collect();
    let mut args = vec![
        "coordinate".to_string(),
        "--party".into(),
        "DH0".into(),
        "--remote".into(),
        remote.join(","),
        "--csv".into(),
        csv.display().to_string(),
        "--clusters".into(),
        "2".into(),
    ];
    match manifest {
        Some(path) => {
            args.push("--manifest".into());
            args.push(path.display().to_string());
        }
        None => {
            args.push("--sessions".into());
            args.push(scenario.spec.sessions.to_string());
        }
    }
    args.extend(common_flags(scenario, connect, extra));
    args
}

/// Satellite 1 (round-trip half): the factory's manifest and schema
/// strings parse through the *CLI's own parsers* back into exactly the
/// plans and schema the factory holds — weights included, bit-for-bit,
/// because both sides normalise the same raw integers through
/// `WeightVector::new`.
#[test]
fn generated_manifest_and_schema_roundtrip_through_the_cli_parsers() {
    let scenario = process_scenario(60, 4);

    let schema = parse_schema(scenario.schema_cli()).unwrap();
    assert_eq!(schema, scenario.schema, "schema_cli round-trips");

    // The base plan is irrelevant: generated manifests set every key on
    // every line. Use a deliberately mismatched base to prove it.
    let base = SessionPlan {
        config: ProtocolConfig::default(),
        request: ppc_core::protocol::driver::ClusteringRequest {
            weights: schema.uniform_weights(),
            linkage: ppc_cluster::Linkage::Centroid,
            num_clusters: 9,
        },
        chunk_rows: Some(999),
    };
    let parsed = parse_manifest(&schema, &scenario.manifest_text(), &base).unwrap();
    assert_eq!(parsed.len(), scenario.plans.len());
    for (i, (parsed, expected)) in parsed.iter().zip(&scenario.plans).enumerate() {
        assert_eq!(parsed.config, expected.config, "session {i} config");
        assert_eq!(parsed.chunk_rows, expected.chunk_rows, "session {i} window");
        assert_eq!(
            parsed.request.linkage, expected.request.linkage,
            "session {i} linkage"
        );
        assert_eq!(
            parsed.request.num_clusters, expected.request.num_clusters,
            "session {i} clusters"
        );
        assert_eq!(
            parsed.request.weights, expected.request.weights,
            "session {i} weights (must be exact, not 1-ulp-off)"
        );
    }
}

/// The completed column at process level: a scenario-generated federation
/// (CSVs, schema and manifest all from the factory) over sealed sockets
/// matches the in-process oracle byte-for-byte, and classifies
/// `Completed` with a stable fingerprint.
#[test]
fn scenario_driven_federation_matches_the_oracle() {
    let scenario = process_scenario(60, 3);
    let reference = scenario.oracle().unwrap();
    let (dir, csvs, manifest) = stage_artifacts(&scenario, "oracle");

    let (mut router, addr) = ppc_net::TcpRouter::spawn("127.0.0.1:0").unwrap();
    let addr = addr.to_string();
    let dh1 = spawn(&serve_args(&scenario, &addr, "DH1", Some(&csvs[1]), &[]));
    let dh2 = spawn(&serve_args(&scenario, &addr, "DH2", Some(&csvs[2]), &[]));
    let tp = spawn(&serve_args(&scenario, &addr, "TP", None, &[]));
    let coordinate = spawn(&coordinate_args(
        &scenario,
        &addr,
        &csvs[0],
        Some(&manifest),
        &[],
    ));

    let deadline = Duration::from_secs(120);
    let (coord_out, coord_to) = wait_with_deadline(coordinate, "coordinate", deadline);
    let (dh1_out, _) = wait_with_deadline(dh1, "serve DH1", deadline);
    let (dh2_out, _) = wait_with_deadline(dh2, "serve DH2", deadline);
    let (tp_out, _) = wait_with_deadline(tp, "serve TP", deadline);
    router.shutdown();

    let (coord_stdout, coord_stderr) = (&coord_out.stdout, &coord_out.stderr);
    let outcome = classify_process_run(coord_out.success, coord_to, coord_stdout, coord_stderr);
    assert!(
        matches!(outcome, RunOutcome::Completed { .. }),
        "classified {outcome:?}\nstdout:\n{coord_stdout}\nstderr:\n{coord_stderr}"
    );
    for (out, label) in [(&dh1_out, "DH1"), (&dh2_out, "DH2"), (&tp_out, "TP")] {
        assert!(out.success, "{label}: {} / {}", out.stdout, out.stderr);
    }

    // Byte-identity against the oracle, session by session.
    for (id, outcome) in reference.iter().enumerate() {
        let session = format!("session={id} ");
        let expected_clusters = render_clusters(
            &outcome
                .result
                .clusters
                .iter()
                .map(|members| {
                    members
                        .iter()
                        .map(|o| (o.site, o.local_index as u32))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>(),
        );
        let expected_matrix = render_f64_bits(outcome.final_matrix.matrix().condensed_values());
        assert_eq!(
            field(
                coord_stdout,
                &["RESULT", "party=DH0", session.trim_end()],
                "clusters"
            ),
            expected_clusters,
            "session {id}: clusters diverge from the oracle"
        );
        assert_eq!(
            field(
                coord_stdout,
                &["MATRIX", "party=TP", session.trim_end()],
                "values"
            ),
            expected_matrix,
            "session {id}: final matrix diverges from the oracle"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Tamper cell: one flipped byte inside a sealed frame between the third
/// party and the router. The AEAD tier must reject it and the run must
/// settle `channel-auth` — classified from the structured `FAILED` lines,
/// not from exit codes alone.
#[test]
fn tampered_sealed_frame_settles_channel_auth() {
    let scenario = process_scenario(36, 1);
    let cell = chaos::ci_slice()
        .into_iter()
        .find(|c| c.fault == Fault::TamperSealed)
        .unwrap();
    let (dir, csvs, manifest) = stage_artifacts(&scenario, "tamper");

    let (mut router, addr) = ppc_net::TcpRouter::spawn("127.0.0.1:0").unwrap();
    // The third party dials through the tamper proxy; the flip lands a few
    // bytes into the *ciphertext* of its first data-sized sealed record
    // (the result/matrix traffic) — not the cleartext routing header,
    // whose corruption the router absorbs as an unroutable drop, and not
    // a control record like the readiness announce, which is re-sent
    // while idle and dropped unroutable when the third party wins the
    // startup race against the coordinator. Data records are the only
    // deterministic target: necessarily forwarded, necessarily needed.
    let proxy = TamperProxy::spawn_on_first_large_frame(addr, 512, 8).unwrap();
    let addr = addr.to_string();
    let proxy_addr = proxy.addr().to_string();

    // Short stall budgets keep the settling fast once the session fails.
    let budgets: &[(&str, &str)] = &[("stall-ms", "50"), ("stall-waits", "100")];
    let dh1 = spawn(&serve_args(
        &scenario,
        &addr,
        "DH1",
        Some(&csvs[1]),
        budgets,
    ));
    let dh2 = spawn(&serve_args(
        &scenario,
        &addr,
        "DH2",
        Some(&csvs[2]),
        budgets,
    ));
    let tp = spawn(&serve_args(&scenario, &proxy_addr, "TP", None, budgets));
    let coordinate = spawn(&coordinate_args(
        &scenario,
        &addr,
        &csvs[0],
        Some(&manifest),
        budgets,
    ));

    let deadline = Duration::from_secs(60);
    let (coord_out, coord_to) = wait_with_deadline(coordinate, "coordinate", deadline);
    let (coord_stdout, coord_stderr) = (&coord_out.stdout, &coord_out.stderr);
    // The serving parties settle (or stall out on their budgets) too.
    for (child, label) in [(dh1, "DH1"), (dh2, "DH2"), (tp, "TP")] {
        let _ = wait_with_deadline(child, label, deadline);
    }
    router.shutdown();

    let outcome = classify_process_run(coord_out.success, coord_to, coord_stdout, coord_stderr);
    cell.expect.check(&outcome, None).unwrap_or_else(|e| {
        panic!(
            "cell {}: {e}\nstdout:\n{coord_stdout}\nstderr:\n{coord_stderr}",
            cell.name
        )
    });

    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill cell: the third party is killed mid-run *behind the router*, so
/// the survivors' sends keep succeeding (the router buffers) and the
/// coordinator must classify as `Stalled` — within the configurable
/// budget (`--stall-ms`/`--stall-waits`), not a CI-killing hang.
#[test]
fn killing_the_third_party_behind_the_router_stalls_within_budget() {
    let scenario = process_scenario(150, 2);
    let cell = chaos::ci_slice()
        .into_iter()
        .find(|c| c.fault == Fault::KillBehindRouter)
        .unwrap();
    let (dir, csvs, manifest) = stage_artifacts(&scenario, "kill");

    let (mut router, addr) = ppc_net::TcpRouter::spawn("127.0.0.1:0").unwrap();
    let addr = addr.to_string();

    // 50 ms × 40 ≈ 2 s of true silence before a process settles its stall.
    let budgets: &[(&str, &str)] = &[
        ("stall-ms", "50"),
        ("stall-waits", "40"),
        ("ready-ms", "50"),
        ("ready-waits", "40"),
    ];
    let dh1 = spawn(&serve_args(
        &scenario,
        &addr,
        "DH1",
        Some(&csvs[1]),
        budgets,
    ));
    let dh2 = spawn(&serve_args(
        &scenario,
        &addr,
        "DH2",
        Some(&csvs[2]),
        budgets,
    ));
    let mut tp = spawn(&serve_args(&scenario, &addr, "TP", None, budgets));
    let coordinate = spawn(&coordinate_args(
        &scenario,
        &addr,
        &csvs[0],
        Some(&manifest),
        budgets,
    ));

    // Kill the third party early in the run; the router keeps its mailbox,
    // so nobody observes a send failure — only silence.
    std::thread::sleep(Duration::from_millis(300));
    let _ = tp.child.kill();
    let _ = wait_with_deadline(tp, "serve TP (killed)", Duration::from_secs(5));

    let deadline = Duration::from_secs(60);
    let (coord_out, coord_to) = wait_with_deadline(coordinate, "coordinate", deadline);
    let (coord_stdout, coord_stderr) = (&coord_out.stdout, &coord_out.stderr);
    for (child, label) in [(dh1, "DH1"), (dh2, "DH2")] {
        let _ = wait_with_deadline(child, label, deadline);
    }
    router.shutdown();

    let outcome = classify_process_run(coord_out.success, coord_to, coord_stdout, coord_stderr);
    cell.expect.check(&outcome, None).unwrap_or_else(|e| {
        panic!(
            "cell {}: {e}\nstdout:\n{coord_stdout}\nstderr:\n{coord_stderr}",
            cell.name
        )
    });

    let _ = std::fs::remove_dir_all(&dir);
}
