//! The multi-process acceptance tests: three **separate OS processes**
//! (two data holders and the third party) connected over loopback TCP
//! through a frame router must complete ≥ 4 concurrent sessions with
//! clusters and final dissimilarity matrix **byte-identical** to the
//! in-process `SessionEngine` oracle — sessions opened purely through the
//! in-band `ctl/` control plane, secrets derived per process from the
//! shared master seed.
//!
//! Since PR 5 the federation runs **AEAD-sealed by default**: the secure
//! test additionally taps the coordinator's raw TCP socket and asserts an
//! eavesdropper sees no plaintext protocol bytes (topics, control
//! announcements); the `--insecure` variant proves the tap *does* see
//! them on plaintext sockets (so the needle check is meaningful) while
//! results still match the oracle.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::{Child, Command, Output, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ppc_cluster::Linkage;
use ppc_core::alphabet::Alphabet;
use ppc_core::csv::to_csv;
use ppc_core::matrix::{DataMatrix, HorizontalPartition};
use ppc_core::protocol::driver::ClusteringRequest;
use ppc_core::protocol::engine::{EngineOutcome, SessionEngine, SessionSpec};
use ppc_core::protocol::party::TrustedSetup;
use ppc_core::protocol::ProtocolConfig;
use ppc_core::record::Record;
use ppc_core::schema::{AttributeDescriptor, Schema};
use ppc_core::value::AttributeValue;
use ppc_crypto::Seed;
use ppc_net::{Network, TcpRouter};
use ppc_party::{render_clusters, render_f64_bits};

const SESSIONS: usize = 4;
const CLUSTERS: usize = 2;
const CHUNK: usize = 2;
const MASTER: u64 = 77;
const SCHEMA_FLAG: &str = "age:numeric,blood:categorical,dna:alphanumeric:dna";

fn schema() -> Schema {
    Schema::new(vec![
        AttributeDescriptor::numeric("age"),
        AttributeDescriptor::categorical("blood"),
        AttributeDescriptor::alphanumeric("dna", Alphabet::dna()),
    ])
    .unwrap()
}

fn record(age: f64, blood: &str, dna: &str) -> Record {
    Record::new(vec![
        AttributeValue::numeric(age),
        AttributeValue::categorical(blood),
        AttributeValue::alphanumeric(dna),
    ])
}

fn partitions() -> Vec<HorizontalPartition> {
    let site_a = vec![
        record(30.0, "A", "acgta"),
        record(31.5, "A", "acgtt"),
        record(64.0, "B", "ttcga"),
        record(29.0, "O", "acgta"),
    ];
    let site_b = vec![
        record(65.0, "B", "ttcgg"),
        record(28.5, "A", "acgta"),
        record(62.0, "B", "ttcga"),
    ];
    vec![
        HorizontalPartition::new(0, DataMatrix::with_rows(schema(), site_a).unwrap()),
        HorizontalPartition::new(1, DataMatrix::with_rows(schema(), site_b).unwrap()),
    ]
}

/// The in-process oracle: the same four concurrent sessions multiplexed by
/// one `SessionEngine` over the in-memory network.
fn oracle() -> Vec<EngineOutcome> {
    let setup = TrustedSetup::deterministic(partitions(), &Seed::from_u64(MASTER)).unwrap();
    let mut engine = SessionEngine::new(Network::with_parties(2));
    for _ in 0..SESSIONS {
        engine.add_session(SessionSpec {
            schema: schema(),
            config: ProtocolConfig::default(),
            holders: setup.holders.clone(),
            keys: setup.third_party.clone(),
            request: ClusteringRequest {
                weights: schema().uniform_weights(),
                linkage: Linkage::Average,
                num_clusters: CLUSTERS,
            },
            chunk_rows: Some(CHUNK),
        });
    }
    engine.run().unwrap()
}

fn spawn(args: &[String]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_ppc-party"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ppc-party")
}

fn wait_with_deadline(mut child: Child, label: &str, deadline: Duration) -> Output {
    let started = Instant::now();
    loop {
        if child.try_wait().expect("try_wait").is_some() {
            return child.wait_with_output().expect("wait_with_output");
        }
        if started.elapsed() > deadline {
            let _ = child.kill();
            let output = child.wait_with_output().expect("wait_with_output");
            panic!(
                "{label} timed out after {deadline:?}\nstdout:\n{}\nstderr:\n{}",
                String::from_utf8_lossy(&output.stdout),
                String::from_utf8_lossy(&output.stderr)
            );
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn expect_success(output: &Output, label: &str) -> String {
    assert!(
        output.status.success(),
        "{label} exited with {}\nstdout:\n{}\nstderr:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// Finds the value of `key=` on the line matching all `selectors`.
fn field<'a>(stdout: &'a str, selectors: &[&str], key: &str) -> &'a str {
    let line = stdout
        .lines()
        .find(|line| selectors.iter().all(|s| line.contains(s)))
        .unwrap_or_else(|| panic!("no line matching {selectors:?} in:\n{stdout}"));
    line.split_whitespace()
        .find_map(|token| token.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no field {key}= on line '{line}'"))
}

/// A byte-logging TCP tap: accepts one connection, pipes it to
/// `upstream`, and records every byte of both directions — the
/// wire-level eavesdropper of the paper's §4.1.
fn spawn_tap(upstream: SocketAddr) -> (SocketAddr, Arc<Mutex<Vec<u8>>>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let captured: Arc<Mutex<Vec<u8>>> = Arc::default();
    let log = Arc::clone(&captured);
    std::thread::spawn(move || {
        let (client, _) = listener.accept().unwrap();
        let server = TcpStream::connect(upstream).unwrap();
        client.set_nodelay(true).unwrap();
        server.set_nodelay(true).unwrap();
        let pump = |mut from: TcpStream, mut to: TcpStream, log: Arc<Mutex<Vec<u8>>>| {
            std::thread::spawn(move || {
                let mut buf = [0u8; 4096];
                loop {
                    let n = match from.read(&mut buf) {
                        Ok(0) | Err(_) => {
                            let _ = to.shutdown(std::net::Shutdown::Both);
                            return;
                        }
                        Ok(n) => n,
                    };
                    log.lock().unwrap().extend_from_slice(&buf[..n]);
                    if to.write_all(&buf[..n]).is_err() {
                        return;
                    }
                }
            })
        };
        pump(
            client.try_clone().unwrap(),
            server.try_clone().unwrap(),
            Arc::clone(&log),
        );
        pump(server, client, log);
    });
    (addr, captured)
}

use ppc_net::eavesdrop::contains_bytes;

/// Protocol plaintext an on-path listener must never see on sealed
/// sockets: control topics and session-step topic fragments (all ≥ 8
/// bytes, so an accidental ciphertext match is ~2⁻⁶⁴-improbable).
const PLAINTEXT_NEEDLES: &[&[u8]] = &[
    b"ctl/ready",
    b"ctl/announce",
    b"ctl/done",
    b"numeric/age",
    b"categorical/blood",
    b"alphanumeric/dna",
    b"published-result",
    b"clustering-choice",
];

/// Runs the full three-process federation (optionally `--insecure`) with
/// the coordinator's socket tapped, checks every process against the
/// oracle, and returns the tapped bytes.
fn run_federation_against_oracle(insecure: bool) -> Vec<u8> {
    let reference = oracle();

    // Partition CSVs on disk, the way real data holders keep them.
    let dir = std::env::temp_dir().join(format!(
        "ppc-party-test-{}-{}",
        std::process::id(),
        if insecure { "plain" } else { "sealed" }
    ));
    std::fs::create_dir_all(&dir).unwrap();
    for partition in &partitions() {
        std::fs::write(
            dir.join(format!("site{}.csv", partition.site())),
            to_csv(partition.matrix()),
        )
        .unwrap();
    }

    // The frame router is the only listener; the three parties dial it —
    // the coordinator through the eavesdropping tap.
    let (mut router, addr) = TcpRouter::spawn("127.0.0.1:0").unwrap();
    let (tap_addr, captured) = spawn_tap(addr);
    let mut common: Vec<String> = vec![
        "--seed".into(),
        MASTER.to_string(),
        "--schema".into(),
        SCHEMA_FLAG.into(),
    ];
    if insecure {
        common.push("--insecure".into());
    }
    let with_common = |connect_to: &str, rest: &[&str]| -> Vec<String> {
        rest.iter()
            .map(|s| s.to_string())
            .chain(["--connect".to_string(), format!("tcp:{connect_to}")])
            .chain(common.iter().cloned())
            .collect()
    };
    let router_addr = addr.to_string();
    let tapped_addr = tap_addr.to_string();

    let csv_a = dir.join("site0.csv").display().to_string();
    let csv_b = dir.join("site1.csv").display().to_string();
    let serve_dh1 = spawn(&with_common(
        &router_addr,
        &[
            "serve",
            "--party",
            "DH1",
            "--coordinator",
            "DH0",
            "--csv",
            &csv_b,
        ],
    ));
    let serve_tp = spawn(&with_common(
        &router_addr,
        &["serve", "--party", "TP", "--coordinator", "DH0"],
    ));
    let coordinate = spawn(&with_common(
        &tapped_addr,
        &[
            "coordinate",
            "--party",
            "DH0",
            "--remote",
            "DH1,TP",
            "--csv",
            &csv_a,
            "--sessions",
            &SESSIONS.to_string(),
            "--clusters",
            &CLUSTERS.to_string(),
            "--chunk-rows",
            &CHUNK.to_string(),
        ],
    ));

    let deadline = Duration::from_secs(120);
    let coordinator_out = wait_with_deadline(coordinate, "coordinate", deadline);
    let dh1_out = wait_with_deadline(serve_dh1, "serve DH1", deadline);
    let tp_out = wait_with_deadline(serve_tp, "serve TP", deadline);
    router.shutdown();

    let coordinator = expect_success(&coordinator_out, "coordinate");
    let dh1 = expect_success(&dh1_out, "serve DH1");
    let tp = expect_success(&tp_out, "serve TP");

    for (id, outcome) in reference.iter().enumerate() {
        let session = format!("session={id} ");
        let expected_clusters = render_clusters(
            &outcome
                .result
                .clusters
                .iter()
                .map(|members| {
                    members
                        .iter()
                        .map(|o| (o.site, o.local_index as u32))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>(),
        );
        let expected_matrix = render_f64_bits(outcome.final_matrix.matrix().condensed_values());
        let expected_avg = format!(
            "{:016x}",
            outcome
                .result
                .average_within_cluster_squared_distance
                .to_bits()
        );

        // The coordinating holder's own published result.
        let sel_own = ["RESULT", "party=DH0", session.trim_end()];
        assert_eq!(
            field(&coordinator, &sel_own, "clusters"),
            expected_clusters,
            "session {id}: coordinator clusters diverge from the oracle"
        );
        assert_eq!(field(&coordinator, &sel_own, "avg"), expected_avg);

        // The remote third party's exported outcome, as the coordinator
        // received it over ctl/done.
        let sel_tp = ["MATRIX", "party=TP", session.trim_end()];
        assert_eq!(
            field(&coordinator, &sel_tp, "values"),
            expected_matrix,
            "session {id}: final matrix diverges from the oracle"
        );

        // The serving holder saw the identical published clusters.
        let sel_dh1 = ["RESULT", "party=DH1", session.trim_end()];
        assert_eq!(field(&dh1, &sel_dh1, "clusters"), expected_clusters);

        // And the third-party process printed the identical matrix itself.
        assert_eq!(field(&tp, &sel_tp, "values"), expected_matrix);
        assert_eq!(
            field(&tp, &["RESULT", "party=TP", session.trim_end()], "clusters"),
            expected_clusters
        );
    }

    // All sessions completed, none failed, on every process.
    for (stdout, label) in [(&coordinator, "coordinator"), (&dh1, "DH1"), (&tp, "TP")] {
        assert_eq!(
            field(stdout, &["STATS"], "completed"),
            SESSIONS.to_string(),
            "{label} completed-session count"
        );
        assert_eq!(field(stdout, &["STATS"], "failed"), "0", "{label} failures");
    }

    let _ = std::fs::remove_dir_all(&dir);
    let captured = captured.lock().unwrap().clone();
    assert!(
        contains_bytes(&captured, b"PPCH"),
        "the tap saw the coordinator's traffic (handshake magic present)"
    );
    captured
}

/// The PR-5 acceptance test: the federation runs AEAD-sealed **by
/// default**, results stay byte-identical to the in-process oracle, and a
/// raw-socket eavesdropper on the coordinator's link observes no protocol
/// plaintext — only handshake metadata and sealed frames.
#[test]
fn three_os_processes_match_the_in_process_oracle_byte_for_byte() {
    let captured = run_federation_against_oracle(false);
    for needle in PLAINTEXT_NEEDLES {
        assert!(
            !contains_bytes(&captured, needle),
            "plaintext {:?} leaked onto the sealed socket",
            String::from_utf8_lossy(needle)
        );
    }
}

/// The explicit `--insecure` opt-out still matches the oracle — and the
/// same eavesdropper now reads control topics straight off the wire,
/// proving the needle check detects real plaintext (the secure test's
/// clean tap is meaningful, not vacuous).
#[test]
fn insecure_opt_out_matches_the_oracle_but_leaks_plaintext() {
    let captured = run_federation_against_oracle(true);
    assert!(
        contains_bytes(&captured, b"ctl/ready"),
        "a plaintext socket exposes control traffic to the tap"
    );
}
