//! `ppc-party` — the per-party deployment binary.
//!
//! Each OS process plays exactly the parties it is configured for (one
//! data holder, or the third party) and speaks to the rest of the
//! federation over TCP or Unix-domain sockets, with sessions opened
//! in-band through the `ctl/` control plane — see
//! `ppc_core::protocol::party_engine` and `docs/WIRE_FORMAT.md` §7.
//!
//! Three modes:
//!
//! ```text
//! ppc-party route      --listen tcp:127.0.0.1:7000
//! ppc-party serve      --connect tcp:127.0.0.1:7000 --party TP  --coordinator DH0 \
//!                      --seed 77 --schema age:numeric,blood:categorical
//! ppc-party serve      --connect tcp:127.0.0.1:7000 --party DH1 --coordinator DH0 \
//!                      --seed 77 --schema age:numeric,blood:categorical --csv site_b.csv
//! ppc-party coordinate --connect tcp:127.0.0.1:7000 --party DH0 --remote DH1,TP \
//!                      --seed 77 --schema age:numeric,blood:categorical --csv site_a.csv \
//!                      --sessions 4 --clusters 3 [--linkage average] [--chunk-rows 4] \
//!                      [--numeric-mode batch|per-pair]
//! ```
//!
//! All processes must share `--seed` (the trusted-setup master seed each
//! party derives *its own* secrets from — secrets never cross the wire)
//! and `--schema`. Data holders load their partition from `--csv`
//! (`ppc_core::csv` dialect; header row matching the schema). Results are
//! printed as stable machine-parseable lines (`RESULT …`, `MATRIX …`,
//! `DONE …`, `FAILED …`), which the multi-process integration test
//! compares byte-for-byte against the in-process oracle.
//!
//! **Channel security** is on by default: every socket frame is sealed
//! end-to-end with ChaCha20-Poly1305 under keys derived from the master
//! seed (or a dedicated `--psk N`), the handshake rejects plaintext peers
//! (no silent downgrade), and tampering surfaces as
//! `FAILED … reason=channel-auth:…` outcomes. `--insecure` opts the
//! process out, with a loud warning. The frame router needs no keys — it
//! forwards sealed frames opaquely.
//!
//! Instead of `--sessions N` identical sessions, `coordinate` accepts
//! `--manifest FILE` with per-session overrides (linkage, weights,
//! clusters, chunk window, numeric mode — see [`parse_manifest`]),
//! making the CLI a batch front-end.

use std::collections::BTreeMap;
use std::error::Error;
use std::time::Duration;

use ppc_cluster::Linkage;
use ppc_core::csv::parse_csv;
use ppc_core::matrix::HorizontalPartition;
use ppc_core::protocol::driver::ClusteringRequest;
use ppc_core::protocol::party_engine::{
    PartyEngine, PartyOutcome, PartyRunReport, PartySeat, SessionFailure, SessionPlan, TpOutcome,
};
use ppc_core::protocol::session::parse_linkage;
use ppc_core::protocol::{NumericMode, ProtocolConfig};
use ppc_core::schema::{AttributeDescriptor, Schema, WeightVector};
use ppc_core::Alphabet;
use ppc_crypto::Seed;
use ppc_net::{
    Backoff, ChannelKeyring, PartyId, TcpRouter, TcpTransport, TransportBackend, WaitTransport,
};
#[cfg(unix)]
use ppc_net::{UdsRouter, UdsTransport};

/// A parsed `--flag value` map.
pub type Flags = BTreeMap<String, String>;

/// Flags that take no value (presence flags).
const BOOLEAN_FLAGS: &[&str] = &[
    "insecure",
    "secure",
    "coalesce",
    "no-coalesce",
    "pin-shards",
];

/// Parses `--key value` pairs (and bare boolean flags like `--insecure`).
pub fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let key = key
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{key}'"))?;
        let value = if BOOLEAN_FLAGS.contains(&key) {
            "true".to_string()
        } else {
            it.next()
                .ok_or_else(|| format!("--{key} needs a value"))?
                .clone()
        };
        if flags.insert(key.to_string(), value).is_some() {
            return Err(format!("--{key} given twice"));
        }
    }
    Ok(flags)
}

fn require<'a>(flags: &'a Flags, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{key}"))
}

/// `DH<n>` or `TP`.
pub fn parse_party(text: &str) -> Result<PartyId, String> {
    if text == "TP" {
        return Ok(PartyId::ThirdParty);
    }
    text.strip_prefix("DH")
        .and_then(|n| n.parse().ok())
        .map(PartyId::DataHolder)
        .ok_or_else(|| format!("'{text}' is not a party (expected DH<n> or TP)"))
}

/// `tcp:host:port` or `uds:/path/to.sock`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address.
    Tcp(String),
    /// A Unix-domain socket path.
    Uds(String),
}

/// Parses an endpoint specifier.
pub fn parse_endpoint(text: &str) -> Result<Endpoint, String> {
    if let Some(addr) = text.strip_prefix("tcp:") {
        return Ok(Endpoint::Tcp(addr.to_string()));
    }
    if let Some(path) = text.strip_prefix("uds:") {
        return Ok(Endpoint::Uds(path.to_string()));
    }
    Err(format!(
        "'{text}' is not an endpoint (expected tcp:host:port or uds:/path)"
    ))
}

fn parse_alphabet(name: &str) -> Result<Alphabet, String> {
    match name {
        "dna" => Ok(Alphabet::dna()),
        "abcd" => Ok(Alphabet::abcd()),
        "lowercase" => Ok(Alphabet::lowercase()),
        "alphanumeric-lower" => Ok(Alphabet::alphanumeric_lower()),
        other => Err(format!(
            "unknown alphabet '{other}' (expected dna, abcd, lowercase or alphanumeric-lower)"
        )),
    }
}

/// `name:numeric | name:categorical | name:alphanumeric:<alphabet>`,
/// comma-separated, schema order.
pub fn parse_schema(spec: &str) -> Result<Schema, String> {
    let mut attributes = Vec::new();
    for field in spec.split(',') {
        let mut parts = field.splitn(3, ':');
        let name = parts
            .next()
            .filter(|n| !n.is_empty())
            .ok_or_else(|| format!("empty attribute name in schema field '{field}'"))?;
        let kind = parts
            .next()
            .ok_or_else(|| format!("schema field '{field}' has no kind"))?;
        attributes.push(match kind {
            "numeric" => AttributeDescriptor::numeric(name),
            "categorical" => AttributeDescriptor::categorical(name),
            "alphanumeric" => {
                let alphabet = parts
                    .next()
                    .ok_or_else(|| format!("schema field '{field}' names no alphabet"))?;
                AttributeDescriptor::alphanumeric(name, parse_alphabet(alphabet)?)
            }
            other => return Err(format!("unknown attribute kind '{other}' in '{field}'")),
        });
    }
    Schema::new(attributes).map_err(|e| e.to_string())
}

/// Stable rendering of published cluster membership: `[[0:0,0:1],[1:0]]`
/// (site:index pairs). The integration test compares these strings between
/// the process output and the in-process oracle.
pub fn render_clusters(clusters: &[Vec<(u32, u32)>]) -> String {
    let body: Vec<String> = clusters
        .iter()
        .map(|members| {
            let inner: Vec<String> = members
                .iter()
                .map(|(site, index)| format!("{site}:{index}"))
                .collect();
            format!("[{}]", inner.join(","))
        })
        .collect();
    format!("[{}]", body.join(","))
}

/// Exact (bit-level) rendering of a float slice: lowercase hex of the
/// IEEE-754 bits, comma-separated. "Byte-identical" comparisons are string
/// comparisons of this form.
pub fn render_f64_bits(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| format!("{:016x}", v.to_bits()))
        .collect::<Vec<_>>()
        .join(",")
}

fn print_tp_outcome(session: u64, party: PartyId, tp: &TpOutcome) {
    println!(
        "RESULT party={party} session={session} clusters={} avg={:016x}",
        render_clusters(&tp.result.clusters),
        tp.result.average_within_cluster_squared_distance.to_bits()
    );
    println!(
        "MATRIX party={party} session={session} objects={} values={}",
        tp.objects,
        render_f64_bits(&tp.condensed)
    );
}

/// Prints a finished run's outcomes as stable stdout lines.
pub fn print_report(report: &PartyRunReport) {
    for row in &report.outcomes {
        let (session, party) = (row.session, row.party);
        match &row.outcome {
            PartyOutcome::Holder(published) => println!(
                "RESULT party={party} session={session} clusters={} avg={:016x}",
                render_clusters(&published.clusters),
                published.average_within_cluster_squared_distance.to_bits()
            ),
            PartyOutcome::ThirdParty(outcome) => {
                print_tp_outcome(session, party, &TpOutcome::from_engine_outcome(outcome));
            }
            PartyOutcome::Remote(Some(tp)) => print_tp_outcome(session, party, tp),
            PartyOutcome::Remote(None) => println!("DONE party={party} session={session}"),
            PartyOutcome::Failed(SessionFailure::PeerUnreachable { party: gone }) => {
                println!("FAILED party={party} session={session} reason=peer-unreachable:{gone}")
            }
            PartyOutcome::Failed(SessionFailure::ChannelAuth { detail }) => {
                println!("FAILED party={party} session={session} reason=channel-auth:{detail}")
            }
            PartyOutcome::Failed(SessionFailure::Error(e)) => {
                println!("FAILED party={party} session={session} reason={e}")
            }
        }
    }
    let stats = &report.stats;
    println!(
        "STATS rounds={} blocking_waits={} messages_sent={} peak_buffered_rows={} completed={} \
         failed={}",
        stats.rounds,
        stats.blocking_waits,
        stats.messages_sent,
        stats.peak_buffered_rows,
        stats.sessions_completed,
        stats.sessions_failed
    );
}

/// Connect-time backoff generous enough to survive the federation's
/// startup race (the router or coordinator may come up seconds later).
pub fn startup_backoff() -> Backoff {
    Backoff {
        initial: Duration::from_millis(10),
        max_delay: Duration::from_millis(500),
        max_attempts: 120,
    }
}

/// The channel-security configuration resolved from the flags.
///
/// Default is **sealed**: every socket frame is AEAD-encrypted and
/// authenticated end-to-end with keys derived from the master seed (or a
/// dedicated `--psk`). `--insecure` opts out, loudly — the paper's §4.1
/// spells out exactly what a listener learns on plaintext channels.
#[derive(Debug, Clone)]
pub enum ChannelConfig {
    /// Seal frames with this keyring (the default).
    Sealed(ChannelKeyring),
    /// Plaintext sockets; requires an explicit `--insecure`.
    Plaintext,
}

/// Resolves `--secure` / `--psk N` / `--insecure` against the master seed.
pub fn channel_config(flags: &Flags) -> Result<ChannelConfig, String> {
    let insecure = flags.contains_key("insecure");
    match (insecure, flags.get("psk")) {
        (true, Some(_)) => Err("--insecure conflicts with --psk".into()),
        (true, None) => {
            if flags.contains_key("secure") {
                return Err("--insecure conflicts with --secure".into());
            }
            eprintln!(
                "WARNING: --insecure selected: protocol traffic (masked rows, dissimilarity \
                 blocks, control announcements) travels in PLAINTEXT over this socket. Any \
                 on-path listener can mount the inference attacks of the source paper's \
                 §4.1. Never use this outside loopback experiments."
            );
            Ok(ChannelConfig::Plaintext)
        }
        (false, Some(psk)) => {
            let seed: u64 = psk
                .parse()
                .map_err(|_| "--psk must be an unsigned integer".to_string())?;
            Ok(ChannelConfig::Sealed(ChannelKeyring::from_psk(
                Seed::from_u64(seed),
            )))
        }
        (false, None) => {
            let master = master_seed(flags)?;
            Ok(ChannelConfig::Sealed(ChannelKeyring::from_master(&master)))
        }
    }
}

/// Resolves `--coalesce` / `--no-coalesce` against the channel config.
///
/// Sealed transports coalesce by default (batching queued envelopes into
/// one AEAD record per link between flushes — the per-record sealing tax
/// is paid once per batch instead of once per envelope); `--no-coalesce`
/// restores one record per envelope, e.g. to measure the difference.
/// Plaintext sockets never coalesce — frames go out as written.
pub fn coalescing_enabled(flags: &Flags, security: &ChannelConfig) -> Result<bool, String> {
    let on = flags.contains_key("coalesce");
    let off = flags.contains_key("no-coalesce");
    match (on, off, security) {
        (true, true, _) => Err("--coalesce conflicts with --no-coalesce".into()),
        (true, _, ChannelConfig::Plaintext) => {
            Err("--coalesce needs sealed channels (conflicts with --insecure)".into())
        }
        (_, _, ChannelConfig::Plaintext) => Ok(false),
        (_, off, ChannelConfig::Sealed(_)) => Ok(!off),
    }
}

/// Resolves `--transport blocking|reactor` against the host platform.
///
/// Unset defaults to [`TransportBackend::default_for_host`] (the reactor
/// on Linux, blocking elsewhere; `PPC_TRANSPORT` overrides). An explicit
/// `--transport reactor` on a platform without the polling shim is
/// rejected here rather than failing at the first link attach.
pub fn transport_backend(flags: &Flags) -> Result<TransportBackend, String> {
    match flags.get("transport") {
        Some(text) => {
            let backend = TransportBackend::parse(text)?;
            if backend == TransportBackend::Reactor && !cfg!(unix) {
                return Err(
                    "--transport reactor needs a unix platform (use --transport blocking)".into(),
                );
            }
            Ok(backend)
        }
        None => Ok(TransportBackend::default_for_host()),
    }
}

/// Resolves `--pin-shards` and, when set, pins the calling thread (which
/// drives this process's protocol engine) to a core derived from the
/// party's identity, so co-located party processes spread across cores
/// and each keeps its inbox shard cache-hot. Returns whether an affinity
/// mask was actually applied (always `false` off Linux).
pub fn pin_from_flags(flags: &Flags, party: PartyId) -> bool {
    if !flags.contains_key("pin-shards") {
        return false;
    }
    let core = match party {
        PartyId::ThirdParty => 0,
        PartyId::DataHolder(i) => i as usize + 1,
    };
    ppc_net::pin_thread_to_core(core)
}

/// Prints the delivery-path statistics line: one stable machine-parseable
/// `DELIVERY …` line mirroring the `SEALING` line, with the buffer-pool
/// and queue-node hit rates the zero-allocation claim is audited by.
pub fn print_delivery_report(stats: Option<&ppc_net::DeliveryStats>, pinned: bool) {
    let Some(s) = stats else { return };
    println!(
        "DELIVERY mode={} pool_hits={} pool_misses={} pool_hit_rate={:.4} node_hits={} \
         node_misses={} node_hit_rate={:.4} batched_wakes={} wake_signals={} pinned={}",
        s.mode_label(),
        s.pool_hits,
        s.pool_misses,
        s.pool_hit_rate(),
        s.node_hits,
        s.node_misses,
        s.node_hit_rate(),
        s.batched_wakes,
        s.wake_signals,
        pinned
    );
}

/// Prints the sealing-tier statistics line (`None` on plaintext runs).
/// One stable machine-parseable `SEALING …` line with federation totals,
/// then the per-link table on stderr for humans.
pub fn print_sealing_report(report: Option<&ppc_net::SealingReport>) {
    let Some(report) = report else { return };
    let t = report.total();
    println!(
        "SEALING records_sealed={} frames_sealed={} frames_per_record={:.2} plaintext_bytes={} \
         sealed_bytes={} records_opened={} frames_opened={}",
        t.records_sealed,
        t.frames_sealed,
        t.frames_per_record(),
        t.plaintext_bytes,
        t.sealed_bytes,
        t.records_opened,
        t.frames_opened
    );
    eprint!("{}", report.to_table());
}

fn master_seed(flags: &Flags) -> Result<Seed, String> {
    Ok(Seed::from_u64(require(flags, "seed")?.parse().map_err(
        |_| "--seed must be an unsigned integer".to_string(),
    )?))
}

fn seat_from_flags(flags: &Flags, party: PartyId, schema: &Schema) -> Result<PartySeat, String> {
    let master = master_seed(flags)?;
    match party {
        PartyId::ThirdParty => Ok(PartySeat::ThirdParty { master }),
        PartyId::DataHolder(site) => {
            let path = require(flags, "csv")?;
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read --csv {path}: {e}"))?;
            let matrix = parse_csv(schema, &text).map_err(|e| format!("{path}: {e}"))?;
            Ok(PartySeat::Holder {
                partition: HorizontalPartition::new(site, matrix),
                master,
            })
        }
    }
}

/// Default per-turn idle wait for multi-process runs, in milliseconds.
pub const DEFAULT_STALL_MS: u64 = 100;
/// Default number of consecutive idle waits before a run is declared
/// stalled (100 ms × 600 ≈ one minute of true silence).
pub const DEFAULT_STALL_WAITS: u32 = 600;

/// The stall/readiness budgets resolved from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallBudget {
    /// Per-turn idle wait.
    pub idle_wait: Duration,
    /// Consecutive idle waits before the engine errors out.
    pub max_idle_waits: u32,
    /// Explicit phase-1 readiness budget; `None` follows the stall budget.
    pub readiness: Option<(Duration, u32)>,
}

/// Resolves `--stall-ms` / `--stall-waits` / `--ready-ms` / `--ready-waits`.
///
/// Multi-process runs cross real schedulers and kernels, so the defaults
/// are generous; chaos harnesses shrink them to classify kills as stalls
/// quickly instead of waiting out a minute of silence. The `--ready-*`
/// pair bounds only the phase-1 readiness gather (peers may still be
/// starting up), letting tests keep a long run budget but fail fast when
/// a peer never shows up.
pub fn parse_stall_budget(flags: &Flags) -> Result<StallBudget, String> {
    let parse_u64 = |key: &str, default: u64| -> Result<u64, String> {
        match flags.get(key) {
            Some(text) => text
                .parse()
                .map_err(|_| format!("--{key} must be an unsigned integer")),
            None => Ok(default),
        }
    };
    let idle_wait = Duration::from_millis(parse_u64("stall-ms", DEFAULT_STALL_MS)?);
    let max_idle_waits = parse_u64("stall-waits", u64::from(DEFAULT_STALL_WAITS))? as u32;
    let readiness = match (flags.get("ready-ms"), flags.get("ready-waits")) {
        (None, None) => None,
        _ => Some((
            Duration::from_millis(parse_u64("ready-ms", idle_wait.as_millis() as u64)?),
            parse_u64("ready-waits", u64::from(max_idle_waits))? as u32,
        )),
    };
    Ok(StallBudget {
        idle_wait,
        max_idle_waits,
        readiness,
    })
}

fn build_engine<T: WaitTransport>(
    transport: T,
    seat: PartySeat,
    flags: &Flags,
) -> Result<PartyEngine<T>, Box<dyn Error>> {
    let mut engine = PartyEngine::new(transport, vec![seat])?;
    let budget = parse_stall_budget(flags)?;
    engine.set_stall_budget(budget.idle_wait, budget.max_idle_waits);
    if let Some((wait, waits)) = budget.readiness {
        engine.set_readiness_budget(wait, waits);
    }
    Ok(engine)
}

fn run_serve(flags: &Flags) -> Result<(), Box<dyn Error>> {
    let party = parse_party(require(flags, "party")?)?;
    let coordinator = parse_party(require(flags, "coordinator")?)?;
    let schema = parse_schema(require(flags, "schema")?)?;
    let seat = seat_from_flags(flags, party, &schema)?;
    let security = channel_config(flags)?;
    let coalesce = coalescing_enabled(flags, &security)?;
    let backend = transport_backend(flags)?;
    let pinned = pin_from_flags(flags, party);
    let endpoint = parse_endpoint(require(flags, "connect")?)?;
    let (report, sealing, delivery) = match endpoint {
        Endpoint::Tcp(addr) => {
            let mut transport = TcpTransport::new_with_backend([party], backend);
            if let ChannelConfig::Sealed(keyring) = &security {
                transport.set_security(keyring.clone());
            }
            transport.set_coalescing(coalesce);
            transport.connect(addr.as_str(), &startup_backoff())?;
            let engine = build_engine(transport, seat, flags)?;
            let report = engine.serve(coordinator)?;
            let transport = engine.transport();
            (
                report,
                transport.sealing_report(),
                transport.delivery_stats(),
            )
        }
        #[cfg(unix)]
        Endpoint::Uds(path) => {
            let mut transport = UdsTransport::new_with_backend([party], backend);
            if let ChannelConfig::Sealed(keyring) = &security {
                transport.set_security(keyring.clone());
            }
            transport.set_coalescing(coalesce);
            transport.connect(&path, &startup_backoff())?;
            let engine = build_engine(transport, seat, flags)?;
            let report = engine.serve(coordinator)?;
            let transport = engine.transport();
            (
                report,
                transport.sealing_report(),
                transport.delivery_stats(),
            )
        }
        #[cfg(not(unix))]
        Endpoint::Uds(_) => return Err("uds endpoints need a unix platform".into()),
    };
    print_report(&report);
    print_sealing_report(sealing.as_ref());
    print_delivery_report(Some(&delivery), pinned);
    if report.stats.sessions_failed > 0 {
        return Err(format!("{} session(s) failed", report.stats.sessions_failed).into());
    }
    Ok(())
}

fn parse_numeric_mode(text: &str) -> Result<NumericMode, String> {
    match text {
        "batch" => Ok(NumericMode::Batch),
        "per-pair" => Ok(NumericMode::PerPair),
        other => Err(format!("unknown numeric mode '{other}'")),
    }
}

/// Parses a session manifest: one session per non-empty, non-`#` line,
/// each a whitespace-separated list of `key=value` overrides applied on
/// top of `base` (the plan built from the command-line flags):
///
/// ```text
/// # session 0: defaults, just more clusters
/// clusters=4
/// # session 1: Ward linkage, custom weights, chunked per-pair run
/// linkage=ward weights=0.5,0.25,0.25 chunk-rows=2 numeric-mode=per-pair
/// ```
///
/// Keys: `clusters`, `linkage`, `weights` (comma-separated, one per
/// schema attribute), `chunk-rows` (`none` disables chunking),
/// `numeric-mode` (`batch` | `per-pair`).
pub fn parse_manifest(
    schema: &Schema,
    text: &str,
    base: &SessionPlan,
) -> Result<Vec<SessionPlan>, String> {
    let mut plans = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut plan = base.clone();
        for token in line.split_whitespace() {
            let (key, value) = token.split_once('=').ok_or_else(|| {
                format!("manifest line {}: '{token}' is not key=value", lineno + 1)
            })?;
            let err = |e: String| format!("manifest line {}: {key}: {e}", lineno + 1);
            match key {
                "clusters" => {
                    plan.request.num_clusters = value
                        .parse()
                        .map_err(|_| err("must be a positive integer".into()))?;
                }
                "linkage" => {
                    plan.request.linkage = parse_linkage(value).map_err(|e| err(e.to_string()))?
                }
                "weights" => {
                    let weights: Vec<f64> = value
                        .split(',')
                        .map(str::parse)
                        .collect::<Result<_, _>>()
                        .map_err(|_| err("must be comma-separated numbers".into()))?;
                    if weights.len() != schema.len() {
                        return Err(err(format!(
                            "{} weights for a {}-attribute schema",
                            weights.len(),
                            schema.len()
                        )));
                    }
                    plan.request.weights =
                        WeightVector::new(weights).map_err(|e| err(e.to_string()))?;
                }
                "chunk-rows" => {
                    plan.chunk_rows = if value == "none" {
                        None
                    } else {
                        Some(
                            value
                                .parse()
                                .map_err(|_| err("must be a positive integer or 'none'".into()))?,
                        )
                    };
                }
                "numeric-mode" => {
                    plan.config.numeric_mode = parse_numeric_mode(value).map_err(err)?
                }
                other => {
                    return Err(format!(
                        "manifest line {}: unknown key '{other}'",
                        lineno + 1
                    ))
                }
            }
        }
        plans.push(plan);
    }
    if plans.is_empty() {
        return Err("manifest declares no sessions".into());
    }
    Ok(plans)
}

fn run_coordinate(flags: &Flags) -> Result<(), Box<dyn Error>> {
    let party = parse_party(require(flags, "party")?)?;
    let schema = parse_schema(require(flags, "schema")?)?;
    let seat = seat_from_flags(flags, party, &schema)?;
    let security = channel_config(flags)?;
    let remote: Vec<PartyId> = require(flags, "remote")?
        .split(',')
        .map(parse_party)
        .collect::<Result<_, _>>()?;
    let num_clusters: usize = require(flags, "clusters")?
        .parse()
        .map_err(|_| "--clusters must be a positive integer".to_string())?;
    let linkage: Linkage = match flags.get("linkage") {
        Some(name) => parse_linkage(name)?,
        None => Linkage::Average,
    };
    let chunk_rows: Option<usize> = match flags.get("chunk-rows") {
        Some(text) => Some(
            text.parse()
                .map_err(|_| "--chunk-rows must be a positive integer".to_string())?,
        ),
        None => None,
    };
    let numeric_mode = match flags.get("numeric-mode") {
        Some(text) => parse_numeric_mode(text)?,
        None => NumericMode::Batch,
    };
    let base = SessionPlan {
        config: ProtocolConfig {
            numeric_mode,
            ..ProtocolConfig::default()
        },
        request: ClusteringRequest {
            weights: schema.uniform_weights(),
            linkage,
            num_clusters,
        },
        chunk_rows,
    };
    let plans = match (flags.get("manifest"), flags.get("sessions")) {
        (Some(_), Some(_)) => {
            return Err(
                "--manifest conflicts with --sessions (the manifest defines the \
                        session list)"
                    .into(),
            )
        }
        (Some(path), None) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read --manifest {path}: {e}"))?;
            parse_manifest(&schema, &text, &base)?
        }
        (None, Some(text)) => {
            let sessions: usize = text
                .parse()
                .map_err(|_| "--sessions must be a positive integer".to_string())?;
            vec![base; sessions]
        }
        (None, None) => return Err("one of --sessions or --manifest is required".into()),
    };
    let coalesce = coalescing_enabled(flags, &security)?;
    let backend = transport_backend(flags)?;
    let pinned = pin_from_flags(flags, party);
    let endpoint = parse_endpoint(require(flags, "connect")?)?;
    let (report, sealing, delivery) = match endpoint {
        Endpoint::Tcp(addr) => {
            let mut transport = TcpTransport::new_with_backend([party], backend);
            if let ChannelConfig::Sealed(keyring) = &security {
                transport.set_security(keyring.clone());
            }
            transport.set_coalescing(coalesce);
            transport.connect(addr.as_str(), &startup_backoff())?;
            let engine = build_engine(transport, seat, flags)?;
            let report = engine.coordinate(schema, remote, plans)?;
            let transport = engine.transport();
            (
                report,
                transport.sealing_report(),
                transport.delivery_stats(),
            )
        }
        #[cfg(unix)]
        Endpoint::Uds(path) => {
            let mut transport = UdsTransport::new_with_backend([party], backend);
            if let ChannelConfig::Sealed(keyring) = &security {
                transport.set_security(keyring.clone());
            }
            transport.set_coalescing(coalesce);
            transport.connect(&path, &startup_backoff())?;
            let engine = build_engine(transport, seat, flags)?;
            let report = engine.coordinate(schema, remote, plans)?;
            let transport = engine.transport();
            (
                report,
                transport.sealing_report(),
                transport.delivery_stats(),
            )
        }
        #[cfg(not(unix))]
        Endpoint::Uds(_) => return Err("uds endpoints need a unix platform".into()),
    };
    print_report(&report);
    print_sealing_report(sealing.as_ref());
    print_delivery_report(Some(&delivery), pinned);
    if report.stats.sessions_failed > 0 {
        return Err(format!("{} session(s) failed", report.stats.sessions_failed).into());
    }
    Ok(())
}

fn run_route(flags: &Flags) -> Result<(), Box<dyn Error>> {
    let backend = transport_backend(flags)?;
    match parse_endpoint(require(flags, "listen")?)? {
        Endpoint::Tcp(addr) => {
            let (router, bound) = TcpRouter::spawn_with_backend(addr.as_str(), backend)?;
            println!("ROUTER listening=tcp:{bound} transport={backend}");
            park_forever(router);
        }
        #[cfg(unix)]
        Endpoint::Uds(path) => {
            let router = UdsRouter::spawn_with_backend(&path, backend)?;
            println!("ROUTER listening=uds:{path} transport={backend}");
            park_forever(router);
        }
        #[cfg(not(unix))]
        Endpoint::Uds(_) => Err("uds endpoints need a unix platform".into()),
    }
}

fn park_forever<R>(_router: R) -> ! {
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

const USAGE: &str = "usage: ppc-party <route|serve|coordinate> --flag value ...\n\
  route      --listen tcp:HOST:PORT | uds:PATH\n\
  serve      --connect ENDPOINT --party DH<n>|TP --coordinator DH<n> --seed N \\\n\
             --schema SPEC [--csv FILE] [--psk N | --insecure]\n\
  coordinate --connect ENDPOINT --party DH<n> --remote P1,P2,... --seed N \\\n\
             --schema SPEC --csv FILE (--sessions N | --manifest FILE) --clusters K \\\n\
             [--linkage L] [--chunk-rows W] [--numeric-mode batch|per-pair] \\\n\
             [--psk N | --insecure]\n\
all modes accept [--transport blocking|reactor]: the socket I/O driver (default:\n\
reactor on Linux, blocking elsewhere; PPC_TRANSPORT overrides the default). Both\n\
drivers are wire- and result-identical; reactor keeps O(1) threads per process.\n\
serve/coordinate also accept [--stall-ms MS] [--stall-waits N] (default 100 ms x\n\
600: the engine errors out after that much true silence) and [--ready-ms MS]\n\
[--ready-waits N] to bound only the phase-1 readiness gather.\n\
channel security: sockets are AEAD-sealed by default (keys derived from --seed,\n\
or from a dedicated --psk N shared by every process); --insecure sends plaintext\n\
and warns loudly. All processes of one federation must agree.\n\
sealed links coalesce queued frames into one AEAD record per flush (amortising\n\
the per-record sealing tax); --no-coalesce seals one record per envelope.\n\
serve/coordinate also accept --pin-shards: pin the engine thread to a core\n\
derived from the party id (Linux only; a placement hint, results identical) so\n\
co-located processes stop migrating. PPC_DELIVERY=mutex selects the blocking\n\
single-lock inbox oracle instead of the default sharded lock-free delivery.";

/// Entry point shared by the binary and tests.
pub fn run(args: &[String]) -> Result<(), Box<dyn Error>> {
    let mode = args.first().ok_or(USAGE)?;
    let flags = parse_flags(&args[1..])?;
    match mode.as_str() {
        "route" => run_route(&flags),
        "serve" => run_serve(&flags),
        "coordinate" => run_coordinate(&flags),
        other => Err(format!("unknown mode '{other}'\n{USAGE}").into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_budget_flags_have_tested_defaults_and_parse_overrides() {
        let budget = parse_stall_budget(&Flags::new()).unwrap();
        assert_eq!(budget.idle_wait, Duration::from_millis(DEFAULT_STALL_MS));
        assert_eq!(budget.max_idle_waits, DEFAULT_STALL_WAITS);
        assert_eq!(budget.readiness, None, "readiness follows the stall budget");

        let flags = parse_flags(&[
            "--stall-ms".into(),
            "10".into(),
            "--stall-waits".into(),
            "30".into(),
            "--ready-waits".into(),
            "5".into(),
        ])
        .unwrap();
        let budget = parse_stall_budget(&flags).unwrap();
        assert_eq!(budget.idle_wait, Duration::from_millis(10));
        assert_eq!(budget.max_idle_waits, 30);
        // --ready-ms unset falls back to the (overridden) stall wait.
        assert_eq!(budget.readiness, Some((Duration::from_millis(10), 5)));

        let bad = parse_flags(&["--stall-ms".into(), "soon".into()]).unwrap();
        assert!(parse_stall_budget(&bad).is_err());
    }

    #[test]
    fn flags_parse_and_reject_malformed_input() {
        let flags =
            parse_flags(&["--party".into(), "DH0".into(), "--seed".into(), "77".into()]).unwrap();
        assert_eq!(flags.get("party").unwrap(), "DH0");
        assert!(parse_flags(&["party".into()]).is_err());
        assert!(parse_flags(&["--party".into()]).is_err());
        assert!(parse_flags(&["--a".into(), "1".into(), "--a".into(), "2".into()]).is_err());
    }

    #[test]
    fn parties_and_endpoints_parse() {
        assert_eq!(parse_party("DH3").unwrap(), PartyId::DataHolder(3));
        assert_eq!(parse_party("TP").unwrap(), PartyId::ThirdParty);
        assert!(parse_party("DHx").is_err());
        assert!(parse_party("dh0").is_err());
        assert_eq!(
            parse_endpoint("tcp:127.0.0.1:7000").unwrap(),
            Endpoint::Tcp("127.0.0.1:7000".into())
        );
        assert_eq!(
            parse_endpoint("uds:/tmp/x.sock").unwrap(),
            Endpoint::Uds("/tmp/x.sock".into())
        );
        assert!(parse_endpoint("http:nope").is_err());
    }

    #[test]
    fn schemas_parse_with_alphabets() {
        let schema = parse_schema("age:numeric,blood:categorical,dna:alphanumeric:dna").unwrap();
        assert_eq!(schema.len(), 3);
        assert!(parse_schema("age").is_err());
        assert!(parse_schema("age:float").is_err());
        assert!(parse_schema("dna:alphanumeric").is_err());
        assert!(parse_schema("dna:alphanumeric:klingon").is_err());
    }

    #[test]
    fn boolean_and_security_flags_resolve() {
        let flags = parse_flags(&["--insecure".into(), "--party".into(), "DH0".into()]).unwrap();
        assert_eq!(flags.get("insecure").unwrap(), "true");
        assert!(matches!(
            channel_config(&flags).unwrap(),
            ChannelConfig::Plaintext
        ));

        // Default: sealed from the master seed.
        let flags = parse_flags(&["--seed".into(), "77".into()]).unwrap();
        assert!(matches!(
            channel_config(&flags).unwrap(),
            ChannelConfig::Sealed(_)
        ));
        // Dedicated PSK needs no --seed.
        let flags = parse_flags(&["--psk".into(), "99".into()]).unwrap();
        assert!(matches!(
            channel_config(&flags).unwrap(),
            ChannelConfig::Sealed(_)
        ));
        // Contradictions are rejected.
        let flags = parse_flags(&["--insecure".into(), "--psk".into(), "1".into()]).unwrap();
        assert!(channel_config(&flags).is_err());
        let flags = parse_flags(&["--insecure".into(), "--secure".into()]).unwrap();
        assert!(channel_config(&flags).is_err());
    }

    #[test]
    fn coalescing_defaults_on_for_sealed_off_for_plaintext() {
        let sealed = ChannelConfig::Sealed(ChannelKeyring::from_psk(Seed::from_u64(1)));
        let flags = parse_flags(&[]).unwrap();
        assert!(coalescing_enabled(&flags, &sealed).unwrap());
        assert!(!coalescing_enabled(&flags, &ChannelConfig::Plaintext).unwrap());

        let flags = parse_flags(&["--no-coalesce".into()]).unwrap();
        assert!(!coalescing_enabled(&flags, &sealed).unwrap());

        let flags = parse_flags(&["--coalesce".into()]).unwrap();
        assert!(coalescing_enabled(&flags, &sealed).unwrap());
        assert!(
            coalescing_enabled(&flags, &ChannelConfig::Plaintext).is_err(),
            "explicit --coalesce on a plaintext socket must be rejected"
        );

        let flags = parse_flags(&["--coalesce".into(), "--no-coalesce".into()]).unwrap();
        assert!(coalescing_enabled(&flags, &sealed).is_err());
    }

    #[test]
    fn pin_shards_is_a_presence_flag_and_off_by_default() {
        // Bare `--pin-shards` parses without swallowing the next token.
        let flags = parse_flags(&["--pin-shards".into(), "--seed".into(), "7".into()]).unwrap();
        assert_eq!(flags.get("pin-shards").map(String::as_str), Some("true"));
        assert_eq!(flags.get("seed").map(String::as_str), Some("7"));

        // Unset: no pinning attempted, reported false.
        assert!(!pin_from_flags(&Flags::new(), PartyId::DataHolder(0)));

        // Set: pin_from_flags reports whether an affinity mask actually
        // landed — true only on Linux, and even there the syscall may be
        // refused, so just assert it does not panic and is deterministic.
        let first = pin_from_flags(&flags, PartyId::ThirdParty);
        let second = pin_from_flags(&flags, PartyId::ThirdParty);
        assert_eq!(first, second);
    }

    #[test]
    fn transport_flag_resolves_and_rejects_unknown_backends() {
        // Explicit spellings parse to their backend.
        let flags = parse_flags(&["--transport".into(), "blocking".into()]).unwrap();
        assert_eq!(
            transport_backend(&flags).unwrap(),
            TransportBackend::Blocking
        );
        let flags = parse_flags(&["--transport".into(), "reactor".into()]).unwrap();
        if cfg!(unix) {
            assert_eq!(
                transport_backend(&flags).unwrap(),
                TransportBackend::Reactor
            );
        } else {
            assert!(
                transport_backend(&flags).is_err(),
                "explicit --transport reactor off unix must be rejected"
            );
        }

        // Unset resolves to the host default (never an error).
        assert!(transport_backend(&Flags::new()).is_ok());

        // Typos are rejected with the expected spellings named.
        let flags = parse_flags(&["--transport".into(), "epoll".into()]).unwrap();
        let err = transport_backend(&flags).unwrap_err();
        assert!(err.contains("blocking") && err.contains("reactor"), "{err}");

        // --transport is a valued flag: a bare `--transport` is malformed.
        assert!(parse_flags(&["--transport".into()]).is_err());
    }

    #[test]
    fn manifests_parse_with_overrides_and_reject_malformed_lines() {
        let schema = parse_schema("age:numeric,blood:categorical,dna:alphanumeric:dna").unwrap();
        let base = SessionPlan {
            config: ProtocolConfig::default(),
            request: ClusteringRequest {
                weights: schema.uniform_weights(),
                linkage: Linkage::Average,
                num_clusters: 2,
            },
            chunk_rows: Some(4),
        };
        let text = "\
# comment, then a blank line

clusters=5
linkage=ward weights=0.5,0.25,0.25 chunk-rows=2 numeric-mode=per-pair
chunk-rows=none
";
        let plans = parse_manifest(&schema, text, &base).unwrap();
        assert_eq!(plans.len(), 3);
        assert_eq!(plans[0].request.num_clusters, 5);
        assert_eq!(plans[0].request.linkage, Linkage::Average);
        assert_eq!(plans[1].request.linkage, Linkage::Ward);
        assert_eq!(plans[1].request.weights.weights(), &[0.5, 0.25, 0.25]);
        assert_eq!(plans[1].chunk_rows, Some(2));
        assert_eq!(plans[2].chunk_rows, None);
        assert_eq!(plans[2].request.num_clusters, 2, "defaults carry over");

        assert!(parse_manifest(&schema, "", &base).is_err(), "no sessions");
        assert!(parse_manifest(&schema, "clusters", &base).is_err());
        assert!(parse_manifest(&schema, "clusters=x", &base).is_err());
        assert!(
            parse_manifest(&schema, "weights=1,2", &base).is_err(),
            "arity"
        );
        assert!(parse_manifest(&schema, "turbo=yes", &base).is_err());
    }

    #[test]
    fn renderings_are_stable() {
        assert_eq!(
            render_clusters(&[vec![(0, 0), (1, 2)], vec![(0, 1)]]),
            "[[0:0,1:2],[0:1]]"
        );
        assert_eq!(render_f64_bits(&[1.0]), "3ff0000000000000");
        assert_eq!(
            render_f64_bits(&[0.5, -0.0]),
            "3fe0000000000000,8000000000000000"
        );
    }
}
