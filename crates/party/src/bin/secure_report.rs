//! Generates `BENCH_pr6.json`: what the channel-security tier costs after
//! frame coalescing and the vectorized AEAD — sessions/s of the same
//! workload over loopback TCP with plaintext, sealed-per-envelope and
//! sealed+coalesced frames, single-process (sharded engine through a
//! frame router) and three-process (real `ppc-party` OS processes), plus
//! raw seal+open throughput of the vendored ChaCha20-Poly1305, scalar
//! oracle vs the vectorized path.
//!
//! Every timed row records **min/median/max** of its repetitions: the
//! single-core CI boxes this runs on are noisy (±20% between identical
//! runs is common), and a lone median overclaims.
//!
//! ```text
//! cargo build --release -p ppc-party
//! cargo run --release -p ppc-party --bin secure_report [output.json]
//! ```

use std::io::Read;
use std::process::{Child, Command, Stdio};
use std::time::Instant;

use ppc_cluster::Linkage;
use ppc_core::csv::to_csv;
use ppc_core::protocol::driver::ClusteringRequest;
use ppc_core::protocol::engine::SessionSpec;
use ppc_core::protocol::party::TrustedSetup;
use ppc_core::protocol::sharded::ShardedEngine;
use ppc_core::protocol::ProtocolConfig;
use ppc_crypto::{ChaCha20Poly1305, Seed};
use ppc_data::Workload;
use ppc_net::{Backoff, ChannelKeyring, PartyId, SealingReport, TcpRouter, TcpTransport};

const OBJECTS: usize = 32;
const SITES: u32 = 2;
const CLUSTERS: usize = 3;
const SESSIONS: usize = 6;
const WINDOW: usize = 4;
const SEED: u64 = 77;
const REPS: usize = 5;
const SCHEMA_FLAG: &str = "dna:alphanumeric:dna,age:numeric,outcome:categorical";

fn spec(seed: u64) -> SessionSpec {
    let workload = Workload::bird_flu(OBJECTS, SITES, CLUSTERS, seed).unwrap();
    let schema = workload.schema().clone();
    let setup =
        TrustedSetup::deterministic(workload.partitions.clone(), &Seed::from_u64(SEED)).unwrap();
    SessionSpec {
        schema: schema.clone(),
        config: ProtocolConfig::default(),
        holders: setup.holders,
        keys: setup.third_party,
        request: ClusteringRequest {
            weights: schema.uniform_weights(),
            linkage: Linkage::Average,
            num_clusters: CLUSTERS,
        },
        chunk_rows: Some(WINDOW),
    }
}

/// min / median / max of a sample set (seconds).
#[derive(Clone, Copy)]
struct Spread {
    min: f64,
    median: f64,
    max: f64,
}

impl Spread {
    fn of(mut samples: Vec<f64>) -> Spread {
        samples.sort_by(f64::total_cmp);
        Spread {
            min: samples[0],
            median: samples[samples.len() / 2],
            max: samples[samples.len() - 1],
        }
    }

    fn measure(mut run: impl FnMut()) -> Spread {
        Spread::of(
            (0..REPS)
                .map(|_| {
                    let started = Instant::now();
                    run();
                    started.elapsed().as_secs_f64()
                })
                .collect(),
        )
    }

    /// `"min_seconds": …, "median_seconds": …, "max_seconds": …` fields.
    fn seconds_fields(&self) -> String {
        format!(
            "\"min_seconds\": {:.6}, \"median_seconds\": {:.6}, \"max_seconds\": {:.6}",
            self.min, self.median, self.max
        )
    }

    /// Throughput fields for `work / seconds` (max time → min rate).
    fn rate_fields(&self, work: f64, unit: &str) -> String {
        format!(
            "\"min_{unit}\": {:.2}, \"median_{unit}\": {:.2}, \"max_{unit}\": {:.2}",
            work / self.max,
            work / self.median,
            work / self.min
        )
    }
}

/// One single-process sharded run over a loopback-TCP router: plaintext,
/// sealed one-record-per-envelope, or sealed+coalesced. Returns the
/// transport's sealing report (`None` on plaintext).
fn sharded_tcp_run(specs: &[SessionSpec], sealed: bool, coalesce: bool) -> Option<SealingReport> {
    let (mut router, addr) = TcpRouter::spawn("127.0.0.1:0").unwrap();
    let parties: Vec<PartyId> = (0..SITES)
        .map(PartyId::DataHolder)
        .chain([PartyId::ThirdParty])
        .collect();
    let mut transport = TcpTransport::new(parties);
    if sealed {
        transport.set_security(ChannelKeyring::from_master(&Seed::from_u64(SEED)));
        transport.set_coalescing(coalesce);
    }
    transport.connect(addr, &Backoff::default()).unwrap();
    let mut engine = ShardedEngine::new(vec![transport]).unwrap();
    for s in specs {
        engine.add_session(s.clone());
    }
    engine.set_stall_budget(std::time::Duration::from_millis(100), 100);
    let run = engine.run().unwrap();
    assert_eq!(run.outcomes.len(), SESSIONS);
    let mut sealing = None;
    for t in engine.transports() {
        if let Some(report) = t.sealing_report() {
            sealing
                .get_or_insert_with(SealingReport::default)
                .merge(&report);
        }
        t.shutdown();
    }
    router.shutdown();
    sealing
}

fn sibling(name: &str) -> std::path::PathBuf {
    let mut path = std::env::current_exe().expect("current exe");
    path.set_file_name(name);
    path
}

fn spawn_party(binary: &std::path::Path, args: &[String]) -> Child {
    Command::new(binary)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap_or_else(|e| panic!("cannot spawn {}: {e}", binary.display()))
}

fn drain(child: Child, label: &str) {
    let output = child.wait_with_output().expect("child waited");
    if !output.status.success() {
        let mut text = String::new();
        let _ = (&output.stdout[..]).read_to_string(&mut text);
        panic!("{label} failed ({}): {text}", output.status);
    }
}

/// Channel flavor of a three-process run.
#[derive(Clone, Copy, PartialEq)]
enum Flavor {
    Plaintext,
    SealedUncoalesced,
    SealedCoalesced,
}

impl Flavor {
    fn id(self) -> &'static str {
        match self {
            Flavor::Plaintext => "plaintext",
            Flavor::SealedUncoalesced => "sealed_uncoalesced",
            Flavor::SealedCoalesced => "sealed_coalesced",
        }
    }

    fn extra_flag(self) -> Option<&'static str> {
        match self {
            Flavor::Plaintext => Some("--insecure"),
            Flavor::SealedUncoalesced => Some("--no-coalesce"),
            Flavor::SealedCoalesced => None, // the ppc-party default
        }
    }
}

/// One three-process federation run over loopback TCP.
fn three_process_run(binary: &std::path::Path, csv_dir: &std::path::Path, flavor: Flavor) -> f64 {
    let (mut router, addr) = TcpRouter::spawn("127.0.0.1:0").unwrap();
    let connect = format!("tcp:{addr}");
    let common = |rest: &[&str]| -> Vec<String> {
        let mut args: Vec<String> = rest.iter().map(|s| s.to_string()).collect();
        args.extend([
            "--connect".into(),
            connect.clone(),
            "--seed".into(),
            SEED.to_string(),
            "--schema".into(),
            SCHEMA_FLAG.into(),
        ]);
        if let Some(flag) = flavor.extra_flag() {
            args.push(flag.into());
        }
        args
    };
    let csv = |site: u32| {
        csv_dir
            .join(format!("site{site}.csv"))
            .display()
            .to_string()
    };
    let started = Instant::now();
    let serve_dh1 = spawn_party(
        binary,
        &common(&[
            "serve",
            "--party",
            "DH1",
            "--coordinator",
            "DH0",
            "--csv",
            &csv(1),
        ]),
    );
    let serve_tp = spawn_party(
        binary,
        &common(&["serve", "--party", "TP", "--coordinator", "DH0"]),
    );
    let coordinate = spawn_party(
        binary,
        &common(&[
            "coordinate",
            "--party",
            "DH0",
            "--remote",
            "DH1,TP",
            "--csv",
            &csv(0),
            "--sessions",
            &SESSIONS.to_string(),
            "--clusters",
            &CLUSTERS.to_string(),
            "--chunk-rows",
            &WINDOW.to_string(),
        ]),
    );
    drain(coordinate, "coordinate");
    let elapsed = started.elapsed().as_secs_f64();
    drain(serve_dh1, "serve DH1");
    drain(serve_tp, "serve TP");
    router.shutdown();
    elapsed
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr6.json".to_string());
    let mut rows = Vec::new();

    // Raw AEAD throughput, 1 MiB frames: the retained scalar oracle vs the
    // shipping vectorized path, measured on the same machine in the same
    // process.
    let mut scalar_median_mbs = 0.0;
    for scalar in [true, false] {
        let cipher = ChaCha20Poly1305::from_seed(&Seed::from_u64(1));
        let plaintext = vec![0xA5u8; 1 << 20];
        let mut nonce = [0u8; 12];
        let frames = if scalar { 4u64 } else { 16u64 };
        let spread = Spread::measure(|| {
            for i in 0..frames {
                nonce[0..8].copy_from_slice(&i.to_le_bytes());
                let (sealed, opened) = if scalar {
                    let sealed = cipher.seal_scalar(&nonce, b"bench", &plaintext);
                    let opened = cipher.open_scalar(&nonce, b"bench", &sealed).unwrap();
                    (sealed, opened)
                } else {
                    let sealed = cipher.seal(&nonce, b"bench", &plaintext);
                    let opened = cipher.open(&nonce, b"bench", &sealed).unwrap();
                    (sealed, opened)
                };
                assert_eq!(sealed.len(), plaintext.len() + 16);
                assert_eq!(opened.len(), plaintext.len());
            }
        });
        let mb = frames as f64;
        if scalar {
            scalar_median_mbs = mb / spread.median;
        }
        let speedup = if scalar {
            String::new()
        } else {
            format!(
                ", \"speedup_vs_scalar\": {:.2}",
                (mb / spread.median) / scalar_median_mbs
            )
        };
        rows.push(format!(
            "    {{\"id\": \"aead/seal_open_roundtrip/{}\", \"mb_per_rep\": {mb:.0}, {}, \
             {}{speedup}}}",
            if scalar { "scalar" } else { "vectorized" },
            spread.seconds_fields(),
            spread.rate_fields(mb, "mb_per_second"),
        ));
    }

    let specs: Vec<SessionSpec> = (0..SESSIONS).map(|i| spec(900 + i as u64)).collect();
    let mut plaintext_median = 0.0;
    let mut sealing_table = None;
    for (id, sealed, coalesce) in [
        ("plaintext", false, false),
        ("sealed_uncoalesced", true, false),
        ("sealed_coalesced", true, true),
    ] {
        let spread = Spread::measure(|| {
            if let Some(report) = sharded_tcp_run(&specs, sealed, coalesce) {
                if coalesce {
                    sealing_table = Some(report);
                }
            }
        });
        if !sealed {
            plaintext_median = spread.median;
        }
        let overhead = if sealed {
            format!(
                ", \"overhead_vs_plaintext_percent\": {:.1}",
                (spread.median / plaintext_median - 1.0) * 100.0
            )
        } else {
            String::new()
        };
        rows.push(format!(
            "    {{\"id\": \"single_process/loopback_tcp/{id}\", \"sessions\": {SESSIONS}, {}, \
             {}{overhead}}}",
            spread.seconds_fields(),
            spread.rate_fields(SESSIONS as f64, "sessions_per_second"),
        ));
    }
    if let Some(report) = &sealing_table {
        let t = report.total();
        println!(
            "sealing stats of one coalesced run: {} envelopes in {} records \
             ({:.2} frames/record), {} plaintext bytes -> {} sealed bytes",
            t.frames_sealed,
            t.records_sealed,
            t.frames_per_record(),
            t.plaintext_bytes,
            t.sealed_bytes
        );
        print!("{}", report.to_table());
    }

    let binary = sibling("ppc-party");
    if binary.exists() {
        let csv_dir = std::env::temp_dir().join(format!("ppc-secure-bench-{}", std::process::id()));
        std::fs::create_dir_all(&csv_dir).unwrap();
        let workload = Workload::bird_flu(OBJECTS, SITES, CLUSTERS, 900).unwrap();
        for partition in &workload.partitions {
            std::fs::write(
                csv_dir.join(format!("site{}.csv", partition.site())),
                to_csv(partition.matrix()),
            )
            .unwrap();
        }
        let mut three_plaintext_median = 0.0;
        for flavor in [
            Flavor::Plaintext,
            Flavor::SealedUncoalesced,
            Flavor::SealedCoalesced,
        ] {
            let spread = Spread::of(
                (0..REPS)
                    .map(|_| three_process_run(&binary, &csv_dir, flavor))
                    .collect(),
            );
            if flavor == Flavor::Plaintext {
                three_plaintext_median = spread.median;
            }
            let overhead = if flavor == Flavor::Plaintext {
                String::new()
            } else {
                format!(
                    ", \"overhead_vs_plaintext_percent\": {:.1}",
                    (spread.median / three_plaintext_median - 1.0) * 100.0
                )
            };
            rows.push(format!(
                "    {{\"id\": \"three_process/loopback_tcp/{}\", \"sessions\": {SESSIONS}, {}, \
                 {}{overhead}, \"note\": \"includes process spawn + control-plane handshake\"}}",
                flavor.id(),
                spread.seconds_fields(),
                spread.rate_fields(SESSIONS as f64, "sessions_per_second"),
            ));
        }
        let _ = std::fs::remove_dir_all(&csv_dir);
    } else {
        rows.push(format!(
            "    {{\"id\": \"three_process/loopback_tcp\", \"skipped\": \
             \"{} not built; run cargo build --release -p ppc-party first\"}}",
            binary.display()
        ));
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"pr\": 6,\n  \"title\": \"Sealing tax after coalescing + vectorized AEAD: \
         plaintext vs sealed vs sealed+coalesced loopback TCP\",\n  \"workload\": \"bird_flu \
         {OBJECTS} objects, {SITES} sites, 3 attributes (dna + numeric + categorical), average \
         linkage, k={CLUSTERS}, chunk window {WINDOW}, {SESSIONS} sessions\",\n  \"harness\": \
         \"secure_report binary; every timed row records min/median/max of {REPS} runs (noisy \
         single-core boxes); sealed rows run ChaCha20-Poly1305 end-to-end, coalesced rows batch \
         each link's queued envelopes into one AEAD record per flush; three-process rows spawn \
         real ppc-party OS processes against an in-harness TCP router\",\n  \
         \"cores\": {cores},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out_path, &json).unwrap();
    println!("{json}");
    println!("wrote {out_path}");
}
