//! Generates `BENCH_pr5.json`: the cost of the channel-security tier —
//! sessions/s of the same workload over loopback TCP with plaintext
//! versus AEAD-sealed frames, single-process (sharded engine through a
//! frame router) and three-process (real `ppc-party` OS processes,
//! sealed by default vs `--insecure`), plus the raw seal/open throughput
//! of the vendored ChaCha20-Poly1305.
//!
//! ```text
//! cargo build --release -p ppc-party
//! cargo run --release -p ppc-party --bin secure_report [output.json]
//! ```

use std::io::Read;
use std::process::{Child, Command, Stdio};
use std::time::Instant;

use ppc_cluster::Linkage;
use ppc_core::csv::to_csv;
use ppc_core::protocol::driver::ClusteringRequest;
use ppc_core::protocol::engine::SessionSpec;
use ppc_core::protocol::party::TrustedSetup;
use ppc_core::protocol::sharded::ShardedEngine;
use ppc_core::protocol::ProtocolConfig;
use ppc_crypto::{ChaCha20Poly1305, Seed};
use ppc_data::Workload;
use ppc_net::{Backoff, ChannelKeyring, PartyId, TcpRouter, TcpTransport};

const OBJECTS: usize = 32;
const SITES: u32 = 2;
const CLUSTERS: usize = 3;
const SESSIONS: usize = 6;
const WINDOW: usize = 4;
const SEED: u64 = 77;
const REPS: usize = 3;
const SCHEMA_FLAG: &str = "dna:alphanumeric:dna,age:numeric,outcome:categorical";

fn spec(seed: u64) -> SessionSpec {
    let workload = Workload::bird_flu(OBJECTS, SITES, CLUSTERS, seed).unwrap();
    let schema = workload.schema().clone();
    let setup =
        TrustedSetup::deterministic(workload.partitions.clone(), &Seed::from_u64(SEED)).unwrap();
    SessionSpec {
        schema: schema.clone(),
        config: ProtocolConfig::default(),
        holders: setup.holders,
        keys: setup.third_party,
        request: ClusteringRequest {
            weights: schema.uniform_weights(),
            linkage: Linkage::Average,
            num_clusters: CLUSTERS,
        },
        chunk_rows: Some(WINDOW),
    }
}

fn median_seconds(mut run: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let started = Instant::now();
            run();
            started.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// One single-process sharded run over a loopback-TCP router, sealed or
/// plaintext.
fn sharded_tcp_run(specs: &[SessionSpec], sealed: bool) {
    let (mut router, addr) = TcpRouter::spawn("127.0.0.1:0").unwrap();
    let parties: Vec<PartyId> = (0..SITES)
        .map(PartyId::DataHolder)
        .chain([PartyId::ThirdParty])
        .collect();
    let mut transport = TcpTransport::new(parties);
    if sealed {
        transport.set_security(ChannelKeyring::from_master(&Seed::from_u64(SEED)));
    }
    transport.connect(addr, &Backoff::default()).unwrap();
    let mut engine = ShardedEngine::new(vec![transport]).unwrap();
    for s in specs {
        engine.add_session(s.clone());
    }
    engine.set_stall_budget(std::time::Duration::from_millis(100), 100);
    let run = engine.run().unwrap();
    assert_eq!(run.outcomes.len(), SESSIONS);
    for t in engine.transports() {
        t.shutdown();
    }
    router.shutdown();
}

fn sibling(name: &str) -> std::path::PathBuf {
    let mut path = std::env::current_exe().expect("current exe");
    path.set_file_name(name);
    path
}

fn spawn_party(binary: &std::path::Path, args: &[String]) -> Child {
    Command::new(binary)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap_or_else(|e| panic!("cannot spawn {}: {e}", binary.display()))
}

fn drain(child: Child, label: &str) {
    let output = child.wait_with_output().expect("child waited");
    if !output.status.success() {
        let mut text = String::new();
        let _ = (&output.stdout[..]).read_to_string(&mut text);
        panic!("{label} failed ({}): {text}", output.status);
    }
}

/// One three-process federation run over loopback TCP, sealed (default)
/// or `--insecure`.
fn three_process_run(binary: &std::path::Path, csv_dir: &std::path::Path, insecure: bool) -> f64 {
    let (mut router, addr) = TcpRouter::spawn("127.0.0.1:0").unwrap();
    let connect = format!("tcp:{addr}");
    let common = |rest: &[&str]| -> Vec<String> {
        let mut args: Vec<String> = rest.iter().map(|s| s.to_string()).collect();
        args.extend([
            "--connect".into(),
            connect.clone(),
            "--seed".into(),
            SEED.to_string(),
            "--schema".into(),
            SCHEMA_FLAG.into(),
        ]);
        if insecure {
            args.push("--insecure".into());
        }
        args
    };
    let csv = |site: u32| {
        csv_dir
            .join(format!("site{site}.csv"))
            .display()
            .to_string()
    };
    let started = Instant::now();
    let serve_dh1 = spawn_party(
        binary,
        &common(&[
            "serve",
            "--party",
            "DH1",
            "--coordinator",
            "DH0",
            "--csv",
            &csv(1),
        ]),
    );
    let serve_tp = spawn_party(
        binary,
        &common(&["serve", "--party", "TP", "--coordinator", "DH0"]),
    );
    let coordinate = spawn_party(
        binary,
        &common(&[
            "coordinate",
            "--party",
            "DH0",
            "--remote",
            "DH1,TP",
            "--csv",
            &csv(0),
            "--sessions",
            &SESSIONS.to_string(),
            "--clusters",
            &CLUSTERS.to_string(),
            "--chunk-rows",
            &WINDOW.to_string(),
        ]),
    );
    drain(coordinate, "coordinate");
    let elapsed = started.elapsed().as_secs_f64();
    drain(serve_dh1, "serve DH1");
    drain(serve_tp, "serve TP");
    router.shutdown();
    elapsed
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr5.json".to_string());
    let mut rows = Vec::new();

    // Raw AEAD throughput: seal + open of 1 MiB frames.
    {
        let cipher = ChaCha20Poly1305::from_seed(&Seed::from_u64(1));
        let plaintext = vec![0xA5u8; 1 << 20];
        let mut nonce = [0u8; 12];
        let reps = 16u64;
        let started = Instant::now();
        for i in 0..reps {
            nonce[0..8].copy_from_slice(&i.to_le_bytes());
            let sealed = cipher.seal(&nonce, b"bench", &plaintext);
            let opened = cipher.open(&nonce, b"bench", &sealed).unwrap();
            assert_eq!(opened.len(), plaintext.len());
        }
        let secs = started.elapsed().as_secs_f64();
        let mb = (reps as f64) * (plaintext.len() as f64) / (1 << 20) as f64;
        rows.push(format!(
            "    {{\"id\": \"aead/seal_open_roundtrip\", \"mb\": {mb:.0}, \
             \"seconds\": {secs:.6}, \"mb_per_second\": {:.1}}}",
            mb / secs
        ));
    }

    let specs: Vec<SessionSpec> = (0..SESSIONS).map(|i| spec(900 + i as u64)).collect();
    for sealed in [false, true] {
        let median = median_seconds(|| sharded_tcp_run(&specs, sealed));
        rows.push(format!(
            "    {{\"id\": \"single_process/loopback_tcp/{}\", \"sessions\": {SESSIONS}, \
             \"median_seconds\": {median:.6}, \"sessions_per_second\": {:.2}}}",
            if sealed { "sealed" } else { "plaintext" },
            SESSIONS as f64 / median
        ));
    }

    let binary = sibling("ppc-party");
    if binary.exists() {
        let csv_dir = std::env::temp_dir().join(format!("ppc-secure-bench-{}", std::process::id()));
        std::fs::create_dir_all(&csv_dir).unwrap();
        let workload = Workload::bird_flu(OBJECTS, SITES, CLUSTERS, 900).unwrap();
        for partition in &workload.partitions {
            std::fs::write(
                csv_dir.join(format!("site{}.csv", partition.site())),
                to_csv(partition.matrix()),
            )
            .unwrap();
        }
        for insecure in [true, false] {
            let mut samples: Vec<f64> = (0..REPS)
                .map(|_| three_process_run(&binary, &csv_dir, insecure))
                .collect();
            samples.sort_by(f64::total_cmp);
            let median = samples[samples.len() / 2];
            rows.push(format!(
                "    {{\"id\": \"three_process/loopback_tcp/{}\", \"sessions\": {SESSIONS}, \
                 \"median_seconds\": {median:.6}, \"sessions_per_second\": {:.2}, \
                 \"note\": \"includes process spawn + control-plane handshake\"}}",
                if insecure { "plaintext" } else { "sealed" },
                SESSIONS as f64 / median
            ));
        }
        let _ = std::fs::remove_dir_all(&csv_dir);
    } else {
        rows.push(format!(
            "    {{\"id\": \"three_process/loopback_tcp\", \"skipped\": \
             \"{} not built; run cargo build --release -p ppc-party first\"}}",
            binary.display()
        ));
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"pr\": 5,\n  \"title\": \"Channel security: plaintext vs AEAD-sealed loopback \
         TCP\",\n  \"workload\": \"bird_flu {OBJECTS} objects, {SITES} sites, 3 attributes \
         (dna + numeric + categorical), average linkage, k={CLUSTERS}, chunk window {WINDOW}, \
         {SESSIONS} sessions\",\n  \"harness\": \"secure_report binary, wall-clock medians of \
         {REPS} runs; sealed rows run ChaCha20-Poly1305 end-to-end per frame; three-process \
         rows spawn real ppc-party OS processes against an in-harness TCP router\",\n  \
         \"cores\": {cores},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out_path, &json).unwrap();
    println!("{json}");
    println!("wrote {out_path}");
}
