//! Generates `BENCH_pr9.json`: the scenario factory as the bench surface,
//! measured on both socket I/O backends.
//!
//! Every row is derived from a seeded [`ScenarioSpec`] and records its
//! seed, so any number can be reproduced bit-for-bit by regenerating the
//! same scenario; every row also records the host's `cores` and the
//! `transport_backend` it ran on (`in-memory` for rows that never touch a
//! socket, otherwise `blocking` — one reader thread per link — or
//! `reactor` — all sockets on one process-global event loop). The axes:
//!
//! * **sites × objects × skew** — three oracle rows run the in-process
//!   session engine over generated workloads (uniform 4-site, zipf
//!   8-site, one-dominant-site 5-site), each with the factory's
//!   per-session manifest diversity (linkage, weights, chunk windows,
//!   numeric modes);
//! * **channel security × backend** — the same scenario through a
//!   loopback-TCP frame router, plaintext vs sealed (ChaCha20-Poly1305
//!   end-to-end) on each socket backend, byte-identity to the oracle
//!   asserted on every rep;
//! * **loss/latency** — the scenario under the [`SimulatedWan`] cost
//!   model (clean WAN and lossy DSL), virtual wire costs recorded next to
//!   the wall time;
//! * **deployment × backend** — a multi-process federation: real
//!   `ppc-party` OS processes fed the *generated* CSVs, `--schema` string
//!   and `--manifest` file, plaintext vs sealed on each `--transport`,
//!   every flavor's result stream fingerprint-equal;
//! * **link scaling** — a 64-link ring through one router process per
//!   backend: the workload the reactor exists for (O(1) threads where
//!   blocking pays a thread per link).
//!
//! Every timed row records **min/median/max** of its repetitions: the
//! single-core CI boxes this runs on are noisy (±20% between identical
//! runs is common), and a lone median overclaims.
//!
//! ```text
//! cargo build --release -p ppc-party
//! cargo run --release -p ppc-party --bin secure_report -- \
//!     [--reps N] [--scale quick|full] [--out BENCH_pr9.json]
//! ```

use std::io::Read;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ppc_core::protocol::engine::SessionSpec;
use ppc_core::protocol::sharded::ShardedEngine;
use ppc_net::{
    Backoff, ChannelKeyring, Envelope, Network, PartyId, SimulatedWan, TcpRouter, TcpTransport,
    Transport, TransportBackend, WaitTransport, WanProfile,
};
use ppc_scenario::chaos::fingerprint_process_stdout;
use ppc_scenario::digest::fingerprint_outcomes;
use ppc_scenario::factory::{Scenario, ScenarioSpec, SchemaShape, SiteSkew};

/// Bench scale: `quick` keeps a full run in CI minutes on one core,
/// `full` multiplies the object counts for real hardware.
#[derive(Clone, Copy, PartialEq)]
enum Scale {
    Quick,
    Full,
}

impl Scale {
    fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }

    /// Object count for a scenario: `quick` baseline or the `full`
    /// multiple.
    fn objects(self, quick: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Full => quick * 4,
        }
    }
}

struct Args {
    reps: usize,
    scale: Scale,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        reps: 5,
        scale: Scale::Quick,
        out: "BENCH_pr9.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--reps" => {
                args.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
                if args.reps == 0 {
                    return Err("--reps must be at least 1".into());
                }
            }
            "--scale" => {
                args.scale = match value("--scale")?.as_str() {
                    "quick" => Scale::Quick,
                    "full" => Scale::Full,
                    other => return Err(format!("--scale must be quick or full, got '{other}'")),
                }
            }
            "--out" => args.out = value("--out")?,
            other => {
                return Err(format!(
                    "unknown flag '{other}' (expected --reps N, --scale quick|full, --out PATH)"
                ))
            }
        }
    }
    Ok(args)
}

/// The scenario axis: three distinct shapes of the generated federation.
fn oracle_specs(scale: Scale) -> Vec<(&'static str, ScenarioSpec)> {
    vec![
        (
            "uniform_4site",
            ScenarioSpec {
                seed: 0xBE4C_0801,
                sites: 4,
                objects: scale.objects(240),
                clusters: 3,
                skew: SiteSkew::Uniform,
                shape: SchemaShape::default(),
                sessions: 3,
                chunk_base: Some(8),
            },
        ),
        (
            "zipf_8site",
            ScenarioSpec {
                seed: 0xBE4C_0802,
                sites: 8,
                objects: scale.objects(480),
                clusters: 4,
                skew: SiteSkew::Zipf { exponent: 1.0 },
                shape: SchemaShape::default(),
                sessions: 2,
                chunk_base: Some(16),
            },
        ),
        (
            "dominant_5site",
            ScenarioSpec {
                seed: 0xBE4C_0803,
                sites: 5,
                objects: scale.objects(360),
                clusters: 3,
                skew: SiteSkew::DominantSite { fraction: 0.6 },
                shape: SchemaShape::default(),
                sessions: 2,
                chunk_base: Some(8),
            },
        ),
    ]
}

/// The multi-process scenario: 3 sites keeps the federation at four
/// `ppc-party` processes plus the router.
fn process_spec(scale: Scale) -> ScenarioSpec {
    ScenarioSpec {
        seed: 0xBE4C_0804,
        sites: 3,
        objects: scale.objects(120),
        clusters: 2,
        skew: SiteSkew::Zipf { exponent: 0.9 },
        shape: SchemaShape::default(),
        sessions: 2,
        chunk_base: Some(8),
    }
}

/// min / median / max of a sample set (seconds).
#[derive(Clone, Copy)]
struct Spread {
    min: f64,
    median: f64,
    max: f64,
}

impl Spread {
    fn of(mut samples: Vec<f64>) -> Spread {
        samples.sort_by(f64::total_cmp);
        Spread {
            min: samples[0],
            median: samples[samples.len() / 2],
            max: samples[samples.len() - 1],
        }
    }

    fn measure(reps: usize, mut run: impl FnMut()) -> Spread {
        Spread::of(
            (0..reps)
                .map(|_| {
                    let started = Instant::now();
                    run();
                    started.elapsed().as_secs_f64()
                })
                .collect(),
        )
    }

    /// `"min_seconds": …, "median_seconds": …, "max_seconds": …` fields.
    fn seconds_fields(&self) -> String {
        format!(
            "\"min_seconds\": {:.6}, \"median_seconds\": {:.6}, \"max_seconds\": {:.6}",
            self.min, self.median, self.max
        )
    }

    /// Throughput fields for `work / seconds` (max time → min rate).
    fn rate_fields(&self, work: f64, unit: &str) -> String {
        format!(
            "\"min_{unit}\": {:.2}, \"median_{unit}\": {:.2}, \"max_{unit}\": {:.2}",
            work / self.max,
            work / self.median,
            work / self.min
        )
    }
}

/// `"seed": …, "sites": …, "objects": …, "sessions": …` — the provenance
/// fields every scenario-derived row carries.
fn scenario_fields(scenario: &Scenario) -> String {
    format!(
        "\"seed\": {}, \"sites\": {}, \"objects\": {}, \"sessions\": {}",
        scenario.spec.seed, scenario.spec.sites, scenario.spec.objects, scenario.spec.sessions
    )
}

/// Host parallelism, recorded in every row so no number is read without
/// knowing the box it came from.
fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// `"cores": …, "transport_backend": "…"` — the provenance pair every
/// BENCH row carries. `backend` is `in-memory` for rows that never touch
/// a socket, otherwise the socket I/O driver the row ran on.
fn provenance(backend: &str) -> String {
    format!(
        "\"cores\": {}, \"transport_backend\": \"{backend}\"",
        cores()
    )
}

/// Runs the scenario's sessions through a one-shard [`ShardedEngine`] on
/// `transport` and returns the outcome fingerprint.
fn sharded_fingerprint<T: WaitTransport + Sync + 'static>(
    specs: &[SessionSpec],
    transport: T,
) -> u64 {
    let mut engine = ShardedEngine::new(vec![transport]).unwrap();
    for spec in specs {
        engine.add_session(spec.clone());
    }
    engine.set_stall_budget(Duration::from_millis(100), 600);
    let run = engine.run().unwrap();
    fingerprint_outcomes(&run.outcomes)
}

fn spawn_party(binary: &std::path::Path, args: &[String], keep_stdout: bool) -> Child {
    Command::new(binary)
        .args(args)
        .stdout(if keep_stdout {
            Stdio::piped()
        } else {
            // Serving parties print their own RESULT/MATRIX lines; nobody
            // reads them here, and an undrained pipe would gag the
            // federation once the OS buffer fills.
            Stdio::null()
        })
        .stderr(Stdio::null())
        .spawn()
        .unwrap_or_else(|e| panic!("cannot spawn {}: {e}", binary.display()))
}

fn drain(child: Child, label: &str) -> String {
    let output = child.wait_with_output().expect("child waited");
    if !output.status.success() {
        let mut text = String::new();
        let _ = (&output.stdout[..]).read_to_string(&mut text);
        panic!("{label} failed ({}): {text}", output.status);
    }
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn sibling(name: &str) -> std::path::PathBuf {
    let mut path = std::env::current_exe().expect("current exe");
    path.set_file_name(name);
    path
}

/// One federation of real `ppc-party` processes over a loopback-TCP
/// router, fed the scenario's generated CSVs, schema and manifest.
/// Returns the wall time and the coordinator's result-stream fingerprint.
fn multi_process_run(
    binary: &std::path::Path,
    scenario: &Scenario,
    csvs: &[std::path::PathBuf],
    manifest: &std::path::Path,
    sealed: bool,
    backend: TransportBackend,
) -> (f64, u64) {
    let (mut router, addr) = TcpRouter::spawn_with_backend("127.0.0.1:0", backend).unwrap();
    let connect = format!("tcp:{addr}");
    let common = |rest: &[&str]| -> Vec<String> {
        let mut args: Vec<String> = rest.iter().map(|s| s.to_string()).collect();
        args.extend([
            "--connect".into(),
            connect.clone(),
            "--seed".into(),
            scenario.spec.seed.to_string(),
            "--schema".into(),
            scenario.schema_cli().to_string(),
            "--transport".into(),
            backend.to_string(),
        ]);
        if !sealed {
            args.push("--insecure".into());
        }
        args
    };
    let started = Instant::now();
    let mut serves = Vec::new();
    for site in 1..scenario.spec.sites {
        serves.push((
            spawn_party(
                binary,
                &common(&[
                    "serve",
                    "--party",
                    &format!("DH{site}"),
                    "--coordinator",
                    "DH0",
                    "--csv",
                    &csvs[site as usize].display().to_string(),
                ]),
                false,
            ),
            format!("serve DH{site}"),
        ));
    }
    serves.push((
        spawn_party(
            binary,
            &common(&["serve", "--party", "TP", "--coordinator", "DH0"]),
            false,
        ),
        "serve TP".to_string(),
    ));
    let remote: Vec<String> = (1..scenario.spec.sites)
        .map(|i| format!("DH{i}"))
        .chain(["TP".to_string()])
        .collect();
    let coordinate = spawn_party(
        binary,
        &common(&[
            "coordinate",
            "--party",
            "DH0",
            "--remote",
            &remote.join(","),
            "--csv",
            &csvs[0].display().to_string(),
            "--clusters",
            "2",
            "--manifest",
            &manifest.display().to_string(),
        ]),
        true,
    );
    let stdout = drain(coordinate, "coordinate");
    let elapsed = started.elapsed().as_secs_f64();
    for (child, label) in serves {
        drain(child, &label);
    }
    router.shutdown();
    (elapsed, fingerprint_process_stdout(&stdout))
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("ERROR: {e}");
            std::process::exit(1);
        }
    };
    let reps = args.reps;
    let mut rows = Vec::new();

    // Axis 1: sites × objects × skew, in-process oracle runs.
    let mut first: Option<(Scenario, u64)> = None;
    for (name, spec) in oracle_specs(args.scale) {
        let scenario = spec.generate().unwrap();
        let sessions = scenario.spec.sessions as f64;
        let mut fingerprint = 0u64;
        let spread = Spread::measure(reps, || {
            let outcomes = scenario.oracle().unwrap();
            fingerprint = fingerprint_outcomes(&outcomes);
        });
        rows.push(format!(
            "    {{\"id\": \"scenario/oracle/{name}\", {}, {}, {}, {}, \
             \"fingerprint\": \"{fingerprint:016x}\"}}",
            provenance("in-memory"),
            scenario_fields(&scenario),
            spread.seconds_fields(),
            spread.rate_fields(sessions, "sessions_per_second"),
        ));
        if first.is_none() {
            first = Some((scenario, fingerprint));
        }
    }
    let (reference, oracle_fp) = first.expect("at least one oracle scenario");
    let specs = reference.session_specs().unwrap();
    let sessions = reference.spec.sessions as f64;

    // Axis 2: channel security × socket backend over a loopback-TCP frame
    // router, identity to the oracle asserted on every rep. The blocking
    // backend is the behavioral oracle for the reactor: same wire format,
    // same replay/resume machinery, different I/O driver — the fingerprint
    // assert holds both to the in-process truth.
    for backend in [TransportBackend::Blocking, TransportBackend::Reactor] {
        let mut plaintext_median = 0.0;
        for sealed in [false, true] {
            let spread = Spread::measure(reps, || {
                let (mut router, addr) =
                    TcpRouter::spawn_with_backend("127.0.0.1:0", backend).unwrap();
                let mut transport = TcpTransport::new_with_backend(reference.parties(), backend);
                if sealed {
                    transport.set_security(ChannelKeyring::from_master(&reference.master));
                }
                transport.connect(addr, &Backoff::default()).unwrap();
                let fingerprint = sharded_fingerprint(&specs, transport);
                assert_eq!(fingerprint, oracle_fp, "TCP run diverged from the oracle");
                router.shutdown();
            });
            let overhead = if sealed {
                format!(
                    ", \"overhead_vs_plaintext_percent\": {:.1}",
                    (spread.median / plaintext_median - 1.0) * 100.0
                )
            } else {
                plaintext_median = spread.median;
                String::new()
            };
            rows.push(format!(
                "    {{\"id\": \"scenario/sharded_tcp/{backend}/{}\", {}, {}, {}, {}, \
                 \"bit_identical_to_oracle\": true{overhead}}}",
                if sealed { "sealed" } else { "plaintext" },
                provenance(backend.as_str()),
                scenario_fields(&reference),
                spread.seconds_fields(),
                spread.rate_fields(sessions, "sessions_per_second"),
            ));
        }
    }

    // Axis 3: loss/latency under the simulated-WAN cost model. Loss here
    // is virtual-cost accounting (delivery is unchanged), so the rows
    // record the wire costs a real deployment would pay next to the
    // unchanged results.
    for (profile_name, profile, wan_seed) in [
        ("wan", WanProfile::wan(), 21u64),
        ("lossy_dsl", WanProfile::lossy_dsl(), 23u64),
    ] {
        let mut stats = None;
        let spread = Spread::measure(reps, || {
            let transport = SimulatedWan::new(
                Network::with_parties(reference.spec.sites),
                profile,
                wan_seed,
            )
            .unwrap();
            let wan = transport.clone();
            let fingerprint = sharded_fingerprint(&specs, transport);
            assert_eq!(fingerprint, oracle_fp, "WAN run diverged from the oracle");
            stats = Some(wan.stats());
        });
        let stats = stats.expect("at least one rep ran");
        rows.push(format!(
            "    {{\"id\": \"scenario/wan/{profile_name}\", {}, {}, {}, \
             \"virtual_wire_seconds\": {:.3}, \"bytes_on_wire\": {}, \
             \"retransmissions\": {}, \"bit_identical_to_oracle\": true}}",
            provenance("in-memory"),
            scenario_fields(&reference),
            spread.seconds_fields(),
            stats.virtual_seconds,
            stats.bytes_on_wire,
            stats.retransmissions(),
        ));
    }

    // Axis 4: real OS processes fed the generated artefacts, plaintext vs
    // sealed on each socket backend (`--transport` end to end: every
    // party process and the router). All four flavors must produce
    // fingerprint-identical result streams — sealing is transparent to
    // the protocol and the backends are wire-identical.
    let binary = sibling("ppc-party");
    if binary.exists() {
        let scenario = process_spec(args.scale).generate().unwrap();
        let proc_sessions = scenario.spec.sessions as f64;
        let dir = std::env::temp_dir().join(format!("ppc-scenario-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csvs = scenario.write_csvs(&dir).unwrap();
        let manifest = dir.join("manifest.txt");
        std::fs::write(&manifest, scenario.manifest_text()).unwrap();

        let mut reference_stats: Option<(f64, u64)> = None;
        for backend in [TransportBackend::Blocking, TransportBackend::Reactor] {
            for sealed in [false, true] {
                let mut fingerprint = 0u64;
                let spread = Spread::of(
                    (0..reps)
                        .map(|_| {
                            let (elapsed, fp) = multi_process_run(
                                &binary, &scenario, &csvs, &manifest, sealed, backend,
                            );
                            fingerprint = fp;
                            elapsed
                        })
                        .collect(),
                );
                let extra = match reference_stats {
                    Some((median, plain_fp)) => {
                        assert_eq!(
                            fingerprint, plain_fp,
                            "federation flavors diverged (sealed={sealed}, backend={backend})"
                        );
                        format!(
                            ", \"overhead_vs_blocking_plaintext_percent\": {:.1}, \
                             \"fingerprint_equals_blocking_plaintext\": true",
                            (spread.median / median - 1.0) * 100.0
                        )
                    }
                    None => {
                        reference_stats = Some((spread.median, fingerprint));
                        String::new()
                    }
                };
                rows.push(format!(
                    "    {{\"id\": \"scenario/multi_process/{backend}/{}\", {}, {}, {}, {}, \
                     \"fingerprint\": \"{fingerprint:016x}\"{extra}, \
                     \"note\": \"includes process spawn + control-plane handshake\"}}",
                    if sealed { "sealed" } else { "plaintext" },
                    provenance(backend.as_str()),
                    scenario_fields(&scenario),
                    spread.seconds_fields(),
                    spread.rate_fields(proc_sessions, "sessions_per_second"),
                ));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    } else {
        rows.push(format!(
            "    {{\"id\": \"scenario/multi_process\", \"skipped\": \
             \"{} not built; run cargo build --release -p ppc-party first\"}}",
            binary.display()
        ));
    }

    // Axis 5: link scaling — a 64-link ring through one in-process router
    // per backend, the workload the reactor exists for. Each rep connects
    // 64 single-party transports, pushes PASSES full ring rotations
    // (64 envelopes each) and tears down; the blocking backend pays ~2
    // threads per link for the same bytes.
    for backend in [TransportBackend::Blocking, TransportBackend::Reactor] {
        const LINKS: usize = 64;
        const PASSES: usize = 4;
        let spread = Spread::measure(reps, || {
            let (mut router, addr) = TcpRouter::spawn_with_backend("127.0.0.1:0", backend).unwrap();
            let transports: Vec<TcpTransport> = (0..LINKS)
                .map(|i| {
                    let t =
                        TcpTransport::new_with_backend([PartyId::DataHolder(i as u32)], backend);
                    t.connect(addr, &Backoff::default()).unwrap();
                    t
                })
                .collect();
            for pass in 0..PASSES {
                for (i, t) in transports.iter().enumerate() {
                    t.send(Envelope::new(
                        PartyId::DataHolder(i as u32),
                        PartyId::DataHolder(((i + 1) % LINKS) as u32),
                        "bench/ring",
                        vec![pass as u8; 64],
                    ))
                    .unwrap();
                    t.flush().unwrap();
                }
                for (i, t) in transports.iter().enumerate() {
                    let me = PartyId::DataHolder(i as u32);
                    t.receive_any_of(&[me], Duration::from_secs(30))
                        .unwrap()
                        .expect("ring envelope arrives");
                }
            }
            for t in &transports {
                t.shutdown();
            }
            router.shutdown();
        });
        rows.push(format!(
            "    {{\"id\": \"stress/ring_64_links/{backend}\", {}, \"links\": {LINKS}, \
             \"passes\": {PASSES}, \"messages\": {}, {}, {}, {}}}",
            provenance(backend.as_str()),
            LINKS * PASSES,
            spread.seconds_fields(),
            spread.rate_fields((LINKS * PASSES) as f64, "messages_per_second"),
            spread.rate_fields(PASSES as f64, "sessions_per_second"),
        ));
    }

    let cores = cores();
    let json = format!(
        "{{\n  \"pr\": 9,\n  \"title\": \"Socket transports on two I/O backends: blocking \
         thread-per-link oracle vs shared non-blocking reactor, across channel-security, WAN, \
         deployment and link-scaling axes\",\n  \
         \"harness\": \"secure_report binary; every row derives from a seeded ScenarioSpec and \
         records the seed (same seed => byte-identical scenario) plus the cores and \
         transport_backend it ran on; timed rows record min/median/max of {reps} runs (noisy \
         single-core boxes); TCP rows on both backends assert f64-bit identity to the \
         in-process oracle on every rep; multi-process rows spawn real ppc-party OS processes \
         on the generated CSVs + manifest with --transport end to end and assert all four \
         sealed/plaintext x blocking/reactor result streams are fingerprint-identical; the \
         64-link ring rows are the thread-scaling workload (see \
         crates/net/tests/many_links.rs for the O(1)-vs-O(links) thread assert)\",\n  \
         \"scale\": \"{}\",\n  \"cores\": {cores},\n  \"results\": [\n{}\n  ]\n}}\n",
        args.scale.name(),
        rows.join(",\n")
    );
    std::fs::write(&args.out, &json).unwrap();
    println!("{json}");
    println!("wrote {}", args.out);
}
