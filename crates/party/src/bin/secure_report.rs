//! Generates `BENCH_pr7.json`: the PR-7 compute-path work measured next
//! to the PR-6 channel-security rows.
//!
//! * sessions/s of the same workload over loopback TCP with plaintext,
//!   sealed-per-envelope and sealed+**adaptively** coalesced frames,
//!   single-process (sharded engine through a frame router) and
//!   three-process (real `ppc-party` OS processes) — each engine row now
//!   carries its compute-phase breakdown (derivation / fold-unmask /
//!   merge wall time) and the derivation-cache hit rate;
//! * the derivation cache on and off over the single-threaded engine —
//!   same sessions, byte-identical outputs, cache-hit throughput gain;
//! * the chunked row kernels against their retained scalar oracles
//!   (mask, fold, unmask whole paths, derivation included);
//! * parallel vs sequential `MergeAccumulator::push_normalized` on a
//!   large condensed matrix, bit-identity asserted inline;
//! * raw seal+open throughput of the vendored ChaCha20-Poly1305, scalar
//!   oracle vs the vectorized path.
//!
//! Every timed row records **min/median/max** of its repetitions: the
//! single-core CI boxes this runs on are noisy (±20% between identical
//! runs is common), and a lone median overclaims.
//!
//! ```text
//! cargo build --release -p ppc-party
//! cargo run --release -p ppc-party --bin secure_report [output.json]
//! ```

use std::io::Read;
use std::process::{Child, Command, Stdio};
use std::time::Instant;

use ppc_cluster::{CondensedDistanceMatrix, Linkage, MergeAccumulator};
use ppc_core::csv::to_csv;
use ppc_core::protocol::derive_cache::DerivationCacheStats;
use ppc_core::protocol::driver::ClusteringRequest;
use ppc_core::protocol::engine::{SessionEngine, SessionSpec};
use ppc_core::protocol::machines::ComputeStats;
use ppc_core::protocol::numeric;
use ppc_core::protocol::party::TrustedSetup;
use ppc_core::protocol::sharded::ShardedEngine;
use ppc_core::protocol::ProtocolConfig;
use ppc_crypto::{
    negators_from_raw, raw_u64_prefix, ChaCha20Poly1305, PairwiseSeeds, RngAlgorithm, Seed,
};
use ppc_data::Workload;
use ppc_net::{Backoff, ChannelKeyring, Network, PartyId, SealingReport, TcpRouter, TcpTransport};

const OBJECTS: usize = 32;
const SITES: u32 = 2;
const CLUSTERS: usize = 3;
const SESSIONS: usize = 6;
const WINDOW: usize = 4;
const SEED: u64 = 77;
const REPS: usize = 5;
const SCHEMA_FLAG: &str = "dna:alphanumeric:dna,age:numeric,outcome:categorical";

fn spec(seed: u64) -> SessionSpec {
    let workload = Workload::bird_flu(OBJECTS, SITES, CLUSTERS, seed).unwrap();
    let schema = workload.schema().clone();
    let setup =
        TrustedSetup::deterministic(workload.partitions.clone(), &Seed::from_u64(SEED)).unwrap();
    SessionSpec {
        schema: schema.clone(),
        config: ProtocolConfig::default(),
        holders: setup.holders,
        keys: setup.third_party,
        request: ClusteringRequest {
            weights: schema.uniform_weights(),
            linkage: Linkage::Average,
            num_clusters: CLUSTERS,
        },
        chunk_rows: Some(WINDOW),
    }
}

/// min / median / max of a sample set (seconds).
#[derive(Clone, Copy)]
struct Spread {
    min: f64,
    median: f64,
    max: f64,
}

impl Spread {
    fn of(mut samples: Vec<f64>) -> Spread {
        samples.sort_by(f64::total_cmp);
        Spread {
            min: samples[0],
            median: samples[samples.len() / 2],
            max: samples[samples.len() - 1],
        }
    }

    fn measure(mut run: impl FnMut()) -> Spread {
        Spread::of(
            (0..REPS)
                .map(|_| {
                    let started = Instant::now();
                    run();
                    started.elapsed().as_secs_f64()
                })
                .collect(),
        )
    }

    /// `"min_seconds": …, "median_seconds": …, "max_seconds": …` fields.
    fn seconds_fields(&self) -> String {
        format!(
            "\"min_seconds\": {:.6}, \"median_seconds\": {:.6}, \"max_seconds\": {:.6}",
            self.min, self.median, self.max
        )
    }

    /// Throughput fields for `work / seconds` (max time → min rate).
    fn rate_fields(&self, work: f64, unit: &str) -> String {
        format!(
            "\"min_{unit}\": {:.2}, \"median_{unit}\": {:.2}, \"max_{unit}\": {:.2}",
            work / self.max,
            work / self.median,
            work / self.min
        )
    }
}

/// `"derive_seconds": …, "fold_unmask_seconds": …, "merge_seconds": …`
/// fields of one run's compute-phase breakdown, plus the cache hit rate
/// when a derivation cache was live.
fn compute_fields(compute: &ComputeStats, cache: Option<&DerivationCacheStats>) -> String {
    let mut fields = format!(
        "\"derive_seconds\": {:.6}, \"fold_unmask_seconds\": {:.6}, \"merge_seconds\": {:.6}",
        compute.derive_nanos as f64 / 1e9,
        compute.fold_unmask_nanos as f64 / 1e9,
        compute.merge_nanos as f64 / 1e9,
    );
    if let Some(stats) = cache {
        fields.push_str(&format!(
            ", \"cache_hit_rate\": {:.3}, \"cache_hits\": {}, \"cache_misses\": {}",
            stats.hit_rate(),
            stats.hits,
            stats.misses
        ));
    }
    fields
}

/// Sums the compute-phase breakdown over a run's per-session outcomes.
fn sum_compute(outcomes: &[ppc_core::protocol::engine::EngineOutcome]) -> ComputeStats {
    let mut total = ComputeStats::default();
    for outcome in outcomes {
        total.absorb(&outcome.stats.compute);
    }
    total
}

/// One single-process sharded run over a loopback-TCP router: plaintext,
/// sealed one-record-per-envelope, or sealed+coalesced. Returns the
/// transport's sealing report (`None` on plaintext) plus the run's
/// compute-phase breakdown and derivation-cache counters.
fn sharded_tcp_run(
    specs: &[SessionSpec],
    sealed: bool,
    coalesce: bool,
) -> (
    Option<SealingReport>,
    ComputeStats,
    Option<DerivationCacheStats>,
) {
    let (mut router, addr) = TcpRouter::spawn("127.0.0.1:0").unwrap();
    let parties: Vec<PartyId> = (0..SITES)
        .map(PartyId::DataHolder)
        .chain([PartyId::ThirdParty])
        .collect();
    let mut transport = TcpTransport::new(parties);
    if sealed {
        transport.set_security(ChannelKeyring::from_master(&Seed::from_u64(SEED)));
        transport.set_coalescing(coalesce);
    }
    transport.connect(addr, &Backoff::default()).unwrap();
    let mut engine = ShardedEngine::new(vec![transport]).unwrap();
    for s in specs {
        engine.add_session(s.clone());
    }
    engine.set_stall_budget(std::time::Duration::from_millis(100), 100);
    let run = engine.run().unwrap();
    assert_eq!(run.outcomes.len(), SESSIONS);
    let compute = sum_compute(&run.outcomes);
    let cache = engine.derivation_cache_stats();
    let mut sealing = None;
    for t in engine.transports() {
        if let Some(report) = t.sealing_report() {
            sealing
                .get_or_insert_with(SealingReport::default)
                .merge(&report);
        }
        t.shutdown();
    }
    router.shutdown();
    (sealing, compute, cache)
}

fn sibling(name: &str) -> std::path::PathBuf {
    let mut path = std::env::current_exe().expect("current exe");
    path.set_file_name(name);
    path
}

fn spawn_party(binary: &std::path::Path, args: &[String]) -> Child {
    Command::new(binary)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap_or_else(|e| panic!("cannot spawn {}: {e}", binary.display()))
}

fn drain(child: Child, label: &str) {
    let output = child.wait_with_output().expect("child waited");
    if !output.status.success() {
        let mut text = String::new();
        let _ = (&output.stdout[..]).read_to_string(&mut text);
        panic!("{label} failed ({}): {text}", output.status);
    }
}

/// Channel flavor of a three-process run.
#[derive(Clone, Copy, PartialEq)]
enum Flavor {
    Plaintext,
    SealedUncoalesced,
    SealedCoalesced,
}

impl Flavor {
    fn id(self) -> &'static str {
        match self {
            Flavor::Plaintext => "plaintext",
            Flavor::SealedUncoalesced => "sealed_uncoalesced",
            Flavor::SealedCoalesced => "sealed_coalesced",
        }
    }

    fn extra_flag(self) -> Option<&'static str> {
        match self {
            Flavor::Plaintext => Some("--insecure"),
            Flavor::SealedUncoalesced => Some("--no-coalesce"),
            Flavor::SealedCoalesced => None, // the ppc-party default
        }
    }
}

/// One three-process federation run over loopback TCP.
fn three_process_run(binary: &std::path::Path, csv_dir: &std::path::Path, flavor: Flavor) -> f64 {
    let (mut router, addr) = TcpRouter::spawn("127.0.0.1:0").unwrap();
    let connect = format!("tcp:{addr}");
    let common = |rest: &[&str]| -> Vec<String> {
        let mut args: Vec<String> = rest.iter().map(|s| s.to_string()).collect();
        args.extend([
            "--connect".into(),
            connect.clone(),
            "--seed".into(),
            SEED.to_string(),
            "--schema".into(),
            SCHEMA_FLAG.into(),
        ]);
        if let Some(flag) = flavor.extra_flag() {
            args.push(flag.into());
        }
        args
    };
    let csv = |site: u32| {
        csv_dir
            .join(format!("site{site}.csv"))
            .display()
            .to_string()
    };
    let started = Instant::now();
    let serve_dh1 = spawn_party(
        binary,
        &common(&[
            "serve",
            "--party",
            "DH1",
            "--coordinator",
            "DH0",
            "--csv",
            &csv(1),
        ]),
    );
    let serve_tp = spawn_party(
        binary,
        &common(&["serve", "--party", "TP", "--coordinator", "DH0"]),
    );
    let coordinate = spawn_party(
        binary,
        &common(&[
            "coordinate",
            "--party",
            "DH0",
            "--remote",
            "DH1,TP",
            "--csv",
            &csv(0),
            "--sessions",
            &SESSIONS.to_string(),
            "--clusters",
            &CLUSTERS.to_string(),
            "--chunk-rows",
            &WINDOW.to_string(),
        ]),
    );
    drain(coordinate, "coordinate");
    let elapsed = started.elapsed().as_secs_f64();
    drain(serve_dh1, "serve DH1");
    drain(serve_tp, "serve TP");
    router.shutdown();
    elapsed
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr7.json".to_string());
    let mut rows = Vec::new();

    // Raw AEAD throughput, 1 MiB frames: the retained scalar oracle vs the
    // shipping vectorized path, measured on the same machine in the same
    // process.
    let mut scalar_median_mbs = 0.0;
    for scalar in [true, false] {
        let cipher = ChaCha20Poly1305::from_seed(&Seed::from_u64(1));
        let plaintext = vec![0xA5u8; 1 << 20];
        let mut nonce = [0u8; 12];
        let frames = if scalar { 4u64 } else { 16u64 };
        let spread = Spread::measure(|| {
            for i in 0..frames {
                nonce[0..8].copy_from_slice(&i.to_le_bytes());
                let (sealed, opened) = if scalar {
                    let sealed = cipher.seal_scalar(&nonce, b"bench", &plaintext);
                    let opened = cipher.open_scalar(&nonce, b"bench", &sealed).unwrap();
                    (sealed, opened)
                } else {
                    let sealed = cipher.seal(&nonce, b"bench", &plaintext);
                    let opened = cipher.open(&nonce, b"bench", &sealed).unwrap();
                    (sealed, opened)
                };
                assert_eq!(sealed.len(), plaintext.len() + 16);
                assert_eq!(opened.len(), plaintext.len());
            }
        });
        let mb = frames as f64;
        if scalar {
            scalar_median_mbs = mb / spread.median;
        }
        let speedup = if scalar {
            String::new()
        } else {
            format!(
                ", \"speedup_vs_scalar\": {:.2}",
                (mb / spread.median) / scalar_median_mbs
            )
        };
        rows.push(format!(
            "    {{\"id\": \"aead/seal_open_roundtrip/{}\", \"mb_per_rep\": {mb:.0}, {}, \
             {}{speedup}}}",
            if scalar { "scalar" } else { "vectorized" },
            spread.seconds_fields(),
            spread.rate_fields(mb, "mb_per_second"),
        ));
    }

    let specs: Vec<SessionSpec> = (0..SESSIONS).map(|i| spec(900 + i as u64)).collect();
    let mut plaintext_median = 0.0;
    let mut sealing_table = None;
    for (id, sealed, coalesce) in [
        ("plaintext", false, false),
        ("sealed_uncoalesced", true, false),
        ("sealed_coalesced", true, true),
    ] {
        let mut last_compute = ComputeStats::default();
        let mut last_cache = None;
        let spread = Spread::measure(|| {
            let (report, compute, cache) = sharded_tcp_run(&specs, sealed, coalesce);
            last_compute = compute;
            last_cache = cache;
            if coalesce {
                if let Some(report) = report {
                    sealing_table = Some(report);
                }
            }
        });
        if !sealed {
            plaintext_median = spread.median;
        }
        let overhead = if sealed {
            format!(
                ", \"overhead_vs_plaintext_percent\": {:.1}",
                (spread.median / plaintext_median - 1.0) * 100.0
            )
        } else {
            String::new()
        };
        rows.push(format!(
            "    {{\"id\": \"single_process/loopback_tcp/{id}\", \"sessions\": {SESSIONS}, {}, \
             {}, {}{overhead}}}",
            spread.seconds_fields(),
            spread.rate_fields(SESSIONS as f64, "sessions_per_second"),
            compute_fields(&last_compute, last_cache.as_ref()),
        ));
    }
    if let Some(report) = &sealing_table {
        let t = report.total();
        println!(
            "sealing stats of one coalesced run: {} envelopes in {} records \
             ({:.2} frames/record), {} plaintext bytes -> {} sealed bytes",
            t.frames_sealed,
            t.records_sealed,
            t.frames_per_record(),
            t.plaintext_bytes,
            t.sealed_bytes
        );
        print!("{}", report.to_table());
    }

    // The cache gain isolated: deriving the same 8 long stream prefixes
    // for 8 same-schema sessions, fresh every time vs through one shared
    // [`DerivationCache`] (1 miss + 7 hits per stream). This is the
    // per-prefix work the cache removes; in the full engine rows below the
    // derivation share of this small workload is <1%, so the end-to-end
    // delta sits inside run-to-run noise there.
    {
        use ppc_core::protocol::derive_cache::DerivationCache;
        const PREFIX_LEN: usize = 1 << 16;
        const STREAMS: usize = 8;
        const CACHE_SESSIONS: usize = 8;
        let algorithm = RngAlgorithm::ChaCha20;
        let seeds: Vec<Seed> = (0..STREAMS)
            .map(|i| Seed::from_u64(SEED).derive(&format!("bench/prefix/{i}")))
            .collect();
        let total_u64s = (PREFIX_LEN * STREAMS * CACHE_SESSIONS) as f64;
        let fresh = Spread::measure(|| {
            for _ in 0..CACHE_SESSIONS {
                for seed in &seeds {
                    std::hint::black_box(raw_u64_prefix(algorithm, seed, PREFIX_LEN));
                }
            }
        });
        let mut hit_rate = 0.0;
        let cached = Spread::measure(|| {
            let cache = DerivationCache::new();
            for _ in 0..CACHE_SESSIONS {
                for seed in &seeds {
                    std::hint::black_box(cache.raw_prefix(algorithm, seed, PREFIX_LEN));
                }
            }
            hit_rate = cache.stats().hit_rate();
        });
        rows.push(format!(
            "    {{\"id\": \"derivation/raw_prefix/{STREAMS}x{PREFIX_LEN}x{CACHE_SESSIONS}\", \
             \"fresh_median_seconds\": {:.6}, \"cached_median_seconds\": {:.6}, \
             \"cache_hit_rate\": {hit_rate:.3}, \"speedup_vs_fresh\": {:.2}, \
             \"fresh_mu64_per_second\": {:.1}, \"cached_mu64_per_second\": {:.1}}}",
            fresh.median,
            cached.median,
            fresh.median / cached.median,
            total_u64s / fresh.median / 1e6,
            total_u64s / cached.median / 1e6,
        ));
    }

    // The derivation cache on vs off: the same sessions over the
    // single-threaded in-memory engine, so the delta is pure compute (no
    // sockets, no sealing). All sessions share one master seed, hence one
    // set of derived per-attribute seeds — the cross-session sharing the
    // cache exists for. Bit-identity of the merged matrices is asserted
    // inline; the engine's own tests property-test it.
    {
        let mut uncached_median = 0.0;
        let mut uncached_bits: Vec<u64> = Vec::new();
        for cached in [false, true] {
            let mut last_compute = ComputeStats::default();
            let mut last_cache = None;
            let mut last_bits: Vec<u64> = Vec::new();
            let spread = Spread::measure(|| {
                let mut engine = SessionEngine::new(Network::with_parties(SITES));
                if !cached {
                    engine.set_derivation_cache(None);
                }
                for s in &specs {
                    engine.add_session(s.clone());
                }
                let outcomes = engine.run().unwrap();
                last_compute = sum_compute(&outcomes);
                last_cache = engine.derivation_cache_stats();
                last_bits = outcomes
                    .iter()
                    .flat_map(|o| o.final_matrix.matrix().condensed_values())
                    .map(|v| v.to_bits())
                    .collect();
            });
            let speedup = if cached {
                assert_eq!(
                    last_bits, uncached_bits,
                    "the derivation cache changed a merged matrix"
                );
                format!(
                    ", \"speedup_vs_uncached\": {:.2}, \"bit_identical_to_uncached\": true",
                    uncached_median / spread.median
                )
            } else {
                uncached_median = spread.median;
                uncached_bits = last_bits.clone();
                String::new()
            };
            rows.push(format!(
                "    {{\"id\": \"engine/derivation_cache/{}\", \"sessions\": {SESSIONS}, {}, \
                 {}, {}{speedup}}}",
                if cached { "cached" } else { "uncached" },
                spread.seconds_fields(),
                spread.rate_fields(SESSIONS as f64, "sessions_per_second"),
                compute_fields(&last_compute, last_cache.as_ref()),
            ));
        }
    }

    // The chunked row kernels against their retained scalar oracles, whole
    // paths: the vectorized side includes its prefix derivation (that is
    // what the machines actually run), the scalar side draws from the
    // streams cell by cell as the pre-PR-7 code did.
    {
        const ROWS: usize = 64;
        const COLS: usize = 4096;
        let algorithm = RngAlgorithm::ChaCha20;
        let master = Seed::from_u64(SEED);
        let seeds = PairwiseSeeds {
            holder_holder: master.derive("bench/jk"),
            holder_third_party: master.derive("bench/jt"),
        };
        let values: Vec<i64> = (0..COLS as i64).map(|i| (i * 37) % 1009 - 500).collect();
        let own: Vec<i64> = (0..ROWS as i64).map(|i| (i * 53) % 997 - 400).collect();

        let scalar_mask = Spread::measure(|| {
            std::hint::black_box(numeric::initiator_mask_scalar(&values, &seeds, algorithm));
        });
        let kernel_mask = Spread::measure(|| {
            let raw_jk = raw_u64_prefix(algorithm, &seeds.holder_holder, COLS);
            let raw_jt = raw_u64_prefix(algorithm, &seeds.holder_third_party, COLS);
            std::hint::black_box(numeric::initiator_mask_with_prefixes(
                &values, &raw_jk, &raw_jt,
            ));
        });
        rows.push(format!(
            "    {{\"id\": \"kernels/initiator_mask/{COLS}\", \"scalar_median_seconds\": {:.6}, \
             \"vectorized_median_seconds\": {:.6}, \"speedup_vs_scalar\": {:.2}}}",
            scalar_mask.median,
            kernel_mask.median,
            scalar_mask.median / kernel_mask.median
        ));

        let masked = {
            let raw_jk = raw_u64_prefix(algorithm, &seeds.holder_holder, COLS);
            let raw_jt = raw_u64_prefix(algorithm, &seeds.holder_third_party, COLS);
            numeric::initiator_mask_with_prefixes(&values, &raw_jk, &raw_jt)
        };
        let negators = negators_from_raw(&raw_u64_prefix(algorithm, &seeds.holder_holder, COLS));
        let scalar_fold = Spread::measure(|| {
            std::hint::black_box(numeric::responder_fold_window_scalar(
                &masked, &own, &negators,
            ));
        });
        let kernel_fold = Spread::measure(|| {
            std::hint::black_box(numeric::responder_fold_window(&masked, &own, &negators));
        });
        rows.push(format!(
            "    {{\"id\": \"kernels/responder_fold/{ROWS}x{COLS}\", \
             \"scalar_median_seconds\": {:.6}, \"vectorized_median_seconds\": {:.6}, \
             \"speedup_vs_scalar\": {:.2}}}",
            scalar_fold.median,
            kernel_fold.median,
            scalar_fold.median / kernel_fold.median
        ));

        let folded = numeric::responder_fold_window(&masked, &own, &negators);
        let masks = numeric::third_party_mask_prefix(COLS, &seeds.holder_third_party, algorithm);
        let scalar_unmask = Spread::measure(|| {
            std::hint::black_box(numeric::third_party_unmask_window_scalar(&folded, &masks));
        });
        let kernel_unmask = Spread::measure(|| {
            std::hint::black_box(numeric::third_party_unmask_window(&folded, &masks));
        });
        rows.push(format!(
            "    {{\"id\": \"kernels/third_party_unmask/{ROWS}x{COLS}\", \
             \"scalar_median_seconds\": {:.6}, \"vectorized_median_seconds\": {:.6}, \
             \"speedup_vs_scalar\": {:.2}}}",
            scalar_unmask.median,
            kernel_unmask.median,
            scalar_unmask.median / kernel_unmask.median
        ));
    }

    // Parallel vs sequential TP merge on a condensed matrix big enough to
    // clear the sequential-fallback threshold (n=2048 -> ~2.1M entries).
    // Bit-identity is asserted inline for every thread count benched.
    {
        const N: usize = 2048;
        const ATTRS: usize = 3;
        let matrices: Vec<CondensedDistanceMatrix> = (0..ATTRS as u64)
            .map(|a| {
                let mut state = 0x9E37_79B9_7F4A_7C15u64.wrapping_add(a);
                CondensedDistanceMatrix::from_fn(N, |_, _| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state >> 11) as f64 / (1u64 << 53) as f64 * 1000.0
                })
            })
            .collect();
        let weights = [0.5, 0.25, 0.25];
        let merge = |threads: Option<usize>| -> MergeAccumulator {
            let mut acc = MergeAccumulator::new(N);
            for (matrix, &weight) in matrices.iter().zip(&weights) {
                match threads {
                    Some(t) => acc.push_normalized_parallel(matrix, weight, t).unwrap(),
                    None => acc.push_normalized(matrix, weight).unwrap(),
                }
            }
            acc
        };
        let sequential_bits: Vec<u64> = merge(None)
            .finish()
            .condensed_values()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let sequential = Spread::measure(|| {
            std::hint::black_box(merge(None));
        });
        rows.push(format!(
            "    {{\"id\": \"merge/push_normalized/n{N}/sequential\", \"attributes\": {ATTRS}, \
             {}}}",
            sequential.seconds_fields(),
        ));
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        for t in [2usize, threads] {
            let identical = merge(Some(t))
                .finish()
                .condensed_values()
                .iter()
                .zip(&sequential_bits)
                .all(|(v, &bits)| v.to_bits() == bits);
            assert!(identical, "parallel merge diverged at {t} threads");
            let parallel = Spread::measure(|| {
                std::hint::black_box(merge(Some(t)));
            });
            let note = if threads == 1 {
                ", \"note\": \"1-core box: the workers time-slice one core, so this row only \
                 proves bit-identity and bounded overhead; re-measure on multi-core hardware\""
            } else {
                ""
            };
            rows.push(format!(
                "    {{\"id\": \"merge/push_normalized/n{N}/parallel_t{t}\", \
                 \"attributes\": {ATTRS}, {}, \"speedup_vs_sequential\": {:.2}, \
                 \"bit_identical_to_sequential\": true{note}}}",
                parallel.seconds_fields(),
                sequential.median / parallel.median
            ));
            if t >= threads {
                break;
            }
        }
    }

    let binary = sibling("ppc-party");
    if binary.exists() {
        let csv_dir = std::env::temp_dir().join(format!("ppc-secure-bench-{}", std::process::id()));
        std::fs::create_dir_all(&csv_dir).unwrap();
        let workload = Workload::bird_flu(OBJECTS, SITES, CLUSTERS, 900).unwrap();
        for partition in &workload.partitions {
            std::fs::write(
                csv_dir.join(format!("site{}.csv", partition.site())),
                to_csv(partition.matrix()),
            )
            .unwrap();
        }
        let mut three_plaintext_median = 0.0;
        for flavor in [
            Flavor::Plaintext,
            Flavor::SealedUncoalesced,
            Flavor::SealedCoalesced,
        ] {
            let spread = Spread::of(
                (0..REPS)
                    .map(|_| three_process_run(&binary, &csv_dir, flavor))
                    .collect(),
            );
            if flavor == Flavor::Plaintext {
                three_plaintext_median = spread.median;
            }
            let overhead = if flavor == Flavor::Plaintext {
                String::new()
            } else {
                format!(
                    ", \"overhead_vs_plaintext_percent\": {:.1}",
                    (spread.median / three_plaintext_median - 1.0) * 100.0
                )
            };
            rows.push(format!(
                "    {{\"id\": \"three_process/loopback_tcp/{}\", \"sessions\": {SESSIONS}, {}, \
                 {}{overhead}, \"note\": \"includes process spawn + control-plane handshake\"}}",
                flavor.id(),
                spread.seconds_fields(),
                spread.rate_fields(SESSIONS as f64, "sessions_per_second"),
            ));
        }
        let _ = std::fs::remove_dir_all(&csv_dir);
    } else {
        rows.push(format!(
            "    {{\"id\": \"three_process/loopback_tcp\", \"skipped\": \
             \"{} not built; run cargo build --release -p ppc-party first\"}}",
            binary.display()
        ));
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"pr\": 7,\n  \"title\": \"Compute-path hot loops: derivation cache, chunked row \
         kernels, parallel TP merge, adaptive coalescing\",\n  \"workload\": \"bird_flu \
         {OBJECTS} objects, {SITES} sites, 3 attributes (dna + numeric + categorical), average \
         linkage, k={CLUSTERS}, chunk window {WINDOW}, {SESSIONS} sessions\",\n  \"harness\": \
         \"secure_report binary; every timed row records min/median/max of {REPS} runs (noisy \
         single-core boxes); engine rows carry their compute-phase breakdown (derive / \
         fold-unmask / merge wall time) and derivation-cache hit rate; sealed rows run \
         ChaCha20-Poly1305 end-to-end, coalesced rows batch each link's queued envelopes into \
         one AEAD record per flush with the per-link adaptive bypass live; kernel and merge \
         rows assert bit-identity to their scalar/sequential oracles inline; three-process \
         rows spawn real ppc-party OS processes against an in-harness TCP router\",\n  \
         \"cores\": {cores},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out_path, &json).unwrap();
    println!("{json}");
    println!("wrote {out_path}");
}
