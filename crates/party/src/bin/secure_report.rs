//! Generates `BENCH_pr10.json`: the scenario factory as the bench
//! surface, measured on both socket I/O backends and both delivery
//! strategies (the PR-10 sharded lock-free inbox vs the retained mutex
//! oracle).
//!
//! Every row is derived from a seeded [`ScenarioSpec`] and records its
//! seed, so any number can be reproduced bit-for-bit by regenerating the
//! same scenario; every row also records the host's `cores`, the
//! `transport_backend` it ran on (`in-memory` for rows that never touch a
//! socket, otherwise `blocking` — one reader thread per link — or
//! `reactor` — all sockets on one process-global event loop), the
//! `delivery` strategy and whether threads were `pinned`. The axes:
//!
//! * **sites × objects × skew** — three oracle rows run the in-process
//!   session engine over generated workloads (uniform 4-site, zipf
//!   8-site, one-dominant-site 5-site), each with the factory's
//!   per-session manifest diversity (linkage, weights, chunk windows,
//!   numeric modes);
//! * **channel security × backend** — the same scenario through a
//!   loopback-TCP frame router, plaintext vs sealed (ChaCha20-Poly1305
//!   end-to-end) on each socket backend, byte-identity to the oracle
//!   asserted on every rep;
//! * **loss/latency** — the scenario under the [`SimulatedWan`] cost
//!   model (clean WAN and lossy DSL), virtual wire costs recorded next to
//!   the wall time;
//! * **deployment × backend** — a multi-process federation: real
//!   `ppc-party` OS processes fed the *generated* CSVs, `--schema` string
//!   and `--manifest` file, plaintext vs sealed on each `--transport`,
//!   every flavor's result stream fingerprint-equal;
//! * **link scaling** — a 64-link ring through one router process per
//!   backend: the workload the reactor exists for (O(1) threads where
//!   blocking pays a thread per link);
//! * **delivery contention** — 64 co-hosted parties on one transport, 4
//!   deliverer threads racing 4 receiver threads through the local
//!   delivery path, sharded-inbox vs mutex-oracle × pinned vs unpinned,
//!   stream-checksum equality asserted across all four flavors on every
//!   rep (the one-inbox-lock workload PR-10 exists for);
//! * **shard pinning** — the reference scenario on a 4-shard
//!   [`ShardedEngine`], `--pin-shards` on vs off, fingerprints asserted
//!   against the oracle;
//! * **parallel merge (PR-7 re-run)** — `MergeAccumulator`'s sequential
//!   vs multi-threaded normalised fold over a large condensed matrix,
//!   bit-identity asserted.
//!
//! Every timed row records **min/median/max** of its repetitions: the
//! single-core CI boxes this runs on are noisy (±20% between identical
//! runs is common), and a lone median overclaims.
//!
//! ```text
//! cargo build --release -p ppc-party
//! cargo run --release -p ppc-party --bin secure_report -- \
//!     [--reps N] [--scale quick|full] [--out BENCH_pr10.json]
//! ```

use std::io::Read;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ppc_cluster::{CondensedDistanceMatrix, MergeAccumulator};
use ppc_core::protocol::engine::SessionSpec;
use ppc_core::protocol::sharded::ShardedEngine;
use ppc_net::{
    Backoff, ChannelKeyring, DeliveryMode, Envelope, Network, PartyId, SimulatedWan, TcpRouter,
    TcpTransport, Transport, TransportBackend, WaitTransport, WanProfile,
};
use ppc_scenario::chaos::fingerprint_process_stdout;
use ppc_scenario::digest::fingerprint_outcomes;
use ppc_scenario::factory::{Scenario, ScenarioSpec, SchemaShape, SiteSkew};

/// Bench scale: `quick` keeps a full run in CI minutes on one core,
/// `full` multiplies the object counts for real hardware.
#[derive(Clone, Copy, PartialEq)]
enum Scale {
    Quick,
    Full,
}

impl Scale {
    fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }

    /// Object count for a scenario: `quick` baseline or the `full`
    /// multiple.
    fn objects(self, quick: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Full => quick * 4,
        }
    }
}

struct Args {
    reps: usize,
    scale: Scale,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        reps: 5,
        scale: Scale::Quick,
        out: "BENCH_pr10.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--reps" => {
                args.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
                if args.reps == 0 {
                    return Err("--reps must be at least 1".into());
                }
            }
            "--scale" => {
                args.scale = match value("--scale")?.as_str() {
                    "quick" => Scale::Quick,
                    "full" => Scale::Full,
                    other => return Err(format!("--scale must be quick or full, got '{other}'")),
                }
            }
            "--out" => args.out = value("--out")?,
            other => {
                return Err(format!(
                    "unknown flag '{other}' (expected --reps N, --scale quick|full, --out PATH)"
                ))
            }
        }
    }
    Ok(args)
}

/// The scenario axis: three distinct shapes of the generated federation.
fn oracle_specs(scale: Scale) -> Vec<(&'static str, ScenarioSpec)> {
    vec![
        (
            "uniform_4site",
            ScenarioSpec {
                seed: 0xBE4C_0801,
                sites: 4,
                objects: scale.objects(240),
                clusters: 3,
                skew: SiteSkew::Uniform,
                shape: SchemaShape::default(),
                sessions: 3,
                chunk_base: Some(8),
            },
        ),
        (
            "zipf_8site",
            ScenarioSpec {
                seed: 0xBE4C_0802,
                sites: 8,
                objects: scale.objects(480),
                clusters: 4,
                skew: SiteSkew::Zipf { exponent: 1.0 },
                shape: SchemaShape::default(),
                sessions: 2,
                chunk_base: Some(16),
            },
        ),
        (
            "dominant_5site",
            ScenarioSpec {
                seed: 0xBE4C_0803,
                sites: 5,
                objects: scale.objects(360),
                clusters: 3,
                skew: SiteSkew::DominantSite { fraction: 0.6 },
                shape: SchemaShape::default(),
                sessions: 2,
                chunk_base: Some(8),
            },
        ),
    ]
}

/// The multi-process scenario: 3 sites keeps the federation at four
/// `ppc-party` processes plus the router.
fn process_spec(scale: Scale) -> ScenarioSpec {
    ScenarioSpec {
        seed: 0xBE4C_0804,
        sites: 3,
        objects: scale.objects(120),
        clusters: 2,
        skew: SiteSkew::Zipf { exponent: 0.9 },
        shape: SchemaShape::default(),
        sessions: 2,
        chunk_base: Some(8),
    }
}

/// min / median / max of a sample set (seconds).
#[derive(Clone, Copy)]
struct Spread {
    min: f64,
    median: f64,
    max: f64,
}

impl Spread {
    fn of(mut samples: Vec<f64>) -> Spread {
        samples.sort_by(f64::total_cmp);
        Spread {
            min: samples[0],
            median: samples[samples.len() / 2],
            max: samples[samples.len() - 1],
        }
    }

    fn measure(reps: usize, mut run: impl FnMut()) -> Spread {
        Spread::of(
            (0..reps)
                .map(|_| {
                    let started = Instant::now();
                    run();
                    started.elapsed().as_secs_f64()
                })
                .collect(),
        )
    }

    /// `"min_seconds": …, "median_seconds": …, "max_seconds": …` fields.
    fn seconds_fields(&self) -> String {
        format!(
            "\"min_seconds\": {:.6}, \"median_seconds\": {:.6}, \"max_seconds\": {:.6}",
            self.min, self.median, self.max
        )
    }

    /// Throughput fields for `work / seconds` (max time → min rate).
    fn rate_fields(&self, work: f64, unit: &str) -> String {
        format!(
            "\"min_{unit}\": {:.2}, \"median_{unit}\": {:.2}, \"max_{unit}\": {:.2}",
            work / self.max,
            work / self.median,
            work / self.min
        )
    }
}

/// `"seed": …, "sites": …, "objects": …, "sessions": …` — the provenance
/// fields every scenario-derived row carries.
fn scenario_fields(scenario: &Scenario) -> String {
    format!(
        "\"seed\": {}, \"sites\": {}, \"objects\": {}, \"sessions\": {}",
        scenario.spec.seed, scenario.spec.sites, scenario.spec.objects, scenario.spec.sessions
    )
}

/// Host parallelism, recorded in every row so no number is read without
/// knowing the box it came from.
fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// `"cores": …, "transport_backend": "…", "delivery": "…", "pinned": …`
/// — the provenance fields every BENCH row carries. `backend` is
/// `in-memory` for rows that never touch a socket, otherwise the socket
/// I/O driver; `delivery` is the inbox strategy (`sharded` lock-free vs
/// the `mutex` oracle, `in-memory` when no socket inbox is involved);
/// `pinned` records whether the row's worker threads were affinity-pinned.
fn provenance(backend: &str, delivery: &str, pinned: bool) -> String {
    format!(
        "\"cores\": {}, \"transport_backend\": \"{backend}\", \"delivery\": \"{delivery}\", \
         \"pinned\": {pinned}",
        cores()
    )
}

/// Runs the scenario's sessions through a one-shard [`ShardedEngine`] on
/// `transport` and returns the outcome fingerprint.
fn sharded_fingerprint<T: WaitTransport + Sync + 'static>(
    specs: &[SessionSpec],
    transport: T,
) -> u64 {
    let mut engine = ShardedEngine::new(vec![transport]).unwrap();
    for spec in specs {
        engine.add_session(spec.clone());
    }
    engine.set_stall_budget(Duration::from_millis(100), 600);
    let run = engine.run().unwrap();
    fingerprint_outcomes(&run.outcomes)
}

fn spawn_party(binary: &std::path::Path, args: &[String], keep_stdout: bool) -> Child {
    Command::new(binary)
        .args(args)
        .stdout(if keep_stdout {
            Stdio::piped()
        } else {
            // Serving parties print their own RESULT/MATRIX lines; nobody
            // reads them here, and an undrained pipe would gag the
            // federation once the OS buffer fills.
            Stdio::null()
        })
        .stderr(Stdio::null())
        .spawn()
        .unwrap_or_else(|e| panic!("cannot spawn {}: {e}", binary.display()))
}

fn drain(child: Child, label: &str) -> String {
    let output = child.wait_with_output().expect("child waited");
    if !output.status.success() {
        let mut text = String::new();
        let _ = (&output.stdout[..]).read_to_string(&mut text);
        panic!("{label} failed ({}): {text}", output.status);
    }
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn sibling(name: &str) -> std::path::PathBuf {
    let mut path = std::env::current_exe().expect("current exe");
    path.set_file_name(name);
    path
}

/// One federation of real `ppc-party` processes over a loopback-TCP
/// router, fed the scenario's generated CSVs, schema and manifest.
/// Returns the wall time and the coordinator's result-stream fingerprint.
fn multi_process_run(
    binary: &std::path::Path,
    scenario: &Scenario,
    csvs: &[std::path::PathBuf],
    manifest: &std::path::Path,
    sealed: bool,
    backend: TransportBackend,
) -> (f64, u64) {
    let (mut router, addr) = TcpRouter::spawn_with_backend("127.0.0.1:0", backend).unwrap();
    let connect = format!("tcp:{addr}");
    let common = |rest: &[&str]| -> Vec<String> {
        let mut args: Vec<String> = rest.iter().map(|s| s.to_string()).collect();
        args.extend([
            "--connect".into(),
            connect.clone(),
            "--seed".into(),
            scenario.spec.seed.to_string(),
            "--schema".into(),
            scenario.schema_cli().to_string(),
            "--transport".into(),
            backend.to_string(),
        ]);
        if !sealed {
            args.push("--insecure".into());
        }
        args
    };
    let started = Instant::now();
    let mut serves = Vec::new();
    for site in 1..scenario.spec.sites {
        serves.push((
            spawn_party(
                binary,
                &common(&[
                    "serve",
                    "--party",
                    &format!("DH{site}"),
                    "--coordinator",
                    "DH0",
                    "--csv",
                    &csvs[site as usize].display().to_string(),
                ]),
                false,
            ),
            format!("serve DH{site}"),
        ));
    }
    serves.push((
        spawn_party(
            binary,
            &common(&["serve", "--party", "TP", "--coordinator", "DH0"]),
            false,
        ),
        "serve TP".to_string(),
    ));
    let remote: Vec<String> = (1..scenario.spec.sites)
        .map(|i| format!("DH{i}"))
        .chain(["TP".to_string()])
        .collect();
    let coordinate = spawn_party(
        binary,
        &common(&[
            "coordinate",
            "--party",
            "DH0",
            "--remote",
            &remote.join(","),
            "--csv",
            &csvs[0].display().to_string(),
            "--clusters",
            "2",
            "--manifest",
            &manifest.display().to_string(),
        ]),
        true,
    );
    let stdout = drain(coordinate, "coordinate");
    let elapsed = started.elapsed().as_secs_f64();
    for (child, label) in serves {
        drain(child, &label);
    }
    router.shutdown();
    (elapsed, fingerprint_process_stdout(&stdout))
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("ERROR: {e}");
            std::process::exit(1);
        }
    };
    let reps = args.reps;
    let mut rows = Vec::new();

    // Axis 1: sites × objects × skew, in-process oracle runs.
    let mut first: Option<(Scenario, u64)> = None;
    for (name, spec) in oracle_specs(args.scale) {
        let scenario = spec.generate().unwrap();
        let sessions = scenario.spec.sessions as f64;
        let mut fingerprint = 0u64;
        let spread = Spread::measure(reps, || {
            let outcomes = scenario.oracle().unwrap();
            fingerprint = fingerprint_outcomes(&outcomes);
        });
        rows.push(format!(
            "    {{\"id\": \"scenario/oracle/{name}\", {}, {}, {}, {}, \
             \"fingerprint\": \"{fingerprint:016x}\"}}",
            provenance("in-memory", "in-memory", false),
            scenario_fields(&scenario),
            spread.seconds_fields(),
            spread.rate_fields(sessions, "sessions_per_second"),
        ));
        if first.is_none() {
            first = Some((scenario, fingerprint));
        }
    }
    let (reference, oracle_fp) = first.expect("at least one oracle scenario");
    let specs = reference.session_specs().unwrap();
    let sessions = reference.spec.sessions as f64;

    // Axis 2: channel security × socket backend × delivery strategy over
    // a loopback-TCP frame router, identity to the oracle asserted on
    // every rep. The blocking backend is the behavioral oracle for the
    // reactor and the mutex inbox is the behavioral oracle for the
    // sharded delivery path: same wire format, same replay/resume
    // machinery, different queueing — the fingerprint assert holds every
    // flavor to the in-process truth. Each sharded row records its
    // speedup over the mutex-oracle row of the same flavor.
    for backend in [TransportBackend::Blocking, TransportBackend::Reactor] {
        let mut plaintext_median = 0.0;
        for sealed in [false, true] {
            let mut mutex_median = 0.0;
            for delivery in [DeliveryMode::MutexOracle, DeliveryMode::Sharded] {
                let spread = Spread::measure(reps, || {
                    let (mut router, addr) =
                        TcpRouter::spawn_with_backend("127.0.0.1:0", backend).unwrap();
                    let mut transport =
                        TcpTransport::new_with_delivery(reference.parties(), backend, delivery);
                    if sealed {
                        transport.set_security(ChannelKeyring::from_master(&reference.master));
                    }
                    transport.connect(addr, &Backoff::default()).unwrap();
                    let fingerprint = sharded_fingerprint(&specs, transport);
                    assert_eq!(fingerprint, oracle_fp, "TCP run diverged from the oracle");
                    router.shutdown();
                });
                let mut extra = String::new();
                if delivery == DeliveryMode::MutexOracle {
                    mutex_median = spread.median;
                } else {
                    extra.push_str(&format!(
                        ", \"speedup_vs_mutex_oracle\": {:.3}",
                        mutex_median / spread.median
                    ));
                }
                if sealed {
                    if delivery == DeliveryMode::Sharded {
                        extra.push_str(&format!(
                            ", \"overhead_vs_plaintext_percent\": {:.1}",
                            (spread.median / plaintext_median - 1.0) * 100.0
                        ));
                    }
                } else if delivery == DeliveryMode::Sharded {
                    plaintext_median = spread.median;
                }
                rows.push(format!(
                    "    {{\"id\": \"scenario/sharded_tcp/{backend}/{}/{}\", {}, {}, {}, {}, \
                     \"bit_identical_to_oracle\": true{extra}}}",
                    delivery.as_str(),
                    if sealed { "sealed" } else { "plaintext" },
                    provenance(backend.as_str(), delivery.as_str(), false),
                    scenario_fields(&reference),
                    spread.seconds_fields(),
                    spread.rate_fields(sessions, "sessions_per_second"),
                ));
            }
        }
    }

    // Axis 3: loss/latency under the simulated-WAN cost model. Loss here
    // is virtual-cost accounting (delivery is unchanged), so the rows
    // record the wire costs a real deployment would pay next to the
    // unchanged results.
    for (profile_name, profile, wan_seed) in [
        ("wan", WanProfile::wan(), 21u64),
        ("lossy_dsl", WanProfile::lossy_dsl(), 23u64),
    ] {
        let mut stats = None;
        let spread = Spread::measure(reps, || {
            let transport = SimulatedWan::new(
                Network::with_parties(reference.spec.sites),
                profile,
                wan_seed,
            )
            .unwrap();
            let wan = transport.clone();
            let fingerprint = sharded_fingerprint(&specs, transport);
            assert_eq!(fingerprint, oracle_fp, "WAN run diverged from the oracle");
            stats = Some(wan.stats());
        });
        let stats = stats.expect("at least one rep ran");
        rows.push(format!(
            "    {{\"id\": \"scenario/wan/{profile_name}\", {}, {}, {}, \
             \"virtual_wire_seconds\": {:.3}, \"bytes_on_wire\": {}, \
             \"retransmissions\": {}, \"bit_identical_to_oracle\": true}}",
            provenance("in-memory", "in-memory", false),
            scenario_fields(&reference),
            spread.seconds_fields(),
            stats.virtual_seconds,
            stats.bytes_on_wire,
            stats.retransmissions(),
        ));
    }

    // Axis 4: real OS processes fed the generated artefacts, plaintext vs
    // sealed on each socket backend (`--transport` end to end: every
    // party process and the router). All four flavors must produce
    // fingerprint-identical result streams — sealing is transparent to
    // the protocol and the backends are wire-identical.
    let binary = sibling("ppc-party");
    if binary.exists() {
        let scenario = process_spec(args.scale).generate().unwrap();
        let proc_sessions = scenario.spec.sessions as f64;
        let dir = std::env::temp_dir().join(format!("ppc-scenario-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csvs = scenario.write_csvs(&dir).unwrap();
        let manifest = dir.join("manifest.txt");
        std::fs::write(&manifest, scenario.manifest_text()).unwrap();

        let mut reference_stats: Option<(f64, u64)> = None;
        for backend in [TransportBackend::Blocking, TransportBackend::Reactor] {
            for sealed in [false, true] {
                let mut fingerprint = 0u64;
                let spread = Spread::of(
                    (0..reps)
                        .map(|_| {
                            let (elapsed, fp) = multi_process_run(
                                &binary, &scenario, &csvs, &manifest, sealed, backend,
                            );
                            fingerprint = fp;
                            elapsed
                        })
                        .collect(),
                );
                let extra = match reference_stats {
                    Some((median, plain_fp)) => {
                        assert_eq!(
                            fingerprint, plain_fp,
                            "federation flavors diverged (sealed={sealed}, backend={backend})"
                        );
                        format!(
                            ", \"overhead_vs_blocking_plaintext_percent\": {:.1}, \
                             \"fingerprint_equals_blocking_plaintext\": true",
                            (spread.median / median - 1.0) * 100.0
                        )
                    }
                    None => {
                        reference_stats = Some((spread.median, fingerprint));
                        String::new()
                    }
                };
                rows.push(format!(
                    "    {{\"id\": \"scenario/multi_process/{backend}/{}\", {}, {}, {}, {}, \
                     \"fingerprint\": \"{fingerprint:016x}\"{extra}, \
                     \"note\": \"includes process spawn + control-plane handshake\"}}",
                    if sealed { "sealed" } else { "plaintext" },
                    provenance(backend.as_str(), "sharded", false),
                    scenario_fields(&scenario),
                    spread.seconds_fields(),
                    spread.rate_fields(proc_sessions, "sessions_per_second"),
                ));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    } else {
        rows.push(format!(
            "    {{\"id\": \"scenario/multi_process\", \"skipped\": \
             \"{} not built; run cargo build --release -p ppc-party first\"}}",
            binary.display()
        ));
    }

    // Axis 5 (PR-9 re-run): link scaling — a 64-link ring through one
    // in-process router per backend, the workload the reactor exists for,
    // now also split by delivery strategy. Each rep connects 64
    // single-party transports, pushes PASSES full ring rotations (64
    // envelopes each) and tears down; the blocking backend pays ~2
    // threads per link for the same bytes.
    for backend in [TransportBackend::Blocking, TransportBackend::Reactor] {
        const LINKS: usize = 64;
        const PASSES: usize = 4;
        let mut mutex_median = 0.0;
        for delivery in [DeliveryMode::MutexOracle, DeliveryMode::Sharded] {
            let spread = Spread::measure(reps, || {
                let (mut router, addr) =
                    TcpRouter::spawn_with_backend("127.0.0.1:0", backend).unwrap();
                let transports: Vec<TcpTransport> = (0..LINKS)
                    .map(|i| {
                        let t = TcpTransport::new_with_delivery(
                            [PartyId::DataHolder(i as u32)],
                            backend,
                            delivery,
                        );
                        t.connect(addr, &Backoff::default()).unwrap();
                        t
                    })
                    .collect();
                for pass in 0..PASSES {
                    for (i, t) in transports.iter().enumerate() {
                        t.send(Envelope::new(
                            PartyId::DataHolder(i as u32),
                            PartyId::DataHolder(((i + 1) % LINKS) as u32),
                            "bench/ring",
                            vec![pass as u8; 64],
                        ))
                        .unwrap();
                        t.flush().unwrap();
                    }
                    for (i, t) in transports.iter().enumerate() {
                        let me = PartyId::DataHolder(i as u32);
                        t.receive_any_of(&[me], Duration::from_secs(30))
                            .unwrap()
                            .expect("ring envelope arrives");
                    }
                }
                for t in &transports {
                    t.shutdown();
                }
                router.shutdown();
            });
            let extra = if delivery == DeliveryMode::MutexOracle {
                mutex_median = spread.median;
                String::new()
            } else {
                format!(
                    ", \"speedup_vs_mutex_oracle\": {:.3}",
                    mutex_median / spread.median
                )
            };
            rows.push(format!(
                "    {{\"id\": \"stress/ring_64_links/{backend}/{}\", {}, \"links\": {LINKS}, \
                 \"passes\": {PASSES}, \"messages\": {}, {}, {}, {}{extra}}}",
                delivery.as_str(),
                provenance(backend.as_str(), delivery.as_str(), false),
                LINKS * PASSES,
                spread.seconds_fields(),
                spread.rate_fields((LINKS * PASSES) as f64, "messages_per_second"),
                spread.rate_fields(PASSES as f64, "sessions_per_second"),
            ));
        }
    }

    // Axis 6: delivery contention — the one-inbox-lock workload. 64
    // parties co-hosted on ONE transport, 4 deliverer threads racing 4
    // receiver threads through the local delivery path. Under the mutex
    // oracle every delivery and every receive serialises on one lock and
    // every wake is a notify_all broadcast; the sharded inbox gives each
    // party its own lock-free queue and signals only the receiver that
    // owns it. Stream checksums are asserted identical across all four
    // flavors on every rep — the strategies may only differ in speed.
    // The wake_signals field makes the structural difference visible
    // even when single-core wall time is noise-bound: the oracle
    // broadcasts per delivery, the sharded inbox signals only parked
    // owners.
    {
        const PARTIES: u32 = 64;
        const DRIVERS: u32 = 4;
        const ROUNDS: u64 = 100;
        let contention_rep = |delivery: DeliveryMode, pin: bool| -> (u64, u64) {
            let transport = Arc::new(TcpTransport::new_with_delivery(
                (0..PARTIES).map(PartyId::DataHolder),
                TransportBackend::default_for_host(),
                delivery,
            ));
            let checksum = std::sync::atomic::AtomicU64::new(0);
            std::thread::scope(|scope| {
                for driver in 0..DRIVERS {
                    let transport = Arc::clone(&transport);
                    scope.spawn(move || {
                        if pin {
                            ppc_net::pin_thread_to_core(driver as usize);
                        }
                        for round in 0..ROUNDS {
                            for to in 0..PARTIES {
                                transport
                                    .send(Envelope::new(
                                        PartyId::DataHolder(100 + driver),
                                        PartyId::DataHolder(to),
                                        "bench/contention",
                                        round.to_le_bytes().to_vec(),
                                    ))
                                    .unwrap();
                            }
                        }
                    });
                }
                for group in 0..DRIVERS {
                    let transport = Arc::clone(&transport);
                    let checksum = &checksum;
                    scope.spawn(move || {
                        if pin {
                            ppc_net::pin_thread_to_core((DRIVERS + group) as usize);
                        }
                        let mine: Vec<PartyId> = (0..PARTIES)
                            .filter(|p| p % DRIVERS == group)
                            .map(PartyId::DataHolder)
                            .collect();
                        let expected = u64::from(DRIVERS) * ROUNDS * (PARTIES / DRIVERS) as u64;
                        let mut sum = 0u64;
                        for _ in 0..expected {
                            let envelope = transport
                                .receive_any_of(&mine, Duration::from_secs(30))
                                .unwrap()
                                .expect("contention envelope arrives");
                            let round =
                                u64::from_le_bytes(envelope.payload.as_slice().try_into().unwrap());
                            let from = match envelope.from {
                                PartyId::DataHolder(i) => u64::from(i),
                                PartyId::ThirdParty => u64::MAX,
                            };
                            let to = match envelope.to {
                                PartyId::DataHolder(i) => u64::from(i),
                                PartyId::ThirdParty => u64::MAX,
                            };
                            // Order-insensitive stream digest: addition
                            // commutes, so any legal interleaving of the
                            // same exactly-once stream sums identically.
                            sum = sum.wrapping_add(
                                (from << 40) ^ (to << 20) ^ round.wrapping_mul(0x9E37),
                            );
                        }
                        checksum.fetch_add(sum, std::sync::atomic::Ordering::SeqCst);
                    });
                }
            });
            (
                checksum.load(std::sync::atomic::Ordering::SeqCst),
                transport.delivery_stats().wake_signals,
            )
        };
        let mut reference_checksum: Option<u64> = None;
        let mut mutex_median = [0.0f64; 2];
        for pin in [false, true] {
            for delivery in [DeliveryMode::MutexOracle, DeliveryMode::Sharded] {
                let mut checksum = 0u64;
                let mut wake_signals = 0u64;
                let spread = Spread::measure(reps, || {
                    (checksum, wake_signals) = contention_rep(delivery, pin);
                    match reference_checksum {
                        Some(reference) => assert_eq!(
                            checksum,
                            reference,
                            "delivery flavors produced different streams \
                             (delivery={}, pinned={pin})",
                            delivery.as_str()
                        ),
                        None => reference_checksum = Some(checksum),
                    }
                });
                let extra = if delivery == DeliveryMode::MutexOracle {
                    mutex_median[usize::from(pin)] = spread.median;
                    String::new()
                } else {
                    format!(
                        ", \"speedup_vs_mutex_oracle\": {:.3}",
                        mutex_median[usize::from(pin)] / spread.median
                    )
                };
                let messages = u64::from(DRIVERS) * ROUNDS * u64::from(PARTIES);
                rows.push(format!(
                    "    {{\"id\": \"stress/delivery_contention/{}/{}\", {}, \
                     \"parties\": {PARTIES}, \"deliverers\": {DRIVERS}, \
                     \"receivers\": {DRIVERS}, \"messages\": {messages}, {}, {}, \
                     \"wake_signals\": {wake_signals}, \
                     \"stream_checksum\": \"{checksum:016x}\", \
                     \"checksum_identical_across_flavors\": true{extra}}}",
                    delivery.as_str(),
                    if pin { "pinned" } else { "unpinned" },
                    provenance("in-process", delivery.as_str(), pin),
                    spread.seconds_fields(),
                    spread.rate_fields(messages as f64, "messages_per_second"),
                ));
            }
        }
    }

    // Axis 7: shard pinning — the reference scenario on a 4-shard
    // ShardedEngine over in-memory networks, --pin-shards off vs on.
    // Pinning is a placement hint: fingerprints must match the oracle
    // either way (asserted every rep); only the wall time may move, and
    // on a single-core box it is expected to be a wash.
    for pin in [false, true] {
        let mut pinned_effective = false;
        let spread = Spread::measure(reps, || {
            let transports: Vec<Network> = (0..4)
                .map(|_| Network::with_parties(reference.spec.sites))
                .collect();
            let mut engine = ShardedEngine::new(transports).unwrap();
            engine.set_pin_shards(pin);
            for spec in &specs {
                engine.add_session(spec.clone());
            }
            engine.set_stall_budget(Duration::from_millis(100), 600);
            let run = engine.run().unwrap();
            pinned_effective = run.shards.iter().all(|s| s.pinned);
            assert_eq!(
                fingerprint_outcomes(&run.outcomes),
                oracle_fp,
                "pinned sharded run diverged from the oracle"
            );
        });
        rows.push(format!(
            "    {{\"id\": \"scenario/shard_pinning/4shards/{}\", {}, {}, \"shards\": 4, {}, {}, \
             \"bit_identical_to_oracle\": true}}",
            if pin { "pinned" } else { "unpinned" },
            provenance("in-memory", "in-memory", pinned_effective),
            scenario_fields(&reference),
            spread.seconds_fields(),
            spread.rate_fields(sessions, "sessions_per_second"),
        ));
    }

    // Axis 8 (PR-7 re-run): the parallel normalised merge. Six condensed
    // attribute matrices folded sequentially vs with every core,
    // bit-identity of the merged matrix asserted (the parallel fold is a
    // scheduling change, not a numeric one).
    {
        let n = match args.scale {
            Scale::Quick => 1200,
            Scale::Full => 2400,
        };
        let attributes = 6usize;
        let matrices: Vec<CondensedDistanceMatrix> = (0..attributes)
            .map(|a| {
                let mut m = CondensedDistanceMatrix::zeros(n);
                let mut state = 0x1234_5678_9ABC_DEF0u64 ^ (a as u64) << 32;
                for i in 1..n {
                    for j in 0..i {
                        state = state
                            .wrapping_mul(6_364_136_223_846_793_005)
                            .wrapping_add(1_442_695_040_888_963_407);
                        m.set(i, j, (state >> 11) as f64 / (1u64 << 53) as f64);
                    }
                }
                m
            })
            .collect();
        let fold = |threads: usize| -> CondensedDistanceMatrix {
            let mut acc = MergeAccumulator::new(n);
            for (a, matrix) in matrices.iter().enumerate() {
                let weight = 1.0 + a as f64 / attributes as f64;
                if threads <= 1 {
                    acc.push_normalized(matrix, weight).unwrap();
                } else {
                    acc.push_normalized_parallel(matrix, weight, threads)
                        .unwrap();
                }
            }
            acc.finish()
        };
        let sequential = fold(1);
        let mut seq_median = 0.0;
        // At least two threads for the parallel row so the parallel code
        // path (and its bit-identity) is exercised even on a 1-core box.
        for threads in [1usize, cores().max(2)] {
            let spread = Spread::measure(reps, || {
                let merged = fold(threads);
                let identical = merged
                    .condensed_values()
                    .iter()
                    .zip(sequential.condensed_values())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(identical, "parallel merge must be bit-identical");
            });
            let extra = if threads == 1 {
                seq_median = spread.median;
                String::new()
            } else {
                format!(
                    ", \"speedup_vs_sequential\": {:.3}",
                    seq_median / spread.median
                )
            };
            rows.push(format!(
                "    {{\"id\": \"compute/parallel_merge/{}threads\", {}, \"objects\": {n}, \
                 \"attributes\": {attributes}, {}, \"bit_identical_to_sequential\": true{extra}}}",
                threads,
                provenance("in-memory", "in-memory", false),
                spread.seconds_fields(),
            ));
        }
    }

    let cores = cores();
    let json = format!(
        "{{\n  \"pr\": 10,\n  \"title\": \"Sharded lock-free delivery vs the one-inbox-lock \
         oracle: socket transports on two I/O backends across channel-security, WAN, \
         deployment, link-scaling, delivery-contention, shard-pinning and parallel-merge \
         axes\",\n  \
         \"harness\": \"secure_report binary; every row derives from a seeded ScenarioSpec and \
         records the seed (same seed => byte-identical scenario) plus the cores, \
         transport_backend, delivery strategy and pinned flag it ran on; timed rows record \
         min/median/max of {reps} runs (noisy single-core boxes); TCP rows on both backends \
         and both delivery strategies assert f64-bit identity to the in-process oracle on \
         every rep; sharded-delivery rows carry speedup_vs_mutex_oracle against the retained \
         single-lock inbox; multi-process rows spawn real ppc-party OS processes on the \
         generated CSVs + manifest with --transport end to end and assert all four \
         sealed/plaintext x blocking/reactor result streams are fingerprint-identical; the \
         64-link ring and 64-party contention rows are the delivery-scaling workloads (see \
         crates/net/tests/delivery_stress.rs for FIFO/exactly-once/no-lost-wakeup asserts); \
         the parallel_merge rows re-run the PR-7 compute-path fold with a bit-identity \
         assert\",\n  \
         \"scale\": \"{}\",\n  \"cores\": {cores},\n  \"results\": [\n{}\n  ]\n}}\n",
        args.scale.name(),
        rows.join(",\n")
    );
    std::fs::write(&args.out, &json).unwrap();
    println!("{json}");
    println!("wrote {}", args.out);
}
