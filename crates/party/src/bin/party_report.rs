//! Generates `BENCH_pr4.json`: sessions/s of the same workload run
//! single-process (in-memory engine, and one sharded worker over loopback
//! TCP) versus **three real OS processes** (coordinating holder, serving
//! holder, serving third party) connected through a loopback-TCP frame
//! router — measured on this machine.
//!
//! ```text
//! cargo build --release -p ppc-party
//! cargo run --release -p ppc-party --bin party_report [output.json]
//! ```
//!
//! The three-process rows spawn the sibling `ppc-party` binary, so build
//! it (same profile) first.

use std::io::Read;
use std::process::{Child, Command, Stdio};
use std::time::Instant;

use ppc_cluster::Linkage;
use ppc_core::csv::to_csv;
use ppc_core::protocol::driver::ClusteringRequest;
use ppc_core::protocol::engine::{SessionEngine, SessionSpec};
use ppc_core::protocol::party::TrustedSetup;
use ppc_core::protocol::sharded::ShardedEngine;
use ppc_core::protocol::ProtocolConfig;
use ppc_crypto::Seed;
use ppc_data::Workload;
use ppc_net::{Backoff, Network, PartyId, TcpRouter, TcpTransport};

const OBJECTS: usize = 32;
const SITES: u32 = 2;
const CLUSTERS: usize = 3;
const SESSIONS: usize = 6;
const WINDOW: usize = 4;
const SEED: u64 = 77;
const REPS: usize = 3;
const SCHEMA_FLAG: &str = "dna:alphanumeric:dna,age:numeric,outcome:categorical";

fn spec(seed: u64) -> SessionSpec {
    let workload = Workload::bird_flu(OBJECTS, SITES, CLUSTERS, seed).unwrap();
    let schema = workload.schema().clone();
    let setup =
        TrustedSetup::deterministic(workload.partitions.clone(), &Seed::from_u64(SEED)).unwrap();
    SessionSpec {
        schema: schema.clone(),
        config: ProtocolConfig::default(),
        holders: setup.holders,
        keys: setup.third_party,
        request: ClusteringRequest {
            weights: schema.uniform_weights(),
            linkage: Linkage::Average,
            num_clusters: CLUSTERS,
        },
        chunk_rows: Some(WINDOW),
    }
}

fn median_seconds(mut run: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let started = Instant::now();
            run();
            started.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn sibling(name: &str) -> std::path::PathBuf {
    let mut path = std::env::current_exe().expect("current exe");
    path.set_file_name(name);
    path
}

fn spawn_party(binary: &std::path::Path, args: &[String]) -> Child {
    Command::new(binary)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap_or_else(|e| panic!("cannot spawn {}: {e}", binary.display()))
}

fn drain(child: Child, label: &str) {
    let output = child.wait_with_output().expect("child waited");
    if !output.status.success() {
        let mut text = String::new();
        let _ = (&output.stdout[..]).read_to_string(&mut text);
        panic!("{label} failed ({}): {text}", output.status);
    }
}

/// One full three-process federation run over loopback TCP; returns the
/// wall-clock seconds from serve spawn to coordinator exit (so process
/// startup and the control-plane handshake are included — that is the real
/// deployment cost).
fn three_process_run(binary: &std::path::Path, csv_dir: &std::path::Path) -> f64 {
    let (mut router, addr) = TcpRouter::spawn("127.0.0.1:0").unwrap();
    let connect = format!("tcp:{addr}");
    let common = |rest: &[&str]| -> Vec<String> {
        let mut args = vec![];
        args.extend(rest.iter().map(|s| s.to_string()));
        args.extend([
            "--connect".into(),
            connect.clone(),
            "--seed".into(),
            SEED.to_string(),
            "--schema".into(),
            SCHEMA_FLAG.into(),
        ]);
        args
    };
    let csv = |site: u32| {
        csv_dir
            .join(format!("site{site}.csv"))
            .display()
            .to_string()
    };
    let started = Instant::now();
    let serve_dh1 = spawn_party(
        binary,
        &common(&[
            "serve",
            "--party",
            "DH1",
            "--coordinator",
            "DH0",
            "--csv",
            &csv(1),
        ]),
    );
    let serve_tp = spawn_party(
        binary,
        &common(&["serve", "--party", "TP", "--coordinator", "DH0"]),
    );
    let coordinate = spawn_party(
        binary,
        &common(&[
            "coordinate",
            "--party",
            "DH0",
            "--remote",
            "DH1,TP",
            "--csv",
            &csv(0),
            "--sessions",
            &SESSIONS.to_string(),
            "--clusters",
            &CLUSTERS.to_string(),
            "--chunk-rows",
            &WINDOW.to_string(),
        ]),
    );
    drain(coordinate, "coordinate");
    let elapsed = started.elapsed().as_secs_f64();
    drain(serve_dh1, "serve DH1");
    drain(serve_tp, "serve TP");
    router.shutdown();
    elapsed
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr4.json".to_string());
    let mut rows = Vec::new();

    let specs: Vec<SessionSpec> = (0..SESSIONS).map(|i| spec(900 + i as u64)).collect();

    // Baseline: single process, in-memory transport.
    let median = median_seconds(|| {
        let mut engine = SessionEngine::new(Network::with_parties(SITES));
        for s in &specs {
            engine.add_session(s.clone());
        }
        assert_eq!(engine.run().unwrap().len(), SESSIONS);
    });
    rows.push(format!(
        "    {{\"id\": \"single_process/memory\", \"sessions\": {SESSIONS}, \
         \"median_seconds\": {median:.6}, \"sessions_per_second\": {:.2}}}",
        SESSIONS as f64 / median
    ));

    // Single process over loopback TCP (one sharded worker through the
    // router: same kernel socket path, no process boundaries).
    let parties: Vec<PartyId> = (0..SITES)
        .map(PartyId::DataHolder)
        .chain([PartyId::ThirdParty])
        .collect();
    let median = median_seconds(|| {
        let (mut router, addr) = TcpRouter::spawn("127.0.0.1:0").unwrap();
        let transport = TcpTransport::new(parties.iter().copied());
        transport.connect(addr, &Backoff::default()).unwrap();
        let mut engine = ShardedEngine::new(vec![transport]).unwrap();
        for s in &specs {
            engine.add_session(s.clone());
        }
        engine.set_stall_budget(std::time::Duration::from_millis(100), 100);
        let run = engine.run().unwrap();
        assert_eq!(run.outcomes.len(), SESSIONS);
        for t in engine.transports() {
            t.shutdown();
        }
        router.shutdown();
    });
    rows.push(format!(
        "    {{\"id\": \"single_process/loopback_tcp\", \"sessions\": {SESSIONS}, \
         \"median_seconds\": {median:.6}, \"sessions_per_second\": {:.2}}}",
        SESSIONS as f64 / median
    ));

    // Three real OS processes over loopback TCP via the control plane.
    let binary = sibling("ppc-party");
    if binary.exists() {
        let csv_dir = std::env::temp_dir().join(format!("ppc-party-bench-{}", std::process::id()));
        std::fs::create_dir_all(&csv_dir).unwrap();
        let workload = Workload::bird_flu(OBJECTS, SITES, CLUSTERS, 900).unwrap();
        for partition in &workload.partitions {
            std::fs::write(
                csv_dir.join(format!("site{}.csv", partition.site())),
                to_csv(partition.matrix()),
            )
            .unwrap();
        }
        // NOTE: every session of a three-process run uses the coordinator's
        // one CSV workload (seed 900); the in-process rows above cycle
        // seeds, which does not change the message/compute volume.
        let mut samples: Vec<f64> = (0..REPS)
            .map(|_| three_process_run(&binary, &csv_dir))
            .collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        rows.push(format!(
            "    {{\"id\": \"three_process/loopback_tcp\", \"sessions\": {SESSIONS}, \
             \"median_seconds\": {median:.6}, \"sessions_per_second\": {:.2}, \
             \"note\": \"includes process spawn + control-plane handshake\"}}",
            SESSIONS as f64 / median
        ));
        let _ = std::fs::remove_dir_all(&csv_dir);
    } else {
        rows.push(format!(
            "    {{\"id\": \"three_process/loopback_tcp\", \"skipped\": \
             \"{} not built; run cargo build --release -p ppc-party first\"}}",
            binary.display()
        ));
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"pr\": 4,\n  \"title\": \"Per-party multi-process deployment with a session \
         control plane\",\n  \"workload\": \"bird_flu {OBJECTS} objects, {SITES} sites, 3 \
         attributes (dna + numeric + categorical), average linkage, k={CLUSTERS}, chunk window \
         {WINDOW}, {SESSIONS} sessions\",\n  \"harness\": \"party_report binary, wall-clock \
         medians of {REPS} runs; three-process rows spawn real ppc-party OS processes against \
         an in-harness TCP router\",\n  \"cores\": {cores},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out_path, &json).unwrap();
    println!("{json}");
    println!("wrote {out_path}");
}
