//! The `ppc-party` binary: see the crate docs (`src/lib.rs`) for usage.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = ppc_party::run(&args) {
        eprintln!("ERROR: {e}");
        std::process::exit(1);
    }
}
