//! Internal cluster-quality metrics.
//!
//! §5 of the paper: "The third party can also provide clustering quality
//! parameters such as average of square distance between members" — quality
//! can be published without leaking private values because it is a function
//! of the dissimilarity matrix only. This module implements that metric plus
//! silhouette and the Dunn index, all driven purely by the distance matrix.

use crate::assignment::ClusterAssignment;
use crate::condensed::CondensedDistanceMatrix;
use crate::error::ClusterError;

/// Average squared distance between members of the same cluster, averaged
/// over clusters with at least two members (the paper's published quality
/// parameter).
pub fn average_within_cluster_squared_distance(
    matrix: &CondensedDistanceMatrix,
    assignment: &ClusterAssignment,
) -> Result<f64, ClusterError> {
    assignment.expect_len(matrix.len())?;
    let members = assignment.members();
    let mut per_cluster = Vec::new();
    for group in members.iter().filter(|g| g.len() >= 2) {
        let mut sum = 0.0;
        let mut count = 0usize;
        for (a, &i) in group.iter().enumerate() {
            for &j in group.iter().skip(a + 1) {
                let d = matrix.get(i, j);
                sum += d * d;
                count += 1;
            }
        }
        per_cluster.push(sum / count as f64);
    }
    if per_cluster.is_empty() {
        return Ok(0.0);
    }
    Ok(per_cluster.iter().sum::<f64>() / per_cluster.len() as f64)
}

/// Mean silhouette coefficient over all objects.
///
/// Objects in singleton clusters contribute a silhouette of 0 by convention.
pub fn silhouette(
    matrix: &CondensedDistanceMatrix,
    assignment: &ClusterAssignment,
) -> Result<f64, ClusterError> {
    assignment.expect_len(matrix.len())?;
    let n = matrix.len();
    if n == 0 {
        return Err(ClusterError::EmptyInput);
    }
    if assignment.num_clusters() < 2 {
        return Err(ClusterError::InvalidParameter(
            "silhouette requires at least two clusters".into(),
        ));
    }
    let members = assignment.members();
    let mut total = 0.0;
    for i in 0..n {
        let own = assignment.label(i);
        if members[own].len() <= 1 {
            continue; // silhouette 0
        }
        let a: f64 = members[own]
            .iter()
            .filter(|&&j| j != i)
            .map(|&j| matrix.get(i, j))
            .sum::<f64>()
            / (members[own].len() - 1) as f64;
        let b = members
            .iter()
            .enumerate()
            .filter(|(c, group)| *c != own && !group.is_empty())
            .map(|(_, group)| {
                group.iter().map(|&j| matrix.get(i, j)).sum::<f64>() / group.len() as f64
            })
            .fold(f64::INFINITY, f64::min);
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    Ok(total / n as f64)
}

/// Dunn index: smallest inter-cluster distance divided by largest cluster
/// diameter. Larger is better; returns an error for fewer than two clusters.
pub fn dunn_index(
    matrix: &CondensedDistanceMatrix,
    assignment: &ClusterAssignment,
) -> Result<f64, ClusterError> {
    assignment.expect_len(matrix.len())?;
    if assignment.num_clusters() < 2 {
        return Err(ClusterError::InvalidParameter(
            "Dunn index requires at least two clusters".into(),
        ));
    }
    let members = assignment.members();
    let mut min_between = f64::INFINITY;
    let mut max_diameter: f64 = 0.0;
    for (a, group_a) in members.iter().enumerate() {
        // Diameter.
        for (x, &i) in group_a.iter().enumerate() {
            for &j in group_a.iter().skip(x + 1) {
                max_diameter = max_diameter.max(matrix.get(i, j));
            }
        }
        // Separation.
        for group_b in members.iter().skip(a + 1) {
            for &i in group_a {
                for &j in group_b {
                    min_between = min_between.min(matrix.get(i, j));
                }
            }
        }
    }
    if max_diameter == 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(min_between / max_diameter)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_matrix(coords: &[f64]) -> CondensedDistanceMatrix {
        CondensedDistanceMatrix::from_fn(coords.len(), |i, j| (coords[i] - coords[j]).abs())
    }

    fn good_and_bad() -> (
        CondensedDistanceMatrix,
        ClusterAssignment,
        ClusterAssignment,
    ) {
        let m = line_matrix(&[0.0, 0.5, 1.0, 20.0, 20.5, 21.0]);
        let good = ClusterAssignment::from_labels(&[0, 0, 0, 1, 1, 1]);
        let bad = ClusterAssignment::from_labels(&[0, 1, 0, 1, 0, 1]);
        (m, good, bad)
    }

    #[test]
    fn within_cluster_scatter_prefers_good_clustering() {
        let (m, good, bad) = good_and_bad();
        let g = average_within_cluster_squared_distance(&m, &good).unwrap();
        let b = average_within_cluster_squared_distance(&m, &bad).unwrap();
        assert!(g < b);
        assert!(g > 0.0);
    }

    #[test]
    fn silhouette_prefers_good_clustering() {
        let (m, good, bad) = good_and_bad();
        let g = silhouette(&m, &good).unwrap();
        let b = silhouette(&m, &bad).unwrap();
        assert!(g > 0.9, "good silhouette {g}");
        assert!(b < 0.2, "bad silhouette {b}");
    }

    #[test]
    fn dunn_index_prefers_good_clustering() {
        let (m, good, bad) = good_and_bad();
        let g = dunn_index(&m, &good).unwrap();
        let b = dunn_index(&m, &bad).unwrap();
        assert!(g > b);
        assert!(g > 10.0);
    }

    #[test]
    fn degenerate_inputs_are_handled() {
        let m = line_matrix(&[0.0, 1.0]);
        let one_cluster = ClusterAssignment::from_labels(&[0, 0]);
        assert!(silhouette(&m, &one_cluster).is_err());
        assert!(dunn_index(&m, &one_cluster).is_err());
        // Singletons only: scatter is 0, dunn is infinite.
        let singletons = ClusterAssignment::from_labels(&[0, 1]);
        assert_eq!(
            average_within_cluster_squared_distance(&m, &singletons).unwrap(),
            0.0
        );
        assert!(dunn_index(&m, &singletons).unwrap().is_infinite());
        // Length mismatch.
        let wrong = ClusterAssignment::from_labels(&[0, 1, 1]);
        assert!(average_within_cluster_squared_distance(&m, &wrong).is_err());
        assert!(silhouette(&m, &wrong).is_err());
        assert!(dunn_index(&m, &wrong).is_err());
    }
}
