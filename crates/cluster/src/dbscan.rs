//! DBSCAN over a precomputed distance matrix.
//!
//! Density-based clustering finds arbitrarily shaped clusters directly from
//! the dissimilarity matrix — included because the paper motivates
//! hierarchical (and, more broadly, matrix-driven) methods with exactly this
//! "clusters of arbitrary shapes" argument. Noise points receive their own
//! label.

use crate::assignment::ClusterAssignment;
use crate::condensed::CondensedDistanceMatrix;
use crate::error::ClusterError;

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy)]
pub struct DbscanConfig {
    /// Neighbourhood radius.
    pub eps: f64,
    /// Minimum number of points (including the point itself) for a core
    /// point.
    pub min_points: usize,
}

/// Result of a DBSCAN run.
#[derive(Debug, Clone)]
pub struct DbscanResult {
    /// Cluster labels for non-noise points plus one singleton label per
    /// noise point (so downstream agreement metrics remain applicable).
    pub assignment: ClusterAssignment,
    /// Raw labels: `Some(cluster)` for clustered points, `None` for noise.
    pub raw: Vec<Option<usize>>,
    /// Number of proper (non-noise) clusters discovered.
    pub clusters: usize,
    /// Number of noise points.
    pub noise: usize,
}

/// Runs DBSCAN on a distance matrix.
pub fn dbscan(
    matrix: &CondensedDistanceMatrix,
    config: &DbscanConfig,
) -> Result<DbscanResult, ClusterError> {
    let n = matrix.len();
    if n == 0 {
        return Err(ClusterError::EmptyInput);
    }
    if config.eps < 0.0 {
        return Err(ClusterError::InvalidParameter(
            "eps must be non-negative".into(),
        ));
    }
    if config.min_points == 0 {
        return Err(ClusterError::InvalidParameter(
            "min_points must be positive".into(),
        ));
    }

    let neighbours =
        |i: usize| -> Vec<usize> { (0..n).filter(|&j| matrix.get(i, j) <= config.eps).collect() };

    let mut raw: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut clusters = 0usize;
    for start in 0..n {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        let start_neighbours = neighbours(start);
        if start_neighbours.len() < config.min_points {
            continue; // provisionally noise; may later be claimed as border
        }
        let cluster_id = clusters;
        clusters += 1;
        raw[start] = Some(cluster_id);
        let mut frontier = start_neighbours;
        let mut cursor = 0;
        while cursor < frontier.len() {
            let point = frontier[cursor];
            cursor += 1;
            if raw[point].is_none() {
                raw[point] = Some(cluster_id);
            }
            if !visited[point] {
                visited[point] = true;
                let point_neighbours = neighbours(point);
                if point_neighbours.len() >= config.min_points {
                    for q in point_neighbours {
                        if !frontier.contains(&q) {
                            frontier.push(q);
                        }
                    }
                }
            }
        }
    }

    let noise = raw.iter().filter(|r| r.is_none()).count();
    // Map noise points to unique labels after the proper clusters.
    let mut next_noise = clusters;
    let labels: Vec<usize> = raw
        .iter()
        .map(|r| match r {
            Some(c) => *c,
            None => {
                let l = next_noise;
                next_noise += 1;
                l
            }
        })
        .collect();
    Ok(DbscanResult {
        assignment: ClusterAssignment::from_labels(&labels),
        raw,
        clusters,
        noise,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_from_points(points: &[(f64, f64)]) -> CondensedDistanceMatrix {
        CondensedDistanceMatrix::from_fn(points.len(), |i, j| {
            let dx = points[i].0 - points[j].0;
            let dy = points[i].1 - points[j].1;
            (dx * dx + dy * dy).sqrt()
        })
    }

    /// Two concentric ring segments: density methods separate them, k-means
    /// style partitioning cannot.
    fn two_rings() -> Vec<(f64, f64)> {
        let mut pts = Vec::new();
        for i in 0..24 {
            let a = i as f64 * std::f64::consts::TAU / 24.0;
            pts.push((a.cos(), a.sin()));
        }
        for i in 0..36 {
            let a = i as f64 * std::f64::consts::TAU / 36.0;
            pts.push((4.0 * a.cos(), 4.0 * a.sin()));
        }
        pts
    }

    #[test]
    fn separates_concentric_rings() {
        let pts = two_rings();
        let m = matrix_from_points(&pts);
        let r = dbscan(
            &m,
            &DbscanConfig {
                eps: 0.8,
                min_points: 3,
            },
        )
        .unwrap();
        assert_eq!(r.clusters, 2);
        assert_eq!(r.noise, 0);
        // All inner-ring points share a cluster distinct from the outer ring.
        assert!(r.assignment.same_cluster(0, 12));
        assert!(!r.assignment.same_cluster(0, 30));
    }

    #[test]
    fn isolated_points_become_noise() {
        let pts = vec![(0.0, 0.0), (0.1, 0.0), (0.2, 0.0), (50.0, 50.0)];
        let m = matrix_from_points(&pts);
        let r = dbscan(
            &m,
            &DbscanConfig {
                eps: 0.5,
                min_points: 2,
            },
        )
        .unwrap();
        assert_eq!(r.clusters, 1);
        assert_eq!(r.noise, 1);
        assert_eq!(r.raw[3], None);
        // The noise point still gets a distinct assignment label.
        assert!(!r.assignment.same_cluster(0, 3));
    }

    #[test]
    fn parameter_validation() {
        let m = matrix_from_points(&[(0.0, 0.0), (1.0, 1.0)]);
        assert!(dbscan(
            &m,
            &DbscanConfig {
                eps: -1.0,
                min_points: 2
            }
        )
        .is_err());
        assert!(dbscan(
            &m,
            &DbscanConfig {
                eps: 1.0,
                min_points: 0
            }
        )
        .is_err());
        assert!(dbscan(
            &CondensedDistanceMatrix::zeros(0),
            &DbscanConfig {
                eps: 1.0,
                min_points: 1
            }
        )
        .is_err());
    }

    #[test]
    fn all_points_one_dense_cluster() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64 * 0.01, 0.0)).collect();
        let m = matrix_from_points(&pts);
        let r = dbscan(
            &m,
            &DbscanConfig {
                eps: 0.5,
                min_points: 3,
            },
        )
        .unwrap();
        assert_eq!(r.clusters, 1);
        assert_eq!(r.noise, 0);
        assert_eq!(r.assignment.num_clusters(), 1);
    }
}
