//! # ppc-cluster — clustering substrate for `ppclust`
//!
//! The third party in the İnan et al. protocol ends up holding a global
//! dissimilarity matrix and runs a clustering algorithm of each data holder's
//! choice on it. The paper deliberately keeps the clustering stage generic
//! ("the dissimilarity matrix [...] can be used by any standard clustering
//! algorithm") and argues for *hierarchical* methods because they accept a
//! distance matrix directly, discover arbitrarily shaped clusters and work
//! for data types that have no mean (strings).
//!
//! This crate provides that stage as an independent library:
//!
//! * [`condensed::CondensedDistanceMatrix`] — packed lower-triangular
//!   symmetric distance matrix (the same object-by-object structure as the
//!   paper's Figure 2).
//! * [`hierarchical`] — agglomerative clustering with the Lance–Williams
//!   family of linkages (single, complete, average, weighted, Ward,
//!   centroid, median), dendrograms and cluster extraction.
//! * [`kmeans`], [`kmedoids`], [`dbscan`] — partitioning/density baselines
//!   used in the experiments that reproduce the paper's argument for
//!   hierarchical methods.
//! * [`quality`] — internal quality metrics the third party may publish
//!   (within-cluster scatter, silhouette, Dunn index).
//! * [`agreement`] — external agreement metrics (Rand, adjusted Rand,
//!   purity, pairwise F-measure) used to verify the "no loss of accuracy"
//!   claim against a centralized baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agreement;
pub mod assignment;
pub mod condensed;
pub mod dbscan;
pub mod error;
pub mod hierarchical;
pub mod kmeans;
pub mod kmedoids;
pub mod outlier;
pub mod quality;

pub use assignment::ClusterAssignment;
pub use condensed::{CondensedDistanceMatrix, MergeAccumulator};
pub use error::ClusterError;
pub use hierarchical::{AgglomerativeClustering, Dendrogram, Linkage};
