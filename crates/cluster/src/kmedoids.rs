//! k-medoids (PAM-style) clustering over a distance matrix.
//!
//! Unlike k-means this only needs pairwise distances, so it *can* run on the
//! protocol's dissimilarity matrix; it is still a partitioning method biased
//! towards compact clusters, which the experiments contrast with
//! hierarchical linkages on non-convex data.

use crate::assignment::ClusterAssignment;
use crate::condensed::CondensedDistanceMatrix;
use crate::error::ClusterError;

/// Configuration for k-medoids.
#[derive(Debug, Clone, Copy)]
pub struct KMedoidsConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum improvement sweeps.
    pub max_iterations: usize,
    /// Seed controlling the initial medoid choice.
    pub seed: u64,
}

impl KMedoidsConfig {
    /// Default configuration for `k` clusters.
    pub fn new(k: usize) -> Self {
        KMedoidsConfig {
            k,
            max_iterations: 50,
            seed: 0x6d65_646f,
        }
    }
}

/// Result of a k-medoids run.
#[derive(Debug, Clone)]
pub struct KMedoidsResult {
    /// Flat assignment of objects to clusters.
    pub assignment: ClusterAssignment,
    /// Indices of the chosen medoids.
    pub medoids: Vec<usize>,
    /// Total distance of objects to their medoid.
    pub total_cost: f64,
    /// Number of sweeps executed.
    pub iterations: usize,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn assign_and_cost(matrix: &CondensedDistanceMatrix, medoids: &[usize]) -> (Vec<usize>, f64) {
    let mut labels = vec![0usize; matrix.len()];
    let mut cost = 0.0;
    for (i, label) in labels.iter_mut().enumerate() {
        let mut best = (0usize, f64::INFINITY);
        for (c, &m) in medoids.iter().enumerate() {
            let d = matrix.get(i, m);
            if d < best.1 {
                best = (c, d);
            }
        }
        *label = best.0;
        cost += best.1;
    }
    (labels, cost)
}

/// Runs PAM-style k-medoids on a distance matrix.
pub fn kmedoids(
    matrix: &CondensedDistanceMatrix,
    config: &KMedoidsConfig,
) -> Result<KMedoidsResult, ClusterError> {
    let n = matrix.len();
    if n == 0 {
        return Err(ClusterError::EmptyInput);
    }
    if config.k == 0 || config.k > n {
        return Err(ClusterError::InvalidClusterCount {
            requested: config.k,
            objects: n,
        });
    }
    // Deterministic distinct initial medoids.
    let mut state = config.seed;
    let mut medoids: Vec<usize> = Vec::with_capacity(config.k);
    while medoids.len() < config.k {
        let candidate = (splitmix(&mut state) % n as u64) as usize;
        if !medoids.contains(&candidate) {
            medoids.push(candidate);
        }
    }
    let (mut labels, mut cost) = assign_and_cost(matrix, &medoids);
    let mut iterations = 0;
    for iter in 0..config.max_iterations {
        iterations = iter + 1;
        let mut improved = false;
        // Greedy best-improvement swap search.
        for slot in 0..config.k {
            for candidate in 0..n {
                if medoids.contains(&candidate) {
                    continue;
                }
                let mut trial = medoids.clone();
                trial[slot] = candidate;
                let (trial_labels, trial_cost) = assign_and_cost(matrix, &trial);
                if trial_cost + 1e-12 < cost {
                    medoids = trial;
                    labels = trial_labels;
                    cost = trial_cost;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    Ok(KMedoidsResult {
        assignment: ClusterAssignment::from_labels(&labels),
        medoids,
        total_cost: cost,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_matrix(coords: &[f64]) -> CondensedDistanceMatrix {
        CondensedDistanceMatrix::from_fn(coords.len(), |i, j| (coords[i] - coords[j]).abs())
    }

    #[test]
    fn separates_two_groups_on_a_line() {
        let m = line_matrix(&[0.0, 0.2, 0.4, 9.0, 9.2, 9.4]);
        let r = kmedoids(&m, &KMedoidsConfig::new(2)).unwrap();
        assert_eq!(r.assignment.num_clusters(), 2);
        assert!(r.assignment.same_cluster(0, 2));
        assert!(r.assignment.same_cluster(3, 5));
        assert!(!r.assignment.same_cluster(0, 3));
        assert!(r.total_cost < 1.0);
        assert_eq!(r.medoids.len(), 2);
    }

    #[test]
    fn validation_errors() {
        let m = line_matrix(&[0.0, 1.0]);
        assert!(kmedoids(&CondensedDistanceMatrix::zeros(0), &KMedoidsConfig::new(1)).is_err());
        assert!(kmedoids(&m, &KMedoidsConfig::new(0)).is_err());
        assert!(kmedoids(&m, &KMedoidsConfig::new(3)).is_err());
    }

    #[test]
    fn k_equals_n_costs_zero() {
        let m = line_matrix(&[0.0, 3.0, 7.0]);
        let r = kmedoids(&m, &KMedoidsConfig::new(3)).unwrap();
        assert!(r.total_cost < 1e-12);
        assert_eq!(r.assignment.num_clusters(), 3);
    }

    #[test]
    fn medoids_are_actual_objects() {
        let m = line_matrix(&[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        let r = kmedoids(&m, &KMedoidsConfig::new(2)).unwrap();
        for &mi in &r.medoids {
            assert!(mi < m.len());
        }
    }
}
