//! Distance-based outlier detection.
//!
//! The paper lists outlier detection among the applications of the
//! dissimilarity matrix ("record linkage and outlier detection problems").
//! Because the third party holds the full matrix, any distance-based outlier
//! score can be computed without further protocol rounds. This module
//! implements the classic k-nearest-neighbour distance score and a simple
//! threshold detector on top of it.

use serde::{Deserialize, Serialize};

use crate::condensed::CondensedDistanceMatrix;
use crate::error::ClusterError;

/// Outlier scores for every object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutlierScores {
    /// The k used for the k-NN distance.
    pub k: usize,
    /// Score of each object: its mean distance to its `k` nearest
    /// neighbours. Larger means more isolated.
    pub scores: Vec<f64>,
}

impl OutlierScores {
    /// Indices of the `count` highest-scoring objects, most anomalous first.
    pub fn top(&self, count: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.scores.len()).collect();
        order.sort_by(|&a, &b| self.scores[b].total_cmp(&self.scores[a]));
        order.truncate(count);
        order
    }

    /// Indices of objects whose score exceeds `mean + factor · stddev`.
    ///
    /// Scores within floating-point rounding of the threshold count as
    /// inliers: data that lands *exactly* at `mean + factor·σ` (common for
    /// symmetric synthetic inputs) must not flip to "outlier" because of the
    /// last bit of a division.
    pub fn above_sigma(&self, factor: f64) -> Vec<usize> {
        if self.scores.is_empty() {
            return Vec::new();
        }
        let n = self.scores.len() as f64;
        let mean = self.scores.iter().sum::<f64>() / n;
        let variance = self
            .scores
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / n;
        let threshold = mean + factor * variance.sqrt();
        let tolerance = 1e-9 * threshold.abs().max(1.0);
        (0..self.scores.len())
            .filter(|&i| self.scores[i] > threshold + tolerance)
            .collect()
    }
}

/// Computes the k-NN distance outlier score of every object in `matrix`.
pub fn knn_outlier_scores(
    matrix: &CondensedDistanceMatrix,
    k: usize,
) -> Result<OutlierScores, ClusterError> {
    let n = matrix.len();
    if n == 0 {
        return Err(ClusterError::EmptyInput);
    }
    if k == 0 || k >= n {
        return Err(ClusterError::InvalidParameter(format!(
            "k must satisfy 1 <= k < n (k = {k}, n = {n})"
        )));
    }
    let mut scores = Vec::with_capacity(n);
    let mut neighbour_distances = Vec::with_capacity(n - 1);
    for i in 0..n {
        neighbour_distances.clear();
        for j in 0..n {
            if j != i {
                neighbour_distances.push(matrix.get(i, j));
            }
        }
        neighbour_distances.sort_by(f64::total_cmp);
        let score = neighbour_distances[..k].iter().sum::<f64>() / k as f64;
        scores.push(score);
    }
    Ok(OutlierScores { k, scores })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_matrix(coords: &[f64]) -> CondensedDistanceMatrix {
        CondensedDistanceMatrix::from_fn(coords.len(), |i, j| (coords[i] - coords[j]).abs())
    }

    #[test]
    fn isolated_point_gets_the_highest_score() {
        // A tight group around 0 plus one point far away.
        let m = line_matrix(&[0.0, 0.1, 0.2, 0.3, 0.15, 50.0]);
        let scores = knn_outlier_scores(&m, 2).unwrap();
        assert_eq!(scores.top(1), vec![5]);
        assert!(scores.scores[5] > 10.0 * scores.scores[0]);
        assert_eq!(scores.above_sigma(1.5), vec![5]);
    }

    #[test]
    fn uniform_data_has_no_sigma_outliers() {
        let coords: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let m = line_matrix(&coords);
        let scores = knn_outlier_scores(&m, 3).unwrap();
        // Edge points score a bit higher but nothing is 3 sigma out.
        assert!(scores.above_sigma(3.0).is_empty());
        assert_eq!(scores.scores.len(), 20);
    }

    #[test]
    fn parameter_validation() {
        let m = line_matrix(&[0.0, 1.0, 2.0]);
        assert!(knn_outlier_scores(&m, 0).is_err());
        assert!(knn_outlier_scores(&m, 3).is_err());
        assert!(knn_outlier_scores(&CondensedDistanceMatrix::zeros(0), 1).is_err());
        assert!(knn_outlier_scores(&m, 2).is_ok());
    }

    #[test]
    fn top_handles_requests_larger_than_n() {
        let m = line_matrix(&[0.0, 1.0, 10.0]);
        let scores = knn_outlier_scores(&m, 1).unwrap();
        assert_eq!(scores.top(10).len(), 3);
        assert_eq!(scores.top(10)[0], 2);
    }
}
