//! External agreement metrics between two clusterings.
//!
//! Used by the accuracy experiments: the paper claims its protocol has "no
//! loss of accuracy" relative to clustering the pooled data centrally, in
//! contrast with sanitization-based approaches. These metrics quantify that
//! claim (Rand index, adjusted Rand index, purity, pairwise F-measure).

use crate::assignment::ClusterAssignment;
use crate::error::ClusterError;

/// Pair-counting contingency: (both same, same in a / split in b,
/// split in a / same in b, both split).
fn pair_counts(a: &ClusterAssignment, b: &ClusterAssignment) -> (u64, u64, u64, u64) {
    let n = a.len();
    let (mut ss, mut sd, mut ds, mut dd) = (0u64, 0u64, 0u64, 0u64);
    for i in 0..n {
        for j in (i + 1)..n {
            match (a.same_cluster(i, j), b.same_cluster(i, j)) {
                (true, true) => ss += 1,
                (true, false) => sd += 1,
                (false, true) => ds += 1,
                (false, false) => dd += 1,
            }
        }
    }
    (ss, sd, ds, dd)
}

fn check_lengths(a: &ClusterAssignment, b: &ClusterAssignment) -> Result<(), ClusterError> {
    if a.is_empty() {
        return Err(ClusterError::EmptyInput);
    }
    if a.len() != b.len() {
        return Err(ClusterError::DimensionMismatch {
            expected: a.len(),
            got: b.len(),
        });
    }
    Ok(())
}

/// Rand index in `[0, 1]`; 1 means identical partitions.
pub fn rand_index(a: &ClusterAssignment, b: &ClusterAssignment) -> Result<f64, ClusterError> {
    check_lengths(a, b)?;
    if a.len() == 1 {
        return Ok(1.0);
    }
    let (ss, sd, ds, dd) = pair_counts(a, b);
    Ok((ss + dd) as f64 / (ss + sd + ds + dd) as f64)
}

/// Adjusted Rand index (chance-corrected); 1 means identical partitions,
/// ~0 means chance-level agreement.
pub fn adjusted_rand_index(
    a: &ClusterAssignment,
    b: &ClusterAssignment,
) -> Result<f64, ClusterError> {
    check_lengths(a, b)?;
    let n = a.len() as f64;
    if a.len() == 1 {
        return Ok(1.0);
    }
    // Contingency table.
    let ka = a.num_clusters();
    let kb = b.num_clusters();
    let mut table = vec![vec![0f64; kb]; ka];
    for i in 0..a.len() {
        table[a.label(i)][b.label(i)] += 1.0;
    }
    let comb2 = |x: f64| x * (x - 1.0) / 2.0;
    let sum_ij: f64 = table.iter().flatten().map(|&x| comb2(x)).sum();
    let sum_a: f64 = table.iter().map(|row| comb2(row.iter().sum())).sum();
    let sum_b: f64 = (0..kb)
        .map(|j| comb2(table.iter().map(|row| row[j]).sum()))
        .sum();
    let expected = sum_a * sum_b / comb2(n);
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < 1e-12 {
        return Ok(1.0);
    }
    Ok((sum_ij - expected) / (max_index - expected))
}

/// Purity of `predicted` with respect to `truth`: the fraction of objects
/// that belong to the majority true class of their predicted cluster.
pub fn purity(
    predicted: &ClusterAssignment,
    truth: &ClusterAssignment,
) -> Result<f64, ClusterError> {
    check_lengths(predicted, truth)?;
    let mut correct = 0usize;
    for group in predicted.members() {
        if group.is_empty() {
            continue;
        }
        let mut counts = vec![0usize; truth.num_clusters()];
        for &i in &group {
            counts[truth.label(i)] += 1;
        }
        correct += counts.iter().copied().max().unwrap_or(0);
    }
    Ok(correct as f64 / predicted.len() as f64)
}

/// Pairwise F1 measure: harmonic mean of pair precision and recall of
/// `predicted` against `truth`.
pub fn pairwise_f_measure(
    predicted: &ClusterAssignment,
    truth: &ClusterAssignment,
) -> Result<f64, ClusterError> {
    check_lengths(predicted, truth)?;
    if predicted.len() == 1 {
        return Ok(1.0);
    }
    let (ss, sd, ds, _dd) = pair_counts(truth, predicted);
    // ss: pairs together in both; ds: together in predicted but not truth;
    // sd: together in truth but not predicted.
    let tp = ss as f64;
    let fp = ds as f64;
    let fn_ = sd as f64;
    if tp == 0.0 {
        return Ok(0.0);
    }
    let precision = tp / (tp + fp);
    let recall = tp / (tp + fn_);
    Ok(2.0 * precision * recall / (precision + recall))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assign(labels: &[usize]) -> ClusterAssignment {
        ClusterAssignment::from_labels(labels)
    }

    #[test]
    fn identical_partitions_score_one() {
        let a = assign(&[0, 0, 1, 1, 2]);
        let b = assign(&[5, 5, 9, 9, 7]); // same partition, different ids
        assert!((rand_index(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        assert!((purity(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        assert!((pairwise_f_measure(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_partitions_score_low() {
        // Truth: two clusters of 4. Prediction: all singletons.
        let truth = assign(&[0, 0, 0, 0, 1, 1, 1, 1]);
        let pred = assign(&[0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(pairwise_f_measure(&pred, &truth).unwrap() < 1e-12);
        let ari = adjusted_rand_index(&pred, &truth).unwrap();
        assert!(ari.abs() < 0.2, "ari {ari}");
        // Purity of singletons is trivially 1 (known weakness of purity).
        assert!((purity(&pred, &truth).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_agreement_is_between_zero_and_one() {
        let truth = assign(&[0, 0, 0, 1, 1, 1]);
        let pred = assign(&[0, 0, 1, 1, 1, 1]);
        let ri = rand_index(&pred, &truth).unwrap();
        let ari = adjusted_rand_index(&pred, &truth).unwrap();
        let f = pairwise_f_measure(&pred, &truth).unwrap();
        assert!(ri > 0.5 && ri < 1.0);
        assert!(ari > 0.0 && ari < 1.0);
        assert!(f > 0.5 && f < 1.0);
        let p = purity(&pred, &truth).unwrap();
        assert!(p > 0.7 && p < 1.0);
    }

    #[test]
    fn ari_is_symmetric() {
        let a = assign(&[0, 0, 1, 1, 2, 2]);
        let b = assign(&[0, 1, 1, 1, 2, 0]);
        assert!(
            (adjusted_rand_index(&a, &b).unwrap() - adjusted_rand_index(&b, &a).unwrap()).abs()
                < 1e-12
        );
    }

    #[test]
    fn input_validation() {
        let a = assign(&[0, 1]);
        let b = assign(&[0, 1, 1]);
        assert!(rand_index(&a, &b).is_err());
        assert!(adjusted_rand_index(&a, &b).is_err());
        assert!(purity(&a, &b).is_err());
        assert!(pairwise_f_measure(&a, &b).is_err());
        let empty = assign(&[]);
        assert!(rand_index(&empty, &empty).is_err());
    }

    #[test]
    fn single_object_edge_case() {
        let a = assign(&[0]);
        let b = assign(&[3]);
        assert_eq!(rand_index(&a, &b).unwrap(), 1.0);
        assert_eq!(adjusted_rand_index(&a, &b).unwrap(), 1.0);
        assert_eq!(pairwise_f_measure(&a, &b).unwrap(), 1.0);
    }
}
