//! Linkage criteria expressed as Lance–Williams recurrences.
//!
//! When clusters `i` and `j` (sizes `n_i`, `n_j`) merge, the distance from
//! the merged cluster to any other cluster `k` is
//!
//! ```text
//! d(k, i∪j) = α_i·d(k,i) + α_j·d(k,j) + β·d(i,j) + γ·|d(k,i) − d(k,j)|
//! ```
//!
//! with coefficients that depend only on the cluster sizes. All seven
//! classical linkages are provided.

use serde::{Deserialize, Serialize};

/// Linkage criterion for agglomerative clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Linkage {
    /// Nearest neighbour (minimum) linkage.
    Single,
    /// Furthest neighbour (maximum) linkage.
    Complete,
    /// Unweighted average linkage (UPGMA).
    #[default]
    Average,
    /// Weighted average linkage (WPGMA / McQuitty).
    Weighted,
    /// Ward's minimum-variance criterion.
    Ward,
    /// Centroid linkage (UPGMC).
    Centroid,
    /// Median linkage (WPGMC).
    Median,
}

impl Linkage {
    /// Every supported linkage, for exhaustive tests/benches.
    pub const ALL: [Linkage; 7] = [
        Linkage::Single,
        Linkage::Complete,
        Linkage::Average,
        Linkage::Weighted,
        Linkage::Ward,
        Linkage::Centroid,
        Linkage::Median,
    ];

    /// Whether the nearest-neighbor-chain algorithm is exact for this
    /// linkage.
    ///
    /// True for the *reducible* criteria — those whose Lance–Williams update
    /// satisfies `d(i∪j, k) ≥ min(d(i,k), d(j,k))`, so merging two clusters
    /// never pulls a third one closer. Centroid and median linkage violate
    /// reducibility (their dendrograms can contain inversions) and must use
    /// the textbook scan.
    pub fn nn_chain_exact(&self) -> bool {
        matches!(
            self,
            Linkage::Single
                | Linkage::Complete
                | Linkage::Average
                | Linkage::Weighted
                | Linkage::Ward
        )
    }

    /// Applies the Lance–Williams update.
    ///
    /// * `d_ki`, `d_kj` — distances from cluster `k` to the merging clusters.
    /// * `d_ij` — distance between the merging clusters.
    /// * `n_i`, `n_j`, `n_k` — cluster sizes.
    pub fn lance_williams(
        &self,
        d_ki: f64,
        d_kj: f64,
        d_ij: f64,
        n_i: usize,
        n_j: usize,
        n_k: usize,
    ) -> f64 {
        let (ni, nj, nk) = (n_i as f64, n_j as f64, n_k as f64);
        let (alpha_i, alpha_j, beta, gamma) = match self {
            Linkage::Single => (0.5, 0.5, 0.0, -0.5),
            Linkage::Complete => (0.5, 0.5, 0.0, 0.5),
            Linkage::Average => (ni / (ni + nj), nj / (ni + nj), 0.0, 0.0),
            Linkage::Weighted => (0.5, 0.5, 0.0, 0.0),
            Linkage::Ward => {
                let total = ni + nj + nk;
                ((ni + nk) / total, (nj + nk) / total, -nk / total, 0.0)
            }
            Linkage::Centroid => {
                let sum = ni + nj;
                (ni / sum, nj / sum, -(ni * nj) / (sum * sum), 0.0)
            }
            Linkage::Median => (0.5, 0.5, -0.25, 0.0),
        };
        alpha_i * d_ki + alpha_j * d_kj + beta * d_ij + gamma * (d_ki - d_kj).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_is_minimum_and_complete_is_maximum() {
        let d = Linkage::Single.lance_williams(3.0, 5.0, 1.0, 1, 1, 1);
        assert!((d - 3.0).abs() < 1e-12);
        let d = Linkage::Complete.lance_williams(3.0, 5.0, 1.0, 1, 1, 1);
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn average_weights_by_cluster_size() {
        // Cluster i has 3 members, j has 1: the update leans towards d_ki.
        let d = Linkage::Average.lance_williams(2.0, 10.0, 1.0, 3, 1, 1);
        assert!((d - (0.75 * 2.0 + 0.25 * 10.0)).abs() < 1e-12);
        // Weighted (WPGMA) ignores the sizes.
        let d = Linkage::Weighted.lance_williams(2.0, 10.0, 1.0, 3, 1, 1);
        assert!((d - 6.0).abs() < 1e-12);
    }

    #[test]
    fn ward_update_matches_hand_computation() {
        // n_i = n_j = n_k = 1: coefficients 2/3, 2/3, -1/3.
        let d = Linkage::Ward.lance_williams(4.0, 6.0, 2.0, 1, 1, 1);
        let expected = 2.0 / 3.0 * 4.0 + 2.0 / 3.0 * 6.0 - 1.0 / 3.0 * 2.0;
        assert!((d - expected).abs() < 1e-12);
    }

    #[test]
    fn centroid_and_median_subtract_merge_distance() {
        let d = Linkage::Centroid.lance_williams(5.0, 5.0, 4.0, 2, 2, 1);
        assert!(d < 5.0);
        let d = Linkage::Median.lance_williams(5.0, 5.0, 4.0, 2, 2, 1);
        assert!((d - (5.0 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn default_linkage_is_average() {
        assert_eq!(Linkage::default(), Linkage::Average);
    }

    #[test]
    fn all_constant_lists_each_variant_once() {
        let mut set = std::collections::HashSet::new();
        for l in Linkage::ALL {
            assert!(set.insert(format!("{l:?}")));
        }
        assert_eq!(set.len(), 7);
    }
}
