//! Priority-queue ("generic") agglomerative algorithm.
//!
//! The nearest-neighbor-chain engine is O(n²) but only exact for
//! *reducible* linkages; centroid and median linkage violate reducibility
//! (their Lance–Williams update can pull a third cluster closer than the
//! pair being merged), which previously forced them onto the O(n³)
//! textbook scan. This module implements Müllner's "generic" algorithm:
//! every candidate pair sits in a min-heap keyed by
//! `(distance, lower id, higher id)`, stale entries (an endpoint already
//! merged away) are discarded lazily on pop, and each merge pushes the
//! Lance–Williams distances from the new cluster to every survivor. Each
//! of the `n − 1` merges therefore pops/pushes O(n) heap entries:
//! **O(n² log n)** total, valid for *all* linkages because it always
//! extracts the true global minimum — inversions and all.
//!
//! The O(n³) scan stays available as
//! [`fit_naive`](crate::hierarchical::AgglomerativeClustering::fit_naive),
//! the oracle this engine is property-tested against.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::condensed::CondensedDistanceMatrix;
use crate::error::ClusterError;
use crate::hierarchical::dendrogram::Merge;
use crate::hierarchical::linkage::Linkage;

/// A candidate merge between active clusters `a < b` at `distance`.
///
/// Ordered so that a max-[`BinaryHeap`] pops the *smallest*
/// `(distance, a, b)` triple first — the same pair the textbook scan's
/// first-strict-minimum selection picks, so the two engines agree even
/// under distance ties.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    distance: f64,
    a: usize,
    b: usize,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the smallest triple must win the max-heap.
        other
            .distance
            .total_cmp(&self.distance)
            .then_with(|| other.a.cmp(&self.a))
            .then_with(|| other.b.cmp(&self.b))
    }
}

/// Runs the generic algorithm, returning merges in chronological order
/// with the same cluster-id convention as the naive scan (singletons
/// `0..n`, merge `s` creates id `n + s`).
pub fn generic_linkage(
    matrix: &CondensedDistanceMatrix,
    linkage: Linkage,
) -> Result<Vec<Merge>, ClusterError> {
    let n = matrix.len();
    if n == 0 {
        return Err(ClusterError::EmptyInput);
    }
    let total_ids = 2 * n - 1;
    let mut active = vec![false; total_ids];
    let mut sizes = vec![0usize; total_ids];
    for i in 0..n {
        active[i] = true;
        sizes[i] = 1;
    }
    // Dense distance lookup keyed by (min, max) id — the same layout the
    // naive scan uses; entries are written once and never mutated, which is
    // what makes lazy heap invalidation sound.
    let mut dist = vec![f64::NAN; total_ids * total_ids];
    let idx = |a: usize, b: usize| -> usize {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        lo * total_ids + hi
    };
    let mut heap = BinaryHeap::with_capacity(n * (n.saturating_sub(1)) / 2 + n);
    for i in 1..n {
        for j in 0..i {
            let d = matrix.get(i, j);
            dist[idx(i, j)] = d;
            heap.push(Candidate {
                distance: d,
                a: j,
                b: i,
            });
        }
    }

    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    let mut active_ids: Vec<usize> = (0..n).collect();
    for step in 0..n.saturating_sub(1) {
        // Pop until the top candidate joins two still-active clusters.
        let (a, b, d) = loop {
            let candidate = heap.pop().ok_or_else(|| {
                ClusterError::InvalidParameter(
                    "candidate heap drained before the dendrogram completed \
                     (non-finite distance?)"
                        .into(),
                )
            })?;
            if active[candidate.a] && active[candidate.b] {
                break (candidate.a, candidate.b, candidate.distance);
            }
        };
        let new_id = n + step;
        let size_a = sizes[a];
        let size_b = sizes[b];
        sizes[new_id] = size_a + size_b;
        active[a] = false;
        active[b] = false;
        active_ids.retain(|&x| x != a && x != b);
        for &k in &active_ids {
            let updated = linkage.lance_williams(
                dist[idx(k, a)],
                dist[idx(k, b)],
                d,
                size_a,
                size_b,
                sizes[k],
            );
            dist[idx(k, new_id)] = updated;
            heap.push(Candidate {
                distance: updated,
                a: k,
                b: new_id,
            });
        }
        active[new_id] = true;
        active_ids.push(new_id);
        merges.push(Merge {
            left: a.min(b),
            right: a.max(b),
            distance: d,
            size: size_a + size_b,
        });
    }
    Ok(merges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchical::AgglomerativeClustering;

    fn pseudo_random_matrix(n: usize, seed: u64) -> CondensedDistanceMatrix {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        };
        CondensedDistanceMatrix::from_fn(n, |_, _| next() * 10.0 + 0.01)
    }

    #[test]
    fn generic_matches_naive_for_every_linkage() {
        for seed in 0..4u64 {
            let m = pseudo_random_matrix(24, seed);
            for linkage in Linkage::ALL {
                let naive = AgglomerativeClustering::new(linkage).fit_naive(&m).unwrap();
                let generic = generic_linkage(&m, linkage).unwrap();
                assert_eq!(naive.merges().len(), generic.len(), "{linkage:?}");
                for (a, b) in naive.merges().iter().zip(&generic) {
                    assert_eq!((a.left, a.right, a.size), (b.left, b.right, b.size));
                    assert!((a.distance - b.distance).abs() < 1e-9, "{linkage:?}");
                }
            }
        }
    }

    #[test]
    fn generic_matches_naive_under_heavy_ties() {
        // Integer-quantised distances produce massive ties; the heap's
        // (distance, a, b) order must coincide with the scan's
        // first-strict-minimum choice.
        let m = CondensedDistanceMatrix::from_fn(30, |i, j| {
            ((i as i64 - j as i64).abs() % 5) as f64 + 1.0
        });
        for linkage in [Linkage::Centroid, Linkage::Median, Linkage::Average] {
            let naive = AgglomerativeClustering::new(linkage).fit_naive(&m).unwrap();
            let generic = generic_linkage(&m, linkage).unwrap();
            for (a, b) in naive.merges().iter().zip(&generic) {
                assert_eq!((a.left, a.right, a.size), (b.left, b.right, b.size));
            }
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(generic_linkage(&CondensedDistanceMatrix::zeros(0), Linkage::Centroid).is_err());
        let merges = generic_linkage(&CondensedDistanceMatrix::zeros(1), Linkage::Median).unwrap();
        assert!(merges.is_empty());
    }
}
