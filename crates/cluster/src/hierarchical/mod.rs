//! Agglomerative hierarchical clustering.
//!
//! The third party runs "the appropriate clustering algorithm" on the final
//! dissimilarity matrix; the paper argues for hierarchical methods. This
//! module implements the classic agglomerative scheme driven by
//! Lance–Williams distance updates so the whole family of standard linkages
//! is available.
//!
//! Three engines back [`AgglomerativeClustering::fit`]:
//!
//! * the **nearest-neighbor-chain** algorithm (`nnchain`) — O(n²) time and
//!   O(n) extra space, exact for the reducible linkages (single, complete,
//!   average, weighted, Ward); used automatically whenever
//!   [`Linkage::nn_chain_exact`] holds;
//! * the **priority-queue "generic"** algorithm (`generic`) — O(n² log n),
//!   exact for *every* linkage because it always extracts the global-minimum
//!   pair; used for the non-reducible centroid/median linkages, whose
//!   inversions break the chain invariant;
//! * the **textbook O(n³) scan** ([`AgglomerativeClustering::fit_naive`]) —
//!   retained as the auditable test oracle both faster engines are
//!   property-tested against.

pub mod dendrogram;
mod generic;
pub mod linkage;
mod nnchain;

pub use dendrogram::{Dendrogram, Merge};
pub use linkage::Linkage;

use crate::assignment::ClusterAssignment;
use crate::condensed::CondensedDistanceMatrix;
use crate::error::ClusterError;

/// Agglomerative clustering configured with a linkage criterion.
#[derive(Debug, Clone, Copy, Default)]
pub struct AgglomerativeClustering {
    linkage: Linkage,
}

impl AgglomerativeClustering {
    /// Creates the algorithm with the given linkage.
    pub fn new(linkage: Linkage) -> Self {
        AgglomerativeClustering { linkage }
    }

    /// Linkage criterion in use.
    pub fn linkage(&self) -> Linkage {
        self.linkage
    }

    /// Builds the full dendrogram for `matrix`.
    ///
    /// Dispatches to the O(n²) nearest-neighbor-chain algorithm for the
    /// reducible linkages ([`Linkage::nn_chain_exact`]) and to the
    /// O(n² log n) priority-queue generic algorithm for centroid and median
    /// linkage, whose inversions the chain cannot handle.
    pub fn fit(&self, matrix: &CondensedDistanceMatrix) -> Result<Dendrogram, ClusterError> {
        if self.linkage.nn_chain_exact() {
            let merges = nnchain::nn_chain(matrix, self.linkage)?;
            return Ok(Dendrogram::new(matrix.len(), merges));
        }
        let merges = generic::generic_linkage(matrix, self.linkage)?;
        Ok(Dendrogram::new(matrix.len(), merges))
    }

    /// Builds the full dendrogram with the O(n³) textbook algorithm (scan
    /// for the closest active pair, merge, update distances with the
    /// Lance–Williams formula).
    ///
    /// Kept public as the auditable oracle the NN-chain engine is verified
    /// against, and as the engine for non-reducible linkages.
    pub fn fit_naive(&self, matrix: &CondensedDistanceMatrix) -> Result<Dendrogram, ClusterError> {
        let n = matrix.len();
        if n == 0 {
            return Err(ClusterError::EmptyInput);
        }
        // Working pairwise distances between *active* clusters, indexed by
        // cluster id. Ids 0..n are singletons; each merge creates id n+step.
        let total_ids = 2 * n - 1;
        let mut active: Vec<bool> = vec![false; total_ids];
        let mut sizes: Vec<usize> = vec![0; total_ids];
        for i in 0..n {
            active[i] = true;
            sizes[i] = 1;
        }
        // Distance lookup between cluster ids; stored in a dense map keyed by
        // (min, max). For n objects this holds at most (2n)² / 2 entries.
        let mut dist: Vec<f64> = vec![f64::NAN; total_ids * total_ids];
        let idx = |a: usize, b: usize| -> usize {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            lo * total_ids + hi
        };
        for i in 1..n {
            for j in 0..i {
                dist[idx(i, j)] = matrix.get(i, j);
            }
        }

        let mut merges = Vec::with_capacity(n.saturating_sub(1));
        let mut active_ids: Vec<usize> = (0..n).collect();
        for step in 0..n.saturating_sub(1) {
            // Find the closest active pair.
            let mut best = (usize::MAX, usize::MAX, f64::INFINITY);
            for (ai, &a) in active_ids.iter().enumerate() {
                for &b in active_ids.iter().skip(ai + 1) {
                    let d = dist[idx(a, b)];
                    if d < best.2 {
                        best = (a, b, d);
                    }
                }
            }
            let (a, b, d) = best;
            debug_assert!(a != usize::MAX, "no active pair found");
            let new_id = n + step;
            let size_a = sizes[a];
            let size_b = sizes[b];
            sizes[new_id] = size_a + size_b;
            // Lance–Williams update against every other active cluster.
            for &k in &active_ids {
                if k == a || k == b {
                    continue;
                }
                let d_ka = dist[idx(k, a)];
                let d_kb = dist[idx(k, b)];
                let updated = self
                    .linkage
                    .lance_williams(d_ka, d_kb, d, size_a, size_b, sizes[k]);
                dist[idx(k, new_id)] = updated;
            }
            active[a] = false;
            active[b] = false;
            active[new_id] = true;
            active_ids.retain(|&x| x != a && x != b);
            active_ids.push(new_id);
            merges.push(Merge {
                left: a.min(b),
                right: a.max(b),
                distance: d,
                size: size_a + size_b,
            });
        }
        Ok(Dendrogram::new(n, merges))
    }

    /// Convenience: fits the dendrogram and cuts it into `k` flat clusters.
    pub fn fit_k(
        &self,
        matrix: &CondensedDistanceMatrix,
        k: usize,
    ) -> Result<ClusterAssignment, ClusterError> {
        self.fit(matrix)?.cut_into(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight groups far apart; every linkage must separate them.
    fn two_group_matrix() -> CondensedDistanceMatrix {
        // Objects 0,1,2 close together; 3,4,5 close together; groups far.
        let coords: [f64; 6] = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        CondensedDistanceMatrix::from_fn(coords.len(), |i, j| (coords[i] - coords[j]).abs())
    }

    #[test]
    fn all_linkages_recover_two_obvious_groups() {
        for linkage in Linkage::ALL {
            let algo = AgglomerativeClustering::new(linkage);
            let assignment = algo.fit_k(&two_group_matrix(), 2).unwrap();
            assert_eq!(assignment.num_clusters(), 2, "{linkage:?}");
            assert!(assignment.same_cluster(0, 1), "{linkage:?}");
            assert!(assignment.same_cluster(1, 2), "{linkage:?}");
            assert!(assignment.same_cluster(3, 4), "{linkage:?}");
            assert!(!assignment.same_cluster(0, 3), "{linkage:?}");
        }
    }

    #[test]
    fn dendrogram_has_n_minus_one_merges_with_monotone_sizes() {
        let d = AgglomerativeClustering::new(Linkage::Average)
            .fit(&two_group_matrix())
            .unwrap();
        assert_eq!(d.merges().len(), 5);
        assert_eq!(d.merges().last().unwrap().size, 6);
    }

    #[test]
    fn single_object_and_empty_inputs() {
        let algo = AgglomerativeClustering::default();
        assert!(algo.fit(&CondensedDistanceMatrix::zeros(0)).is_err());
        let d = algo.fit(&CondensedDistanceMatrix::zeros(1)).unwrap();
        assert!(d.merges().is_empty());
        let a = d.cut_into(1).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a.num_clusters(), 1);
    }

    #[test]
    fn single_linkage_chains_and_complete_does_not() {
        // A chain of points each 1 apart, plus one point 1.5 from the end.
        let coords: [f64; 5] = [0.0, 1.0, 2.0, 3.0, 4.5];
        let m =
            CondensedDistanceMatrix::from_fn(coords.len(), |i, j| (coords[i] - coords[j]).abs());
        let single = AgglomerativeClustering::new(Linkage::Single)
            .fit_k(&m, 2)
            .unwrap();
        // Single linkage keeps the chain 0..=3 together.
        assert!(single.same_cluster(0, 3));
        let complete = AgglomerativeClustering::new(Linkage::Complete)
            .fit(&m)
            .unwrap();
        // Complete linkage's final merge happens at the full diameter.
        let last = complete.merges().last().unwrap();
        assert!((last.distance - 4.5).abs() < 1e-9);
    }

    #[test]
    fn ward_prefers_compact_clusters() {
        let m = two_group_matrix();
        let assignment = AgglomerativeClustering::new(Linkage::Ward)
            .fit_k(&m, 3)
            .unwrap();
        assert_eq!(assignment.num_clusters(), 3);
        // Splitting into 3 keeps each original group intact on one side.
        assert!(assignment.same_cluster(3, 4) && assignment.same_cluster(4, 5));
    }

    /// Regression: under massive distance ties, floating-point noise can sort
    /// an NN-chain merge marginally before the merge that produced one of its
    /// operands; the union-find relabelling must still produce a well-formed
    /// dendrogram (n − 1 merges, final size n, monotone heights, clean cuts).
    #[test]
    fn nn_chain_stays_well_formed_under_massive_ties() {
        let n = 60;
        let m = CondensedDistanceMatrix::from_fn(n, |i, j| {
            ((i as i64 - j as i64).abs() % 7) as f64 + 1.0
        });
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Weighted,
            Linkage::Ward,
        ] {
            let d = AgglomerativeClustering::new(linkage).fit(&m).unwrap();
            assert_eq!(d.merges().len(), n - 1, "{linkage:?}");
            assert_eq!(d.merges().last().unwrap().size, n, "{linkage:?}");
            assert!(
                d.merges()
                    .windows(2)
                    .all(|w| w[0].distance <= w[1].distance + 1e-12),
                "{linkage:?}: heights must be non-decreasing"
            );
            for k in [1, 2, 5, n] {
                assert_eq!(
                    d.cut_into(k).unwrap().num_clusters(),
                    k,
                    "{linkage:?} k={k}"
                );
            }
        }
    }
}
