//! Dendrograms and flat-cluster extraction.

use serde::{Deserialize, Serialize};

use crate::assignment::ClusterAssignment;
use crate::error::ClusterError;

/// One agglomeration step.
///
/// Cluster ids follow the SciPy convention: ids `0..n` are the original
/// objects; the merge performed at step `s` creates cluster id `n + s`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Merge {
    /// Smaller of the two merged cluster ids.
    pub left: usize,
    /// Larger of the two merged cluster ids.
    pub right: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
    /// Number of original objects in the merged cluster.
    pub size: usize,
}

/// The full merge history of an agglomerative clustering run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Creates a dendrogram over `n` objects from its merge list.
    pub fn new(n: usize, merges: Vec<Merge>) -> Self {
        Dendrogram { n, merges }
    }

    /// Number of original objects.
    pub fn num_objects(&self) -> usize {
        self.n
    }

    /// The merge steps in execution order.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cuts the dendrogram into exactly `k` flat clusters by undoing the
    /// last `k − 1` merges.
    pub fn cut_into(&self, k: usize) -> Result<ClusterAssignment, ClusterError> {
        if k == 0 || k > self.n {
            return Err(ClusterError::InvalidClusterCount {
                requested: k,
                objects: self.n,
            });
        }
        let merges_to_apply = self.n - k;
        self.assignment_after(merges_to_apply)
    }

    /// Cuts the dendrogram at a distance threshold: merges with distance
    /// strictly greater than `threshold` are not applied.
    pub fn cut_at_distance(&self, threshold: f64) -> Result<ClusterAssignment, ClusterError> {
        let merges_to_apply = self
            .merges
            .iter()
            .take_while(|m| m.distance <= threshold)
            .count();
        self.assignment_after(merges_to_apply)
    }

    fn assignment_after(&self, merges_to_apply: usize) -> Result<ClusterAssignment, ClusterError> {
        if self.n == 0 {
            return Err(ClusterError::EmptyInput);
        }
        // Union-find over cluster ids.
        let total_ids = self.n + merges_to_apply;
        let mut parent: Vec<usize> = (0..total_ids).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (step, merge) in self.merges.iter().take(merges_to_apply).enumerate() {
            let new_id = self.n + step;
            let l = find(&mut parent, merge.left);
            let r = find(&mut parent, merge.right);
            parent[l] = new_id;
            parent[r] = new_id;
        }
        let labels: Vec<usize> = (0..self.n).map(|i| find(&mut parent, i)).collect();
        Ok(ClusterAssignment::from_labels(&labels))
    }

    /// Cophenetic distance between two objects: the linkage distance of the
    /// merge that first joined them (∞ if they are never joined).
    pub fn cophenetic_distance(&self, a: usize, b: usize) -> f64 {
        if a == b {
            return 0.0;
        }
        // Replay the merges tracking each object's current cluster id.
        let mut current: Vec<usize> = (0..self.n).collect();
        for (step, merge) in self.merges.iter().enumerate() {
            let new_id = self.n + step;
            let ca = current[a];
            let cb = current[b];
            let joins_a = ca == merge.left || ca == merge.right;
            let joins_b = cb == merge.left || cb == merge.right;
            if joins_a && joins_b {
                return merge.distance;
            }
            for c in current.iter_mut() {
                if *c == merge.left || *c == merge.right {
                    *c = new_id;
                }
            }
        }
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built dendrogram over 4 objects:
    /// step 0 merges {0,1} at 1.0 → id 4; step 1 merges {2,3} at 2.0 → id 5;
    /// step 2 merges {4,5} at 5.0 → id 6.
    fn sample() -> Dendrogram {
        Dendrogram::new(
            4,
            vec![
                Merge {
                    left: 0,
                    right: 1,
                    distance: 1.0,
                    size: 2,
                },
                Merge {
                    left: 2,
                    right: 3,
                    distance: 2.0,
                    size: 2,
                },
                Merge {
                    left: 4,
                    right: 5,
                    distance: 5.0,
                    size: 4,
                },
            ],
        )
    }

    #[test]
    fn cut_into_k_clusters() {
        let d = sample();
        let a4 = d.cut_into(4).unwrap();
        assert_eq!(a4.num_clusters(), 4);
        let a2 = d.cut_into(2).unwrap();
        assert_eq!(a2.num_clusters(), 2);
        assert!(a2.same_cluster(0, 1));
        assert!(a2.same_cluster(2, 3));
        assert!(!a2.same_cluster(1, 2));
        let a1 = d.cut_into(1).unwrap();
        assert_eq!(a1.num_clusters(), 1);
        assert!(d.cut_into(0).is_err());
        assert!(d.cut_into(5).is_err());
    }

    #[test]
    fn cut_at_distance_thresholds() {
        let d = sample();
        let a = d.cut_at_distance(0.5).unwrap();
        assert_eq!(a.num_clusters(), 4);
        let a = d.cut_at_distance(1.5).unwrap();
        assert_eq!(a.num_clusters(), 3);
        let a = d.cut_at_distance(10.0).unwrap();
        assert_eq!(a.num_clusters(), 1);
    }

    #[test]
    fn cophenetic_distances_match_merge_heights() {
        let d = sample();
        assert_eq!(d.cophenetic_distance(0, 0), 0.0);
        assert!((d.cophenetic_distance(0, 1) - 1.0).abs() < 1e-12);
        assert!((d.cophenetic_distance(2, 3) - 2.0).abs() < 1e-12);
        assert!((d.cophenetic_distance(0, 3) - 5.0).abs() < 1e-12);
        // Symmetric.
        assert_eq!(d.cophenetic_distance(3, 0), d.cophenetic_distance(0, 3));
    }

    #[test]
    fn partial_dendrogram_gives_infinite_cophenetic_distance() {
        let d = Dendrogram::new(
            3,
            vec![Merge {
                left: 0,
                right: 1,
                distance: 1.0,
                size: 2,
            }],
        );
        assert!(d.cophenetic_distance(0, 2).is_infinite());
    }
}
