//! Nearest-neighbor-chain agglomeration (O(n²) time, O(n) extra space).
//!
//! The textbook agglomerative loop re-scans every active pair each step,
//! costing O(n³). For *reducible* linkages — single, complete, average
//! (UPGMA), weighted (WPGMA) and Ward, i.e. those whose Lance–Williams
//! update satisfies `d(i∪j, k) ≥ min(d(i,k), d(j,k))` — merging two clusters
//! never makes a third cluster closer to the merged pair than it was to
//! either part. Under that guarantee, following nearest-neighbor links until
//! a *reciprocal* pair is found always discovers a pair that the textbook
//! algorithm would eventually merge at the same height, so merging
//! reciprocal pairs greedily produces the exact same dendrogram heights
//! (Benzécri 1982, Murtagh 1983 — the algorithm scipy and fastcluster use).
//!
//! The chain emits merges out of height order, so the merge list is stably
//! sorted by height afterwards and relabelled with a union-find into the
//! SciPy id convention ([`Merge`]'s contract).
//!
//! Tie semantics: when all pairwise and derived distances are distinct (the
//! generic case — continuous dissimilarities), the dendrogram is unique and
//! NN-chain reproduces the textbook scan's heights exactly. Under massive
//! ties the merge order is ambiguous; both engines then return *a* valid
//! dendrogram of the linkage, but history-dependent criteria (notably
//! weighted/WPGMA) may disagree on heights between any two valid orders.
//! The union-find relabelling keeps the NN-chain output a well-formed tree
//! in every case.

use crate::condensed::CondensedDistanceMatrix;
use crate::error::ClusterError;
use crate::hierarchical::dendrogram::Merge;
use crate::hierarchical::linkage::Linkage;

/// Index of pair `(i, j)`, `i != j`, in the condensed working buffer.
#[inline]
fn cond(i: usize, j: usize) -> usize {
    let (hi, lo) = if i > j { (i, j) } else { (j, i) };
    hi * (hi - 1) / 2 + lo
}

/// Runs the NN-chain algorithm, returning the merge list in SciPy id
/// convention sorted by non-decreasing height.
///
/// Caller contract: `matrix.len() >= 1` and `linkage` is reducible
/// ([`Linkage::nn_chain_exact`]).
pub(super) fn nn_chain(
    matrix: &CondensedDistanceMatrix,
    linkage: Linkage,
) -> Result<Vec<Merge>, ClusterError> {
    let n = matrix.len();
    if n == 0 {
        return Err(ClusterError::EmptyInput);
    }
    debug_assert!(
        linkage.nn_chain_exact(),
        "NN-chain is only exact for reducible linkages"
    );

    // Working distances between *slots* (original object indices). A merged
    // cluster keeps living in one of its constituent slots, so the buffer
    // never grows beyond the initial n(n−1)/2 entries.
    let mut d: Vec<f64> = matrix.condensed_values().to_vec();
    // size[slot] > 0 marks an active slot.
    let mut size: Vec<usize> = vec![1; n];
    // Raw merges as (slot_x, slot_y, height); the merged cluster stays in
    // slot_y.
    let mut raw: Vec<(usize, usize, f64)> = Vec::with_capacity(n.saturating_sub(1));
    let mut chain: Vec<usize> = Vec::with_capacity(n);

    for _ in 0..n.saturating_sub(1) {
        // (Re)start the chain from any active slot.
        if chain.is_empty() {
            let start = size
                .iter()
                .position(|&s| s > 0)
                .expect("an active slot remains");
            chain.push(start);
        }
        // Follow nearest-neighbor links until they are reciprocal. Ties
        // prefer the chain predecessor, which guarantees termination.
        let (x, y, height) = loop {
            let x = *chain.last().expect("chain is non-empty");
            let mut y = usize::MAX;
            let mut best = f64::INFINITY;
            if chain.len() >= 2 {
                y = chain[chain.len() - 2];
                best = d[cond(x, y)];
            }
            for i in 0..n {
                if size[i] > 0 && i != x && d[cond(x, i)] < best {
                    best = d[cond(x, i)];
                    y = i;
                }
            }
            debug_assert!(y != usize::MAX, "every active slot has a nearest neighbor");
            if chain.len() >= 2 && y == chain[chain.len() - 2] {
                chain.pop();
                chain.pop();
                break (x, y, best);
            }
            chain.push(y);
        };

        // Lance–Williams update of every other active slot against the
        // merged cluster, written into slot y.
        let (size_x, size_y) = (size[x], size[y]);
        for i in 0..n {
            if size[i] > 0 && i != x && i != y {
                let d_ix = d[cond(i, x)];
                let d_iy = d[cond(i, y)];
                d[cond(i, y)] = linkage.lance_williams(d_ix, d_iy, height, size_x, size_y, size[i]);
            }
        }
        size[y] = size_x + size_y;
        size[x] = 0;
        raw.push((x, y, height));
    }

    // Stable sort by height, then relabel slots into SciPy cluster ids. The
    // raw merges form a spanning tree over the slots (every merge retires a
    // distinct slot), so resolving each slot through a union-find yields a
    // valid dendrogram in *any* processing order — which matters when
    // floating-point ties let a chain's later merge sort marginally before
    // the merge that produced one of its operands.
    raw.sort_by(|a, b| a.2.total_cmp(&b.2));
    let total_ids = 2 * n - 1;
    let mut parent: Vec<usize> = (0..total_ids).collect();
    let mut id_size: Vec<usize> = vec![1; total_ids];
    fn find(parent: &mut [usize], mut id: usize) -> usize {
        while parent[id] != id {
            parent[id] = parent[parent[id]];
            id = parent[id];
        }
        id
    }
    let mut merges = Vec::with_capacity(raw.len());
    for (step, (x, y, height)) in raw.into_iter().enumerate() {
        let new_id = n + step;
        let id_x = find(&mut parent, x);
        let id_y = find(&mut parent, y);
        debug_assert_ne!(id_x, id_y, "spanning-tree edges never close a cycle");
        let merged_size = id_size[id_x] + id_size[id_y];
        id_size[new_id] = merged_size;
        parent[id_x] = new_id;
        parent[id_y] = new_id;
        merges.push(Merge {
            left: id_x.min(id_y),
            right: id_x.max(id_y),
            distance: height,
            size: merged_size,
        });
    }
    Ok(merges)
}
