//! Packed symmetric distance matrix.
//!
//! This is the paper's Figure 2: an object-by-object structure where only
//! entries below the diagonal are stored because `d[i][j] = d[j][i]` and
//! `d[i][i] = 0`. The `m·(m−1)/2` entries are kept in a single contiguous
//! vector in row-major lower-triangular order.

use serde::{Deserialize, Serialize};

use crate::error::ClusterError;

/// Below this many elements the parallel reductions run sequentially:
/// thread spawn latency dwarfs the loop itself for small matrices.
const MIN_PARALLEL_LEN: usize = 1 << 14;

/// Contiguous partition lengths for splitting `len` elements across
/// `threads` workers: the deterministic split every parallel reduction in
/// this module uses, so partition boundaries (and thus combine order) never
/// depend on scheduling. Returns a single partition when parallelism is not
/// worth it.
fn partition_sizes(len: usize, threads: usize) -> Vec<usize> {
    let workers = threads.min(len / (MIN_PARALLEL_LEN / 2)).max(1);
    if workers < 2 || len < MIN_PARALLEL_LEN {
        return vec![len];
    }
    let base = len / workers;
    let extra = len % workers;
    (0..workers)
        .map(|i| base + usize::from(i < extra))
        .collect()
}

/// A condensed (lower-triangular, zero-diagonal) distance matrix over `n`
/// objects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CondensedDistanceMatrix {
    n: usize,
    /// Entry `(i, j)` with `i > j` lives at `i·(i−1)/2 + j`.
    values: Vec<f64>,
}

impl CondensedDistanceMatrix {
    /// Creates an all-zero matrix over `n` objects.
    pub fn zeros(n: usize) -> Self {
        CondensedDistanceMatrix {
            n,
            values: vec![0.0; n * (n.saturating_sub(1)) / 2],
        }
    }

    /// Creates a matrix from the packed lower-triangular values.
    pub fn from_condensed(n: usize, values: Vec<f64>) -> Result<Self, ClusterError> {
        let expected = n * n.saturating_sub(1) / 2;
        if values.len() != expected {
            return Err(ClusterError::DimensionMismatch {
                expected,
                got: values.len(),
            });
        }
        Ok(CondensedDistanceMatrix { n, values })
    }

    /// Creates a matrix by evaluating `f(i, j)` for every pair `i > j`.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(n: usize, mut f: F) -> Self {
        let mut m = CondensedDistanceMatrix::zeros(n);
        for i in 1..n {
            for j in 0..i {
                let v = f(i, j);
                m.set(i, j, v);
            }
        }
        m
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers zero objects.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The packed values (row-major lower triangle).
    pub fn condensed_values(&self) -> &[f64] {
        &self.values
    }

    #[inline]
    fn offset(&self, i: usize, j: usize) -> usize {
        debug_assert!(i != j && i < self.n && j < self.n);
        let (hi, lo) = if i > j { (i, j) } else { (j, i) };
        hi * (hi - 1) / 2 + lo
    }

    /// Distance between objects `i` and `j` (0 when `i == j`).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        if i == j {
            0.0
        } else {
            self.values[self.offset(i, j)]
        }
    }

    /// Checked variant of [`get`](Self::get).
    pub fn try_get(&self, i: usize, j: usize) -> Result<f64, ClusterError> {
        if i >= self.n {
            return Err(ClusterError::IndexOutOfBounds {
                index: i,
                size: self.n,
            });
        }
        if j >= self.n {
            return Err(ClusterError::IndexOutOfBounds {
                index: j,
                size: self.n,
            });
        }
        Ok(self.get(i, j))
    }

    /// Sets the distance between `i` and `j` (`i != j`).
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.n && j < self.n, "index out of bounds");
        assert!(i != j, "diagonal entries are fixed at zero");
        let off = self.offset(i, j);
        self.values[off] = value;
    }

    /// Largest stored distance (0 for matrices with fewer than two objects).
    pub fn max_value(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// [`max_value`](Self::max_value) computed by `threads` scoped workers
    /// over contiguous partitions of the condensed vector.
    ///
    /// Bit-identical to the sequential fold: each partition folds
    /// left-to-right from `0.0` exactly as the sequential loop does, and the
    /// per-partition maxima are combined in partition order. Because `max`
    /// over (NaN-free) floats is associative and the sequential fold also
    /// starts at `0.0`, regrouping the fold at partition boundaries selects
    /// the same value. Distances here are non-negative protocol outputs, so
    /// the NaN/`-0.0` caveats of IEEE `maxNum` never arise.
    pub fn max_value_parallel(&self, threads: usize) -> f64 {
        let partitions = partition_sizes(self.values.len(), threads);
        if partitions.len() < 2 {
            return self.max_value();
        }
        let mut maxima = vec![0.0f64; partitions.len()];
        std::thread::scope(|scope| {
            let mut rest = &self.values[..];
            for (&size, out) in partitions.iter().zip(&mut maxima) {
                let (part, tail) = rest.split_at(size);
                rest = tail;
                scope.spawn(move || *out = part.iter().copied().fold(0.0, f64::max));
            }
        });
        maxima.into_iter().fold(0.0, f64::max)
    }

    /// Smallest stored distance between distinct objects.
    pub fn min_value(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Divides every entry by the maximum, scaling distances into `[0, 1]`.
    ///
    /// This is the paper's normalisation step (§5 step 4); matrices whose
    /// maximum is zero are left untouched.
    pub fn normalize_max(&mut self) {
        let max = self.max_value();
        if max > 0.0 {
            for v in &mut self.values {
                *v /= max;
            }
        }
    }

    /// Adds `scale · other` element-wise into `self` without allocating.
    ///
    /// This is the building block of the paper's §5 merge: callers fold
    /// `weight / max` of each per-attribute matrix straight into one
    /// accumulator, so neither a normalised copy of the attribute matrix nor
    /// an intermediate weighted matrix is ever materialised.
    pub fn accumulate_scaled(
        &mut self,
        other: &CondensedDistanceMatrix,
        scale: f64,
    ) -> Result<(), ClusterError> {
        if other.n != self.n {
            return Err(ClusterError::DimensionMismatch {
                expected: self.n,
                got: other.n,
            });
        }
        if scale < 0.0 || !scale.is_finite() {
            return Err(ClusterError::InvalidParameter(format!(
                "accumulation scale must be finite and non-negative, got {scale}"
            )));
        }
        for (o, &v) in self.values.iter_mut().zip(&other.values) {
            *o += scale * v;
        }
        Ok(())
    }

    /// [`accumulate_scaled`](Self::accumulate_scaled) with the element loop
    /// split across `threads` scoped workers on contiguous index ranges.
    ///
    /// `*o += scale · v` touches each element independently, so any
    /// partitioning performs exactly the sequential per-element operations —
    /// the result is bit-identical regardless of thread count.
    pub fn accumulate_scaled_parallel(
        &mut self,
        other: &CondensedDistanceMatrix,
        scale: f64,
        threads: usize,
    ) -> Result<(), ClusterError> {
        if other.n != self.n {
            return Err(ClusterError::DimensionMismatch {
                expected: self.n,
                got: other.n,
            });
        }
        if scale < 0.0 || !scale.is_finite() {
            return Err(ClusterError::InvalidParameter(format!(
                "accumulation scale must be finite and non-negative, got {scale}"
            )));
        }
        let partitions = partition_sizes(self.values.len(), threads);
        if partitions.len() < 2 {
            for (o, &v) in self.values.iter_mut().zip(&other.values) {
                *o += scale * v;
            }
            return Ok(());
        }
        std::thread::scope(|scope| {
            let mut acc_rest = &mut self.values[..];
            let mut src_rest = &other.values[..];
            for &size in &partitions {
                let (acc, acc_tail) = acc_rest.split_at_mut(size);
                let (src, src_tail) = src_rest.split_at(size);
                acc_rest = acc_tail;
                src_rest = src_tail;
                scope.spawn(move || {
                    for (o, &v) in acc.iter_mut().zip(src) {
                        *o += scale * v;
                    }
                });
            }
        });
        Ok(())
    }

    /// Returns a weighted element-wise combination of per-attribute
    /// matrices: `Σ w_a · d_a`, the paper's merge of per-attribute
    /// dissimilarity matrices under a weight vector.
    pub fn weighted_merge(
        matrices: &[CondensedDistanceMatrix],
        weights: &[f64],
    ) -> Result<CondensedDistanceMatrix, ClusterError> {
        if matrices.is_empty() {
            return Err(ClusterError::EmptyInput);
        }
        if matrices.len() != weights.len() {
            return Err(ClusterError::DimensionMismatch {
                expected: matrices.len(),
                got: weights.len(),
            });
        }
        let n = matrices[0].n;
        for m in matrices {
            if m.n != n {
                return Err(ClusterError::DimensionMismatch {
                    expected: n,
                    got: m.n,
                });
            }
        }
        let mut out = CondensedDistanceMatrix::zeros(n);
        for (m, &w) in matrices.iter().zip(weights) {
            if w < 0.0 {
                return Err(ClusterError::InvalidParameter(format!(
                    "negative attribute weight {w}"
                )));
            }
            for (o, &v) in out.values.iter_mut().zip(&m.values) {
                *o += w * v;
            }
        }
        Ok(out)
    }

    /// Scatters a rectangular cross-block of distances into the condensed
    /// triangle: entry `(row_offset + m, col_offset + n)` takes
    /// `values[m · cols + n]`.
    ///
    /// This is the incremental counterpart of merging a whole
    /// `rows × cols` pairwise block at the end: the chunked protocol
    /// streams deliver a few rows at a time (`row_offset` advancing with
    /// each chunk) and the accumulator absorbs them as they arrive. The
    /// block must sit strictly below the diagonal
    /// (`col_offset + cols ≤ row_offset`).
    pub fn set_block(
        &mut self,
        row_offset: usize,
        col_offset: usize,
        cols: usize,
        values: &[f64],
    ) -> Result<(), ClusterError> {
        if cols == 0 {
            return Ok(());
        }
        if !values.len().is_multiple_of(cols) {
            return Err(ClusterError::DimensionMismatch {
                expected: cols,
                got: values.len(),
            });
        }
        let rows = values.len() / cols;
        if col_offset + cols > row_offset {
            return Err(ClusterError::InvalidParameter(format!(
                "block columns {}..{} overlap rows starting at {row_offset}",
                col_offset,
                col_offset + cols
            )));
        }
        if row_offset + rows > self.n {
            return Err(ClusterError::IndexOutOfBounds {
                index: row_offset + rows,
                size: self.n,
            });
        }
        for (m, row) in values.chunks_exact(cols).enumerate() {
            let i = row_offset + m;
            let base = i * (i - 1) / 2 + col_offset;
            self.values[base..base + cols].copy_from_slice(row);
        }
        Ok(())
    }

    /// Maximum absolute element-wise difference to another matrix of the
    /// same size (∞ if sizes differ). Used by the accuracy experiments to
    /// show the privacy-preserving matrix equals the centralized one.
    pub fn max_abs_difference(&self, other: &CondensedDistanceMatrix) -> f64 {
        if self.n != other.n {
            return f64::INFINITY;
        }
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// Incrementally merges normalised, weighted per-attribute matrices into
/// one final matrix.
///
/// The whole-matrix path collects every per-attribute matrix and merges
/// them at the end; a streaming session instead folds each attribute in as
/// soon as it completes and then drops it, so at most one per-attribute
/// matrix is alive alongside the accumulator. Pushing
/// `(weight / max) · d_a` here performs exactly the same float operations
/// in the same order as the batch merge, so the two paths produce
/// bit-identical results.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeAccumulator {
    acc: CondensedDistanceMatrix,
    attributes: usize,
}

impl MergeAccumulator {
    /// Creates an empty accumulator over `n` objects.
    pub fn new(n: usize) -> Self {
        MergeAccumulator {
            acc: CondensedDistanceMatrix::zeros(n),
            attributes: 0,
        }
    }

    /// Folds one completed attribute matrix in under `weight`, normalising
    /// by the matrix's maximum (the paper's §5 step 4, without a copy).
    pub fn push_normalized(
        &mut self,
        matrix: &CondensedDistanceMatrix,
        weight: f64,
    ) -> Result<(), ClusterError> {
        let max = matrix.max_value();
        let scale = if max > 0.0 { weight / max } else { weight };
        self.acc.accumulate_scaled(matrix, scale)?;
        self.attributes += 1;
        Ok(())
    }

    /// [`push_normalized`](Self::push_normalized) with both the maximum
    /// reduction and the scaled accumulation split across `threads` scoped
    /// workers. Bit-identical to the sequential fold for any thread count
    /// (see [`CondensedDistanceMatrix::max_value_parallel`] and
    /// [`CondensedDistanceMatrix::accumulate_scaled_parallel`]); small
    /// matrices fall back to the sequential loops rather than paying thread
    /// spawn latency.
    pub fn push_normalized_parallel(
        &mut self,
        matrix: &CondensedDistanceMatrix,
        weight: f64,
        threads: usize,
    ) -> Result<(), ClusterError> {
        let max = matrix.max_value_parallel(threads);
        let scale = if max > 0.0 { weight / max } else { weight };
        self.acc
            .accumulate_scaled_parallel(matrix, scale, threads)?;
        self.attributes += 1;
        Ok(())
    }

    /// Number of attributes folded so far.
    pub fn attributes(&self) -> usize {
        self.attributes
    }

    /// Consumes the accumulator, yielding the merged matrix.
    pub fn finish(self) -> CondensedDistanceMatrix {
        self.acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_indexing() {
        let mut m = CondensedDistanceMatrix::zeros(4);
        assert_eq!(m.len(), 4);
        assert_eq!(m.condensed_values().len(), 6);
        m.set(2, 0, 1.5);
        assert_eq!(m.get(2, 0), 1.5);
        assert_eq!(m.get(0, 2), 1.5); // symmetry
        assert_eq!(m.get(1, 1), 0.0); // diagonal
        assert_eq!(m.get(3, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn setting_diagonal_panics() {
        let mut m = CondensedDistanceMatrix::zeros(3);
        m.set(1, 1, 2.0);
    }

    #[test]
    fn try_get_bounds_checks() {
        let m = CondensedDistanceMatrix::zeros(3);
        assert!(m.try_get(0, 2).is_ok());
        assert!(m.try_get(3, 0).is_err());
        assert!(m.try_get(0, 3).is_err());
    }

    #[test]
    fn from_condensed_validates_length() {
        assert!(CondensedDistanceMatrix::from_condensed(3, vec![1.0, 2.0, 3.0]).is_ok());
        assert!(CondensedDistanceMatrix::from_condensed(3, vec![1.0]).is_err());
        assert!(CondensedDistanceMatrix::from_condensed(0, vec![]).is_ok());
        assert!(CondensedDistanceMatrix::from_condensed(1, vec![]).is_ok());
    }

    #[test]
    fn from_fn_fills_all_pairs_symmetrically() {
        let m = CondensedDistanceMatrix::from_fn(4, |i, j| (i + j) as f64);
        assert_eq!(m.get(3, 1), 4.0);
        assert_eq!(m.get(1, 3), 4.0);
        assert_eq!(m.get(1, 0), 1.0);
    }

    #[test]
    fn normalize_scales_to_unit_interval() {
        let mut m = CondensedDistanceMatrix::from_fn(4, |i, j| (i * 10 + j) as f64);
        m.normalize_max();
        assert!((m.max_value() - 1.0).abs() < 1e-12);
        assert!(m.min_value() >= 0.0);
        // Normalising an all-zero matrix is a no-op.
        let mut z = CondensedDistanceMatrix::zeros(3);
        z.normalize_max();
        assert_eq!(z.max_value(), 0.0);
    }

    #[test]
    fn weighted_merge_combines_attributes() {
        let a = CondensedDistanceMatrix::from_fn(3, |_, _| 1.0);
        let b = CondensedDistanceMatrix::from_fn(3, |_, _| 2.0);
        let merged = CondensedDistanceMatrix::weighted_merge(&[a, b], &[0.25, 0.5]).unwrap();
        assert!((merged.get(2, 1) - (0.25 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn weighted_merge_validates_inputs() {
        let a = CondensedDistanceMatrix::zeros(3);
        let b = CondensedDistanceMatrix::zeros(4);
        assert!(CondensedDistanceMatrix::weighted_merge(&[], &[]).is_err());
        assert!(
            CondensedDistanceMatrix::weighted_merge(std::slice::from_ref(&a), &[0.5, 0.5]).is_err()
        );
        assert!(CondensedDistanceMatrix::weighted_merge(&[a.clone(), b], &[1.0, 1.0]).is_err());
        assert!(CondensedDistanceMatrix::weighted_merge(&[a], &[-1.0]).is_err());
    }

    #[test]
    fn set_block_scatters_chunked_rows() {
        // Sites of sizes 2 and 3: the cross block is 3×2 at (2, 0).
        let mut whole = CondensedDistanceMatrix::zeros(5);
        let block: Vec<f64> = (0..6).map(|v| v as f64 + 1.0).collect();
        for (m, row) in block.chunks_exact(2).enumerate() {
            for (n, &d) in row.iter().enumerate() {
                whole.set(2 + m, n, d);
            }
        }
        // Deliver the same block as a 2-row chunk followed by a 1-row chunk.
        let mut chunked = CondensedDistanceMatrix::zeros(5);
        chunked.set_block(2, 0, 2, &block[..4]).unwrap();
        chunked.set_block(4, 0, 2, &block[4..]).unwrap();
        assert_eq!(whole, chunked);
    }

    #[test]
    fn set_block_validates_shape_and_bounds() {
        let mut m = CondensedDistanceMatrix::zeros(5);
        // Ragged value count.
        assert!(m.set_block(2, 0, 2, &[1.0, 2.0, 3.0]).is_err());
        // Block reaching onto/above the diagonal.
        assert!(m.set_block(1, 0, 2, &[1.0, 2.0]).is_err());
        // Rows past the end of the matrix.
        assert!(m.set_block(4, 0, 2, &[1.0, 2.0, 3.0, 4.0]).is_err());
        // Zero columns is a no-op.
        assert!(m.set_block(2, 0, 0, &[]).is_ok());
    }

    #[test]
    fn merge_accumulator_matches_batch_weighted_merge() {
        let a = CondensedDistanceMatrix::from_fn(4, |i, j| (i * 3 + j) as f64);
        let b = CondensedDistanceMatrix::from_fn(4, |i, j| (10 + i + j) as f64);
        // Batch path: normalise by max, then weight (the DissimilarityMatrix
        // merge semantics).
        let mut batch = CondensedDistanceMatrix::zeros(4);
        for (m, w) in [(&a, 0.25), (&b, 0.75)] {
            batch.accumulate_scaled(m, w / m.max_value()).unwrap();
        }
        // Streaming path: one attribute at a time.
        let mut acc = MergeAccumulator::new(4);
        acc.push_normalized(&a, 0.25).unwrap();
        acc.push_normalized(&b, 0.75).unwrap();
        assert_eq!(acc.attributes(), 2);
        let streamed = acc.finish();
        assert_eq!(batch, streamed);
        // All-zero attribute matrices contribute nothing but still count.
        let mut acc = MergeAccumulator::new(4);
        acc.push_normalized(&CondensedDistanceMatrix::zeros(4), 1.0)
            .unwrap();
        assert_eq!(acc.finish().max_value(), 0.0);
        // Size mismatches are rejected.
        let mut acc = MergeAccumulator::new(3);
        assert!(acc.push_normalized(&a, 1.0).is_err());
    }

    /// Deterministic pseudo-random distance matrix big enough that
    /// `partition_sizes` actually splits it (n = 200 ⇒ 19 900 entries, above
    /// `MIN_PARALLEL_LEN`).
    fn large_matrix(seed: u64) -> CondensedDistanceMatrix {
        let mut state = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        CondensedDistanceMatrix::from_fn(200, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 997.0
        })
    }

    #[test]
    fn parallel_max_is_bit_identical_at_all_thread_counts() {
        for seed in [1u64, 7, 42] {
            let m = large_matrix(seed);
            let expected = m.max_value().to_bits();
            for threads in [1usize, 2, 4, 16] {
                assert_eq!(m.max_value_parallel(threads).to_bits(), expected);
            }
        }
        // Small matrices take the sequential fallback but stay identical.
        let small = CondensedDistanceMatrix::from_fn(5, |i, j| (i * j) as f64);
        assert_eq!(small.max_value_parallel(4), small.max_value());
        assert_eq!(CondensedDistanceMatrix::zeros(0).max_value_parallel(4), 0.0);
    }

    #[test]
    fn parallel_accumulate_is_bit_identical_at_all_thread_counts() {
        let src = large_matrix(3);
        let mut sequential = large_matrix(9);
        sequential.accumulate_scaled(&src, 0.375).unwrap();
        for threads in [1usize, 2, 4] {
            let mut parallel = large_matrix(9);
            parallel
                .accumulate_scaled_parallel(&src, 0.375, threads)
                .unwrap();
            let bits_match = parallel
                .condensed_values()
                .iter()
                .zip(sequential.condensed_values())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(bits_match, "accumulate diverged at {threads} threads");
        }
        // Shares the sequential path's validation.
        let mut wrong = CondensedDistanceMatrix::zeros(3);
        assert!(wrong.accumulate_scaled_parallel(&src, 1.0, 4).is_err());
        let mut ok = large_matrix(9);
        assert!(ok.accumulate_scaled_parallel(&src, -1.0, 4).is_err());
        assert!(ok.accumulate_scaled_parallel(&src, f64::NAN, 4).is_err());
    }

    #[test]
    fn parallel_push_normalized_is_bit_identical_at_all_thread_counts() {
        let attrs = [large_matrix(11), large_matrix(12), large_matrix(13)];
        let weights = [0.5, 0.25, 0.25];
        let mut sequential = MergeAccumulator::new(200);
        for (m, &w) in attrs.iter().zip(&weights) {
            sequential.push_normalized(m, w).unwrap();
        }
        let expected = sequential.finish();
        for threads in [1usize, 2, 4] {
            let mut acc = MergeAccumulator::new(200);
            for (m, &w) in attrs.iter().zip(&weights) {
                acc.push_normalized_parallel(m, w, threads).unwrap();
            }
            assert_eq!(acc.attributes(), 3);
            let merged = acc.finish();
            let bits_match = merged
                .condensed_values()
                .iter()
                .zip(expected.condensed_values())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(bits_match, "merge diverged at {threads} threads");
        }
    }

    #[test]
    fn max_abs_difference_detects_mismatch() {
        let a = CondensedDistanceMatrix::from_fn(3, |i, j| (i + j) as f64);
        let mut b = a.clone();
        assert_eq!(a.max_abs_difference(&b), 0.0);
        b.set(2, 1, 100.0);
        assert!(a.max_abs_difference(&b) > 90.0);
        let c = CondensedDistanceMatrix::zeros(4);
        assert!(a.max_abs_difference(&c).is_infinite());
    }
}
