//! Cluster assignments.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::ClusterError;

/// A flat cluster assignment: `assignment[i]` is the cluster id of object
/// `i`. Cluster ids are dense (`0..k`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterAssignment {
    labels: Vec<usize>,
    clusters: usize,
}

impl ClusterAssignment {
    /// Builds an assignment from raw labels, re-mapping them to dense ids in
    /// order of first appearance.
    pub fn from_labels(labels: &[usize]) -> Self {
        let mut mapping = BTreeMap::new();
        let mut dense = Vec::with_capacity(labels.len());
        for &l in labels {
            let next = mapping.len();
            let id = *mapping.entry(l).or_insert(next);
            dense.push(id);
        }
        ClusterAssignment {
            labels: dense,
            clusters: mapping.len(),
        }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the assignment covers zero objects.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters
    }

    /// Cluster id of object `i`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Objects grouped per cluster, cluster id order.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.clusters];
        for (i, &l) in self.labels.iter().enumerate() {
            groups[l].push(i);
        }
        groups
    }

    /// Size of each cluster.
    pub fn sizes(&self) -> Vec<usize> {
        self.members().iter().map(|m| m.len()).collect()
    }

    /// Checks that the assignment covers exactly `n` objects.
    pub fn expect_len(&self, n: usize) -> Result<(), ClusterError> {
        if self.labels.len() == n {
            Ok(())
        } else {
            Err(ClusterError::DimensionMismatch {
                expected: n,
                got: self.labels.len(),
            })
        }
    }

    /// Whether two objects share a cluster.
    pub fn same_cluster(&self, i: usize, j: usize) -> bool {
        self.labels[i] == self.labels[j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_densified_in_first_appearance_order() {
        let a = ClusterAssignment::from_labels(&[7, 7, 2, 9, 2]);
        assert_eq!(a.labels(), &[0, 0, 1, 2, 1]);
        assert_eq!(a.num_clusters(), 3);
        assert_eq!(a.len(), 5);
        assert_eq!(a.sizes(), vec![2, 2, 1]);
        assert_eq!(a.members()[2], vec![3]);
        assert!(a.same_cluster(0, 1));
        assert!(!a.same_cluster(0, 2));
        assert_eq!(a.label(3), 2);
    }

    #[test]
    fn empty_assignment() {
        let a = ClusterAssignment::from_labels(&[]);
        assert!(a.is_empty());
        assert_eq!(a.num_clusters(), 0);
        assert!(a.expect_len(0).is_ok());
        assert!(a.expect_len(1).is_err());
    }
}
