//! Lloyd's k-means for numeric vectors.
//!
//! A *partitioning* algorithm included as the foil of the paper's argument:
//! it needs a mean, so it cannot cluster alphanumeric attributes, and it
//! favours spherical clusters. Used by the experiments that reproduce that
//! argument and by the distributed secure-sum k-means baseline.

use crate::assignment::ClusterAssignment;
use crate::error::ClusterError;

/// Configuration for k-means.
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iterations: usize,
    /// Convergence threshold on total centroid movement.
    pub tolerance: f64,
    /// Seed for the deterministic initialisation.
    pub seed: u64,
}

impl KMeansConfig {
    /// Default configuration for `k` clusters.
    pub fn new(k: usize) -> Self {
        KMeansConfig {
            k,
            max_iterations: 100,
            tolerance: 1e-9,
            seed: 0x5eed,
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Flat assignment of points to clusters.
    pub assignment: ClusterAssignment,
    /// Final centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances of points to their centroid.
    pub inertia: f64,
    /// Number of iterations executed.
    pub iterations: usize,
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// A tiny deterministic generator for centroid seeding (k-means++ style
/// greedy farthest-point seeding with a deterministic tie-break would be
/// overkill here; plain splitmix-driven sampling is reproducible and good
/// enough for baselines).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs k-means on `points` (all rows must share one dimensionality).
pub fn kmeans(points: &[Vec<f64>], config: &KMeansConfig) -> Result<KMeansResult, ClusterError> {
    if points.is_empty() {
        return Err(ClusterError::EmptyInput);
    }
    if config.k == 0 || config.k > points.len() {
        return Err(ClusterError::InvalidClusterCount {
            requested: config.k,
            objects: points.len(),
        });
    }
    let dim = points[0].len();
    if points.iter().any(|p| p.len() != dim) {
        return Err(ClusterError::InvalidParameter(
            "all points must have the same dimensionality".into(),
        ));
    }

    // k-means++ seeding (deterministic given the config seed).
    let mut state = config.seed;
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(config.k);
    centroids.push(points[(splitmix(&mut state) % points.len() as u64) as usize].clone());
    while centroids.len() < config.k {
        let weights: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| squared_distance(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = weights.iter().sum();
        if total == 0.0 {
            // All remaining points coincide with existing centroids.
            centroids.push(points[(splitmix(&mut state) % points.len() as u64) as usize].clone());
            continue;
        }
        let mut target = (splitmix(&mut state) as f64 / u64::MAX as f64) * total;
        let mut chosen = points.len() - 1;
        for (i, w) in weights.iter().enumerate() {
            if target <= *w {
                chosen = i;
                break;
            }
            target -= w;
        }
        centroids.push(points[chosen].clone());
    }

    let mut labels = vec![0usize; points.len()];
    let mut iterations = 0;
    for iter in 0..config.max_iterations {
        iterations = iter + 1;
        // Assignment step.
        for (i, p) in points.iter().enumerate() {
            let mut best = (0usize, f64::INFINITY);
            for (c, centroid) in centroids.iter().enumerate() {
                let d = squared_distance(p, centroid);
                if d < best.1 {
                    best = (c, d);
                }
            }
            labels[i] = best.0;
        }
        // Update step.
        let mut new_centroids = vec![vec![0.0; dim]; config.k];
        let mut counts = vec![0usize; config.k];
        for (p, &l) in points.iter().zip(&labels) {
            counts[l] += 1;
            for (acc, &x) in new_centroids[l].iter_mut().zip(p) {
                *acc += x;
            }
        }
        for (c, (centroid, count)) in new_centroids.iter_mut().zip(&counts).enumerate() {
            if *count == 0 {
                // Re-seed an empty cluster deterministically.
                *centroid = points[(splitmix(&mut state) % points.len() as u64) as usize].clone();
            } else {
                for x in centroid.iter_mut() {
                    *x /= *count as f64;
                }
                let _ = c;
            }
        }
        let movement: f64 = centroids
            .iter()
            .zip(&new_centroids)
            .map(|(a, b)| squared_distance(a, b))
            .sum();
        centroids = new_centroids;
        if movement < config.tolerance {
            break;
        }
    }

    let inertia = points
        .iter()
        .zip(&labels)
        .map(|(p, &l)| squared_distance(p, &centroids[l]))
        .sum();
    Ok(KMeansResult {
        assignment: ClusterAssignment::from_labels(&labels),
        centroids,
        inertia,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: (f64, f64), spread: f64, count: usize, phase: f64) -> Vec<Vec<f64>> {
        (0..count)
            .map(|i| {
                let angle = phase + i as f64 * 2.399963; // golden-angle spiral
                vec![
                    center.0 + spread * angle.cos() * (i as f64 % 3.0 + 1.0) / 3.0,
                    center.1 + spread * angle.sin() * (i as f64 % 3.0 + 1.0) / 3.0,
                ]
            })
            .collect()
    }

    #[test]
    fn separates_well_separated_blobs() {
        let mut points = blob((0.0, 0.0), 0.5, 20, 0.0);
        points.extend(blob((10.0, 10.0), 0.5, 20, 1.0));
        let result = kmeans(&points, &KMeansConfig::new(2)).unwrap();
        assert_eq!(result.assignment.num_clusters(), 2);
        // All points of each blob share a label.
        let first = result.assignment.label(0);
        assert!((0..20).all(|i| result.assignment.label(i) == first));
        let second = result.assignment.label(20);
        assert!((20..40).all(|i| result.assignment.label(i) == second));
        assert_ne!(first, second);
        assert!(result.inertia < 20.0);
    }

    #[test]
    fn input_validation() {
        assert!(kmeans(&[], &KMeansConfig::new(1)).is_err());
        let pts = vec![vec![0.0], vec![1.0]];
        assert!(kmeans(&pts, &KMeansConfig::new(0)).is_err());
        assert!(kmeans(&pts, &KMeansConfig::new(3)).is_err());
        let ragged = vec![vec![0.0], vec![1.0, 2.0]];
        assert!(kmeans(&ragged, &KMeansConfig::new(1)).is_err());
    }

    #[test]
    fn k_equals_n_gives_singletons() {
        let pts = vec![vec![0.0], vec![5.0], vec![10.0]];
        let result = kmeans(&pts, &KMeansConfig::new(3)).unwrap();
        assert_eq!(result.assignment.num_clusters(), 3);
        assert!(result.inertia < 1e-9);
    }

    #[test]
    fn duplicate_points_do_not_break_seeding() {
        let pts = vec![vec![1.0, 1.0]; 10];
        let result = kmeans(&pts, &KMeansConfig::new(3)).unwrap();
        assert_eq!(result.assignment.len(), 10);
        assert!(result.inertia < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut points = blob((0.0, 0.0), 1.0, 15, 0.3);
        points.extend(blob((6.0, 0.0), 1.0, 15, 0.7));
        let a = kmeans(&points, &KMeansConfig::new(2)).unwrap();
        let b = kmeans(&points, &KMeansConfig::new(2)).unwrap();
        assert_eq!(a.assignment, b.assignment);
    }
}
