//! Error type for the clustering substrate.

use std::fmt;

/// Errors produced by clustering routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A distance matrix was constructed with inconsistent dimensions.
    DimensionMismatch {
        /// Expected number of entries.
        expected: usize,
        /// Provided number of entries.
        got: usize,
    },
    /// An index was outside the matrix.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// Number of objects in the matrix.
        size: usize,
    },
    /// A request asked for an impossible number of clusters.
    InvalidClusterCount {
        /// Requested cluster count.
        requested: usize,
        /// Number of objects available.
        objects: usize,
    },
    /// The algorithm received an empty input.
    EmptyInput,
    /// A parameter was out of its valid range (message explains which).
    InvalidParameter(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "dimension mismatch: expected {expected} entries, got {got}"
                )
            }
            ClusterError::IndexOutOfBounds { index, size } => {
                write!(f, "index {index} out of bounds for {size} objects")
            }
            ClusterError::InvalidClusterCount { requested, objects } => {
                write!(f, "cannot form {requested} clusters from {objects} objects")
            }
            ClusterError::EmptyInput => write!(f, "empty input"),
            ClusterError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ClusterError::DimensionMismatch {
            expected: 10,
            got: 9
        }
        .to_string()
        .contains("10"));
        assert!(ClusterError::InvalidClusterCount {
            requested: 5,
            objects: 3
        }
        .to_string()
        .contains("5"));
        assert!(ClusterError::EmptyInput.to_string().contains("empty"));
    }
}
