//! PR-7 determinism properties of the parallel third-party merge: the
//! scoped-thread `max_value_parallel` / `accumulate_scaled_parallel` /
//! `push_normalized_parallel` reductions are **bit-identical** (`f64`
//! bits) to the sequential fold at every thread count — both below the
//! sequential-fallback threshold and on matrices large enough to really
//! split across workers.

use proptest::prelude::*;

use ppc_cluster::{CondensedDistanceMatrix, MergeAccumulator};

const THREADS: [usize; 3] = [1, 2, 4];

/// A deterministic pseudo-random condensed matrix: big `n` without
/// shipping megabytes of generated input through proptest shrinking.
fn lcg_matrix(n: usize, seed: u64) -> CondensedDistanceMatrix {
    let mut state = seed | 1;
    CondensedDistanceMatrix::from_fn(n, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64 * 1000.0
    })
}

fn bits(matrix: &CondensedDistanceMatrix) -> Vec<u64> {
    matrix
        .condensed_values()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Small arbitrary matrices (the sequential-fallback regime): every
    /// parallel entry point is bit-identical to its sequential fold.
    #[test]
    fn small_matrices_are_bit_identical_at_all_thread_counts(
        values in prop::collection::vec(0.0f64..1e6, 1..120),
        weight in 0.01f64..8.0,
    ) {
        let mut n = 2usize;
        while (n + 1) * n / 2 <= values.len() {
            n += 1;
        }
        let take = n * (n - 1) / 2;
        let matrix =
            CondensedDistanceMatrix::from_condensed(n, values[..take].to_vec()).unwrap();
        let expected_max = matrix.max_value().to_bits();
        let mut sequential = MergeAccumulator::new(n);
        sequential.push_normalized(&matrix, weight).unwrap();
        let expected = bits(&sequential.finish());
        for threads in THREADS {
            prop_assert_eq!(matrix.max_value_parallel(threads).to_bits(), expected_max);
            let mut acc = MergeAccumulator::new(n);
            acc.push_normalized_parallel(&matrix, weight, threads).unwrap();
            prop_assert_eq!(&bits(&acc.finish()), &expected, "diverged at {} threads", threads);
        }
    }

    /// Matrices above the parallel threshold (n ≥ 200 → ≥ 19,900 entries,
    /// really split across scoped workers): multi-attribute merges stay
    /// bit-identical at 1/2/4 threads, for any weight vector.
    #[test]
    fn large_merges_are_bit_identical_at_all_thread_counts(
        n in 200usize..260,
        seed in any::<u64>(),
        weights in prop::collection::vec(0.05f64..4.0, 1..4),
    ) {
        let matrices: Vec<CondensedDistanceMatrix> = weights
            .iter()
            .enumerate()
            .map(|(i, _)| lcg_matrix(n, seed.wrapping_add(i as u64)))
            .collect();
        let mut sequential = MergeAccumulator::new(n);
        for (matrix, &weight) in matrices.iter().zip(&weights) {
            sequential.push_normalized(matrix, weight).unwrap();
        }
        let expected = bits(&sequential.finish());
        for threads in THREADS {
            let mut acc = MergeAccumulator::new(n);
            for (matrix, &weight) in matrices.iter().zip(&weights) {
                acc.push_normalized_parallel(matrix, weight, threads).unwrap();
            }
            prop_assert_eq!(&bits(&acc.finish()), &expected, "diverged at {} threads", threads);
        }
    }

    /// `accumulate_scaled_parallel` enforces the same validation as the
    /// sequential path and is element-exact when it succeeds.
    #[test]
    fn accumulate_scaled_parallel_matches_sequential(
        n in 180usize..220,
        seed in any::<u64>(),
        scale in 0.0f64..16.0,
    ) {
        let base = lcg_matrix(n, seed);
        let other = lcg_matrix(n, seed.wrapping_add(99));
        let mut sequential = base.clone();
        sequential.accumulate_scaled(&other, scale).unwrap();
        let expected = bits(&sequential);
        for threads in THREADS {
            let mut parallel = base.clone();
            parallel.accumulate_scaled_parallel(&other, scale, threads).unwrap();
            prop_assert_eq!(&bits(&parallel), &expected, "diverged at {} threads", threads);
        }
        // Shared validation: a dimension mismatch and a non-finite scale
        // fail on both paths.
        let small = lcg_matrix(8, seed);
        let mut parallel = base.clone();
        prop_assert!(parallel.accumulate_scaled_parallel(&small, scale, 2).is_err());
        prop_assert!(parallel.accumulate_scaled_parallel(&other, f64::NAN, 2).is_err());
    }
}
