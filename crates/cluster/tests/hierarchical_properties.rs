//! Property-based tests for the clustering substrate.

use proptest::prelude::*;

use ppc_cluster::quality::average_within_cluster_squared_distance;
use ppc_cluster::{AgglomerativeClustering, CondensedDistanceMatrix, Linkage};

/// Builds a valid condensed matrix from an arbitrary non-negative value list.
fn matrix_from_values(values: &[f64]) -> CondensedDistanceMatrix {
    let mut n = 2usize;
    while (n + 1) * n / 2 <= values.len() {
        n += 1;
    }
    let take = n * (n - 1) / 2;
    CondensedDistanceMatrix::from_condensed(n, values[..take].to_vec()).expect("sized correctly")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every linkage produces a full dendrogram (n − 1 merges with
    /// monotonically growing member counts) on arbitrary distance matrices,
    /// and cutting it yields exactly the requested number of clusters.
    #[test]
    fn dendrograms_are_complete_and_cuttable(
        values in prop::collection::vec(0.0f64..100.0, 1..46),
        linkage_index in 0usize..7,
    ) {
        let matrix = matrix_from_values(&values);
        let n = matrix.len();
        let linkage = Linkage::ALL[linkage_index];
        let dendrogram = AgglomerativeClustering::new(linkage).fit(&matrix).unwrap();
        prop_assert_eq!(dendrogram.merges().len(), n - 1);
        prop_assert_eq!(dendrogram.merges().last().unwrap().size, n);
        for k in 1..=n {
            let assignment = dendrogram.cut_into(k).unwrap();
            prop_assert_eq!(assignment.len(), n);
            prop_assert_eq!(assignment.num_clusters(), k);
        }
        prop_assert!(dendrogram.cut_into(0).is_err());
        prop_assert!(dendrogram.cut_into(n + 1).is_err());
    }

    /// Merge distances are non-negative and, for single and complete
    /// linkage, bounded by the matrix's extreme values.
    #[test]
    fn merge_distances_are_bounded(
        values in prop::collection::vec(0.0f64..50.0, 3..46),
    ) {
        let matrix = matrix_from_values(&values);
        let max = matrix.max_value();
        for linkage in [Linkage::Single, Linkage::Complete] {
            let dendrogram = AgglomerativeClustering::new(linkage).fit(&matrix).unwrap();
            for merge in dendrogram.merges() {
                prop_assert!(merge.distance >= 0.0);
                prop_assert!(merge.distance <= max + 1e-9,
                    "{linkage:?} merge at {} exceeds max {max}", merge.distance);
            }
        }
    }

    /// The single-linkage dendrogram's first merge happens exactly at the
    /// smallest pairwise distance.
    #[test]
    fn single_linkage_first_merge_is_the_global_minimum(
        values in prop::collection::vec(0.1f64..50.0, 3..46),
    ) {
        let matrix = matrix_from_values(&values);
        let dendrogram = AgglomerativeClustering::new(Linkage::Single).fit(&matrix).unwrap();
        let first = dendrogram.merges().first().unwrap();
        prop_assert!((first.distance - matrix.min_value()).abs() < 1e-9);
    }

    /// The O(n²) NN-chain engine produces dendrograms whose merge heights
    /// equal the retained O(n³) textbook oracle's, for every reducible
    /// linkage, on arbitrary condensed matrices. (With continuous random
    /// distances the dendrogram is almost surely unique, so height equality
    /// pins down the whole tree.)
    #[test]
    fn nn_chain_matches_naive_oracle_merge_heights(
        values in prop::collection::vec(0.001f64..100.0, 1..64),
        linkage_index in 0usize..5,
    ) {
        let matrix = matrix_from_values(&values);
        let linkage = [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Weighted,
            Linkage::Ward,
        ][linkage_index];
        prop_assert!(linkage.nn_chain_exact());
        let algo = AgglomerativeClustering::new(linkage);
        let fast = algo.fit(&matrix).unwrap();
        let oracle = algo.fit_naive(&matrix).unwrap();
        prop_assert_eq!(fast.merges().len(), oracle.merges().len());
        for (f, o) in fast.merges().iter().zip(oracle.merges()) {
            prop_assert!(
                (f.distance - o.distance).abs() <= 1e-9 * o.distance.abs().max(1.0),
                "{linkage:?}: NN-chain height {} vs oracle height {}",
                f.distance,
                o.distance
            );
            prop_assert_eq!(f.size, o.size, "{linkage:?}: merged sizes diverge");
        }
        // Flat cuts agree as well (cluster counts are height-determined).
        let n = matrix.len();
        for k in 1..=n.min(5) {
            let a = fast.cut_into(k).unwrap();
            let b = oracle.cut_into(k).unwrap();
            prop_assert_eq!(a.num_clusters(), b.num_clusters());
        }
    }

    /// The O(n² log n) priority-queue generic engine reproduces the O(n³)
    /// textbook oracle exactly — merge pairs, heights and sizes — for the
    /// non-reducible centroid and median linkages it now serves (and, as a
    /// sanity check, for a reducible one).
    #[test]
    fn generic_engine_matches_naive_oracle_for_non_reducible_linkages(
        values in prop::collection::vec(0.001f64..100.0, 1..64),
        linkage_index in 0usize..3,
    ) {
        let matrix = matrix_from_values(&values);
        let linkage = [Linkage::Centroid, Linkage::Median, Linkage::Complete][linkage_index];
        let algo = AgglomerativeClustering::new(linkage);
        let fast = algo.fit(&matrix).unwrap();
        let oracle = algo.fit_naive(&matrix).unwrap();
        prop_assert_eq!(fast.merges().len(), oracle.merges().len());
        for (f, o) in fast.merges().iter().zip(oracle.merges()) {
            prop_assert!(
                (f.distance - o.distance).abs() <= 1e-9 * o.distance.abs().max(1.0),
                "{linkage:?}: generic height {} vs oracle height {}",
                f.distance,
                o.distance
            );
            prop_assert_eq!(f.size, o.size, "{linkage:?}: merged sizes diverge");
        }
        let n = matrix.len();
        for k in 1..=n.min(5) {
            let a = fast.cut_into(k).unwrap();
            let b = oracle.cut_into(k).unwrap();
            prop_assert_eq!(a.num_clusters(), b.num_clusters());
        }
    }

    /// The published quality metric is zero exactly when every cluster is a
    /// singleton, and non-negative otherwise.
    #[test]
    fn within_cluster_scatter_is_non_negative(
        values in prop::collection::vec(0.0f64..10.0, 1..46),
        k in 1usize..6,
    ) {
        let matrix = matrix_from_values(&values);
        let n = matrix.len();
        let k = k.min(n);
        let assignment =
            AgglomerativeClustering::new(Linkage::Average).fit_k(&matrix, k).unwrap();
        let scatter = average_within_cluster_squared_distance(&matrix, &assignment).unwrap();
        prop_assert!(scatter >= 0.0);
        let singletons = AgglomerativeClustering::new(Linkage::Average)
            .fit_k(&matrix, n)
            .unwrap();
        prop_assert_eq!(
            average_within_cluster_squared_distance(&matrix, &singletons).unwrap(),
            0.0
        );
    }
}
