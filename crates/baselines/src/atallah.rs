//! Communication-cost model of the Atallah–Kerschbaum–Du secure
//! edit-distance protocol ("Secure and Private Sequence Comparisons",
//! WPES 2003), used as the comparison point for the paper's alphanumeric
//! protocol.
//!
//! The original protocol computes edit distance between two private strings
//! held by two parties using additively homomorphic encryption and a
//! blind-and-permute sub-protocol for every cell of the `(n+1) × (m+1)`
//! dynamic-programming table: each cell costs a constant number of
//! ciphertext exchanges. We do not re-implement the cryptography (the paper
//! only argues against it on *communication cost* grounds); instead
//! [`AtallahCostModel`] reproduces its traffic shape so the cost experiment
//! can compare bytes-on-the-wire for the same workload.
//!
//! This is a documented substitution (see `DESIGN.md`): the relevant
//! behaviour — how many bytes cross the network per string pair as a
//! function of string lengths and the homomorphic ciphertext size — is
//! preserved; the cryptographic internals, which do not affect the measured
//! quantity, are not simulated.

use serde::{Deserialize, Serialize};

use crate::error::BaselineError;

/// Cost model for the Atallah et al. secure edit-distance protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AtallahCostModel {
    /// Size of one additively homomorphic ciphertext in bytes
    /// (Paillier with a 2048-bit modulus ⇒ 512-byte ciphertexts).
    pub ciphertext_bytes: u64,
    /// Ciphertext exchanges per dynamic-programming cell. The
    /// blind-and-permute minimum-selection sub-protocol exchanges the three
    /// candidate values twice (blinded and permuted), plus one value carries
    /// the result forward: 8 ciphertexts per cell is a faithful (slightly
    /// charitable) count.
    pub ciphertexts_per_cell: u64,
    /// Fixed per-pair handshake overhead in bytes (keys, permutations).
    pub per_pair_overhead_bytes: u64,
}

impl Default for AtallahCostModel {
    fn default() -> Self {
        AtallahCostModel {
            ciphertext_bytes: 256, // 2048-bit Paillier modulus ⇒ 2048-bit ciphertext components
            ciphertexts_per_cell: 8,
            per_pair_overhead_bytes: 1024,
        }
    }
}

impl AtallahCostModel {
    /// A cost model with a given Paillier modulus size in bits.
    pub fn with_modulus_bits(bits: u64) -> Result<Self, BaselineError> {
        if bits < 512 || !bits.is_multiple_of(8) {
            return Err(BaselineError::InvalidParameter(format!(
                "modulus bits must be a byte multiple ≥ 512, got {bits}"
            )));
        }
        Ok(AtallahCostModel {
            ciphertext_bytes: bits / 8,
            ..AtallahCostModel::default()
        })
    }

    /// Bytes exchanged to compare one pair of strings of the given lengths.
    pub fn bytes_per_pair(&self, source_len: usize, target_len: usize) -> u64 {
        let cells = (source_len as u64 + 1) * (target_len as u64 + 1);
        cells * self.ciphertexts_per_cell * self.ciphertext_bytes + self.per_pair_overhead_bytes
    }

    /// Bytes exchanged to compare every cross-site pair between a site with
    /// `initiator_lengths` strings and one with `responder_lengths` strings.
    pub fn bytes_for_columns(
        &self,
        initiator_lengths: &[usize],
        responder_lengths: &[usize],
    ) -> u64 {
        let mut total = 0u64;
        for &s in initiator_lengths {
            for &t in responder_lengths {
                total += self.bytes_per_pair(s, t);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_2048_bit_paillier() {
        let model = AtallahCostModel::default();
        assert_eq!(model.ciphertext_bytes, 256);
        let m = AtallahCostModel::with_modulus_bits(2048).unwrap();
        assert_eq!(m.ciphertext_bytes, 256);
        assert!(AtallahCostModel::with_modulus_bits(100).is_err());
        assert!(AtallahCostModel::with_modulus_bits(1023).is_err());
    }

    #[test]
    fn cost_grows_with_the_dp_table() {
        let model = AtallahCostModel::default();
        let short = model.bytes_per_pair(8, 8);
        let long = model.bytes_per_pair(64, 64);
        assert!(
            long > short * 30,
            "quadratic growth expected: {short} vs {long}"
        );
        // One 8×8 pair: 81 cells · 8 ciphertexts · 256 bytes + 1024.
        assert_eq!(short, 81 * 8 * 256 + 1024);
    }

    #[test]
    fn column_cost_sums_all_pairs() {
        let model = AtallahCostModel::default();
        let total = model.bytes_for_columns(&[4, 4], &[4]);
        assert_eq!(total, 2 * model.bytes_per_pair(4, 4));
    }

    /// The comparison the paper makes: for realistic string batches the
    /// Atallah protocol costs orders of magnitude more traffic than the
    /// masking-based CCM protocol (whose cost per pair is ~4 bytes per CCM
    /// cell rather than kilobytes of ciphertext).
    #[test]
    fn atallah_is_far_more_expensive_than_ccm_shipping() {
        let model = AtallahCostModel::default();
        let ccm_bytes_per_pair = |s: u64, t: u64| s * t * 4 + 16;
        let s = 32u64;
        let t = 32u64;
        let ratio =
            model.bytes_per_pair(s as usize, t as usize) as f64 / ccm_bytes_per_pair(s, t) as f64;
        assert!(ratio > 100.0, "expected ≫100× overhead, got {ratio}");
    }
}
