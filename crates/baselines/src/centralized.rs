//! Centralized (non-private) baseline.
//!
//! Pools every holder's partition into a single data matrix, builds the
//! dissimilarity matrices in the clear and clusters them. This is the
//! accuracy reference: the paper's claim is that the privacy-preserving
//! construction produces *exactly* the same matrices, hence exactly the same
//! clustering.

use ppc_cluster::{AgglomerativeClustering, ClusterAssignment, Linkage};
use ppc_core::dissimilarity::{AttributeDissimilarity, DissimilarityMatrix, ObjectIndex};
use ppc_core::protocol::local;
use ppc_core::{DataMatrix, HorizontalPartition, Schema, WeightVector};

use crate::error::BaselineError;

/// The centralized pipeline.
#[derive(Debug, Clone)]
pub struct CentralizedBaseline {
    schema: Schema,
}

/// Output of the centralized pipeline.
#[derive(Debug, Clone)]
pub struct CentralizedOutput {
    /// Global object index (same site-concatenation order as the protocol).
    pub index: ObjectIndex,
    /// Per-attribute dissimilarity matrices (un-normalised).
    pub per_attribute: Vec<AttributeDissimilarity>,
    /// Final merged matrix.
    pub final_matrix: DissimilarityMatrix,
    /// Flat clustering of the merged matrix.
    pub assignment: ClusterAssignment,
}

impl CentralizedBaseline {
    /// Creates the baseline for a schema.
    pub fn new(schema: Schema) -> Self {
        CentralizedBaseline { schema }
    }

    /// Pools the partitions (in site order) into one matrix.
    pub fn pool(&self, partitions: &[HorizontalPartition]) -> Result<DataMatrix, BaselineError> {
        let mut pooled = DataMatrix::new(self.schema.clone());
        for partition in partitions {
            partition.validate_schema(&self.schema)?;
            for row in partition.matrix().rows() {
                pooled.push(row.clone())?;
            }
        }
        Ok(pooled)
    }

    /// Runs the full centralized pipeline.
    pub fn run(
        &self,
        partitions: &[HorizontalPartition],
        weights: &WeightVector,
        linkage: Linkage,
        num_clusters: usize,
    ) -> Result<CentralizedOutput, BaselineError> {
        let pooled = self.pool(partitions)?;
        let index = ObjectIndex::from_site_sizes(
            &partitions
                .iter()
                .map(|p| (p.site(), p.len()))
                .collect::<Vec<_>>(),
        );
        let mut per_attribute = Vec::with_capacity(self.schema.len());
        for (i, descriptor) in self.schema.attributes().iter().enumerate() {
            let matrix = local::local_dissimilarity(&pooled, i)?;
            per_attribute.push(AttributeDissimilarity::new(descriptor.name.clone(), matrix));
        }
        let final_matrix =
            DissimilarityMatrix::merge(index.clone(), &per_attribute, &self.schema, weights)?;
        let assignment =
            AgglomerativeClustering::new(linkage).fit_k(final_matrix.matrix(), num_clusters)?;
        Ok(CentralizedOutput {
            index,
            per_attribute,
            final_matrix,
            assignment,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_cluster::agreement::adjusted_rand_index;
    use ppc_data::Workload;

    #[test]
    fn centralized_pipeline_recovers_ground_truth_on_easy_data() {
        let workload = Workload::customer_segmentation(36, 3, 3, 11).unwrap();
        let baseline = CentralizedBaseline::new(workload.schema().clone());
        let output = baseline
            .run(
                &workload.partitions,
                &workload.schema().uniform_weights(),
                Linkage::Average,
                3,
            )
            .unwrap();
        assert_eq!(output.assignment.len(), 36);
        let truth = ClusterAssignment::from_labels(&workload.ground_truth_in_site_order());
        let ari = adjusted_rand_index(&output.assignment, &truth).unwrap();
        // Average-linkage on mixed attributes is not perfect, but it must be
        // far above chance level; the accuracy experiments compare the
        // protocol against THIS output, not against the ground truth.
        assert!(ari > 0.5, "centralized ARI {ari}");
        assert_eq!(output.per_attribute.len(), 3);
        assert_eq!(output.index.len(), 36);
    }

    #[test]
    fn pool_preserves_row_counts_and_validates_schema() {
        let workload = Workload::numeric_only(10, 2, 2, 3).unwrap();
        let baseline = CentralizedBaseline::new(workload.schema().clone());
        let pooled = baseline.pool(&workload.partitions).unwrap();
        assert_eq!(pooled.len(), 10);
        // Wrong schema is rejected.
        let other = Workload::bird_flu(10, 2, 2, 3).unwrap();
        let wrong = CentralizedBaseline::new(other.schema().clone());
        assert!(wrong.pool(&workload.partitions).is_err());
    }
}
