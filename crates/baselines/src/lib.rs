//! # ppc-baselines — comparison points for the ppclust experiments
//!
//! The paper positions its protocol against three families of alternatives;
//! this crate implements an executable stand-in for each so the experiments
//! can measure the comparisons the paper only argues:
//!
//! * [`centralized`] — the non-private reference: pool all partitions and
//!   compute the dissimilarity matrix / clustering directly. The protocol's
//!   output must match it exactly ("no loss of accuracy").
//! * [`sanitization`] — a perturbation-based baseline in the spirit of
//!   Oliveira & Zaïane: data holders add noise / apply lossy transforms
//!   before sharing, trading accuracy for privacy.
//! * [`atallah`] — a communication-cost model of the Atallah–Kerschbaum–Du
//!   secure edit-distance protocol (homomorphic-encryption based), which the
//!   paper dismisses as "not feasible for clustering private data due to
//!   high communication costs".
//! * [`secure_sum`] and [`distributed_kmeans`] — a secure-sum based
//!   distributed k-means in the spirit of Jha, Kruger & McDaniel, the prior
//!   art for horizontally partitioned *numeric* data that cannot handle
//!   strings or categorical attributes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atallah;
pub mod centralized;
pub mod distributed_kmeans;
pub mod error;
pub mod sanitization;
pub mod secure_sum;

pub use atallah::AtallahCostModel;
pub use centralized::CentralizedBaseline;
pub use error::BaselineError;
pub use sanitization::SanitizationBaseline;
