//! Secure-sum sub-protocol for the distributed k-means baseline.
//!
//! Classic ring-based secure sum: the first party adds a random mask to its
//! value, every other party adds its own value, and the first party removes
//! the mask from the total. No individual contribution is revealed to any
//! single party (collusion is out of scope, matching the paper's
//! non-colluding assumption). Works over fixed-point `i64` values with
//! wrapping arithmetic.

use ppc_crypto::prng::DynStreamRng;
use ppc_crypto::{RngAlgorithm, Seed};

use crate::error::BaselineError;

/// Computes the secure sum of one value per party.
///
/// Returns the exact sum while simulating the ring protocol: the running
/// total each party forwards is recorded in `transcript` so tests can verify
/// that no intermediate message equals any party's private input.
pub fn secure_sum(values: &[i64], mask_seed: &Seed) -> Result<(i64, Vec<i64>), BaselineError> {
    if values.len() < 2 {
        return Err(BaselineError::InvalidParameter(
            "secure sum needs at least two parties".into(),
        ));
    }
    let mut rng = DynStreamRng::new(RngAlgorithm::ChaCha20, mask_seed);
    let mask = rng.next_u64() as i64;
    let mut transcript = Vec::with_capacity(values.len());
    // Party 0 starts the ring with its masked value.
    let mut running = values[0].wrapping_add(mask);
    transcript.push(running);
    for &v in &values[1..] {
        running = running.wrapping_add(v);
        transcript.push(running);
    }
    // Party 0 removes its mask from the total.
    Ok((running.wrapping_sub(mask), transcript))
}

/// Secure element-wise sum of one vector per party (used for centroid sums
/// and counts in the distributed k-means baseline).
pub fn secure_vector_sum(
    vectors: &[Vec<i64>],
    mask_seed: &Seed,
) -> Result<Vec<i64>, BaselineError> {
    if vectors.len() < 2 {
        return Err(BaselineError::InvalidParameter(
            "secure sum needs at least two parties".into(),
        ));
    }
    let dim = vectors[0].len();
    if vectors.iter().any(|v| v.len() != dim) {
        return Err(BaselineError::InvalidParameter(
            "all parties must contribute vectors of the same length".into(),
        ));
    }
    let mut out = Vec::with_capacity(dim);
    for i in 0..dim {
        let column: Vec<i64> = vectors.iter().map(|v| v[i]).collect();
        let (sum, _) = secure_sum(&column, &mask_seed.derive(&format!("dim/{i}")))?;
        out.push(sum);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_is_exact_and_masked() {
        let values = vec![10, -3, 42, 7];
        let (sum, transcript) = secure_sum(&values, &Seed::from_u64(5)).unwrap();
        assert_eq!(sum, 56);
        // The first message is masked: it must not equal party 0's input.
        assert_ne!(transcript[0], values[0]);
        // No intermediate message equals any single private input.
        for message in &transcript {
            assert!(!values.contains(message));
        }
    }

    #[test]
    fn vector_sum_matches_plain_sum() {
        let vectors = vec![vec![1, 2, 3], vec![10, 20, 30], vec![-5, 0, 5]];
        let sum = secure_vector_sum(&vectors, &Seed::from_u64(9)).unwrap();
        assert_eq!(sum, vec![6, 22, 38]);
    }

    #[test]
    fn validation() {
        assert!(secure_sum(&[1], &Seed::from_u64(1)).is_err());
        assert!(secure_vector_sum(&[vec![1]], &Seed::from_u64(1)).is_err());
        assert!(secure_vector_sum(&[vec![1, 2], vec![1]], &Seed::from_u64(1)).is_err());
    }

    #[test]
    fn wrapping_extremes_still_sum_correctly() {
        let values = vec![i64::MAX / 2, i64::MAX / 2, -(i64::MAX / 2)];
        let (sum, _) = secure_sum(&values, &Seed::from_u64(3)).unwrap();
        assert_eq!(sum, i64::MAX / 2);
    }
}
