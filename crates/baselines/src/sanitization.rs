//! Sanitization (perturbation) baseline.
//!
//! Stands in for the data-transformation line of work the paper contrasts
//! itself with (\[1\]–\[5\] in its related work): each data holder perturbs its
//! values before sharing them with the party that clusters. Privacy comes
//! from the noise; the price is accuracy. We implement additive Gaussian
//! noise for numeric attributes, random label flips for categorical
//! attributes and random character substitutions for alphanumeric
//! attributes, all controlled by a single `noise_level` knob so the accuracy
//! experiments can sweep the privacy/accuracy trade-off that the paper's
//! protocol avoids entirely.

use rand::rngs::StdRng;
use rand::Rng;

use ppc_core::{AttributeValue, DataMatrix, HorizontalPartition, Record, Schema};
use ppc_data::numeric::{rng_from_seed, sample_standard_normal};

use crate::error::BaselineError;

/// The sanitization baseline.
#[derive(Debug, Clone)]
pub struct SanitizationBaseline {
    schema: Schema,
    /// Noise level in `[0, 1]`: standard deviation of the additive numeric
    /// noise as a fraction of each attribute's observed range, and the
    /// probability of flipping categorical labels / substituting characters.
    pub noise_level: f64,
    /// Perturbation seed.
    pub seed: u64,
}

impl SanitizationBaseline {
    /// Creates the baseline.
    pub fn new(schema: Schema, noise_level: f64, seed: u64) -> Result<Self, BaselineError> {
        if !(0.0..=1.0).contains(&noise_level) {
            return Err(BaselineError::InvalidParameter(format!(
                "noise level {noise_level} outside [0, 1]"
            )));
        }
        Ok(SanitizationBaseline {
            schema,
            noise_level,
            seed,
        })
    }

    /// Sanitises one partition: the data holder perturbs every value before
    /// sharing it.
    pub fn sanitize_partition(
        &self,
        partition: &HorizontalPartition,
    ) -> Result<HorizontalPartition, BaselineError> {
        partition.validate_schema(&self.schema)?;
        let mut rng = rng_from_seed(self.seed ^ u64::from(partition.site()));
        // Per-attribute numeric ranges for scaling the noise.
        let ranges: Vec<f64> = (0..self.schema.len())
            .map(|i| {
                partition
                    .matrix()
                    .numeric_column(i)
                    .map(|col| {
                        let min = col.iter().copied().fold(f64::INFINITY, f64::min);
                        let max = col.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                        (max - min).abs().max(1.0)
                    })
                    .unwrap_or(1.0)
            })
            .collect();
        let mut sanitized = DataMatrix::new(self.schema.clone());
        for row in partition.matrix().rows() {
            let values: Vec<AttributeValue> = row
                .values()
                .iter()
                .enumerate()
                .map(|(i, v)| self.perturb(v, ranges[i], &mut rng))
                .collect();
            sanitized.push(Record::new(values))?;
        }
        Ok(HorizontalPartition::new(partition.site(), sanitized))
    }

    /// Sanitises every partition.
    pub fn sanitize_all(
        &self,
        partitions: &[HorizontalPartition],
    ) -> Result<Vec<HorizontalPartition>, BaselineError> {
        partitions
            .iter()
            .map(|p| self.sanitize_partition(p))
            .collect()
    }

    fn perturb(&self, value: &AttributeValue, range: f64, rng: &mut StdRng) -> AttributeValue {
        match value {
            AttributeValue::Numeric(x) => {
                let noise = self.noise_level * range * sample_standard_normal(rng);
                AttributeValue::Numeric(x + noise)
            }
            AttributeValue::Categorical(label) => {
                if rng.gen_bool(self.noise_level) {
                    // Flip to a synthetic decoy label.
                    AttributeValue::Categorical(format!("decoy-{}", rng.gen_range(0..4u8)))
                } else {
                    AttributeValue::Categorical(label.clone())
                }
            }
            AttributeValue::Alphanumeric(s) => {
                let descriptor = self
                    .schema
                    .attributes()
                    .iter()
                    .find(|a| a.kind == ppc_core::AttributeKind::Alphanumeric);
                let alphabet = descriptor.and_then(|d| d.alphabet.clone());
                match alphabet {
                    Some(alphabet) => {
                        let size = alphabet.size();
                        let perturbed: String = s
                            .chars()
                            .map(|c| {
                                if rng.gen_bool(self.noise_level) {
                                    alphabet.char_at(rng.gen_range(0..size)).unwrap_or(c)
                                } else {
                                    c
                                }
                            })
                            .collect();
                        AttributeValue::Alphanumeric(perturbed)
                    }
                    None => AttributeValue::Alphanumeric(s.clone()),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_cluster::agreement::adjusted_rand_index;
    use ppc_cluster::{ClusterAssignment, Linkage};
    use ppc_data::Workload;

    use crate::centralized::CentralizedBaseline;

    #[test]
    fn noise_level_validation() {
        let w = Workload::numeric_only(8, 2, 2, 1).unwrap();
        assert!(SanitizationBaseline::new(w.schema().clone(), -0.1, 0).is_err());
        assert!(SanitizationBaseline::new(w.schema().clone(), 1.1, 0).is_err());
        assert!(SanitizationBaseline::new(w.schema().clone(), 0.3, 0).is_ok());
    }

    #[test]
    fn zero_noise_is_the_identity() {
        let w = Workload::bird_flu(12, 2, 2, 9).unwrap();
        let baseline = SanitizationBaseline::new(w.schema().clone(), 0.0, 1).unwrap();
        let sanitized = baseline.sanitize_all(&w.partitions).unwrap();
        for (a, b) in w.partitions.iter().zip(&sanitized) {
            assert_eq!(a.matrix(), b.matrix());
        }
    }

    #[test]
    fn sanitization_perturbs_values_and_degrades_accuracy() {
        let w = Workload::customer_segmentation(36, 3, 3, 5).unwrap();
        let truth = ClusterAssignment::from_labels(&w.ground_truth_in_site_order());
        let central = CentralizedBaseline::new(w.schema().clone());
        let clean = central
            .run(
                &w.partitions,
                &w.schema().uniform_weights(),
                Linkage::Average,
                3,
            )
            .unwrap();
        let clean_ari = adjusted_rand_index(&clean.assignment, &truth).unwrap();

        let baseline = SanitizationBaseline::new(w.schema().clone(), 0.8, 3).unwrap();
        let sanitized = baseline.sanitize_all(&w.partitions).unwrap();
        // Values actually change.
        assert_ne!(sanitized[0].matrix(), w.partitions[0].matrix());
        let noisy = central
            .run(
                &sanitized,
                &w.schema().uniform_weights(),
                Linkage::Average,
                3,
            )
            .unwrap();
        let noisy_ari = adjusted_rand_index(&noisy.assignment, &truth).unwrap();
        assert!(
            noisy_ari < clean_ari,
            "sanitization should cost accuracy: clean {clean_ari}, noisy {noisy_ari}"
        );
    }
}
