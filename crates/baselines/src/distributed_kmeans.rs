//! Privacy-preserving distributed k-means over horizontally partitioned
//! numeric data, in the spirit of Jha, Kruger & McDaniel (ESORICS 2005) —
//! the prior art the paper cites for its own setting.
//!
//! Every site runs local Lloyd assignment against the current global
//! centroids; the per-cluster sums and counts needed to update the centroids
//! are aggregated with the [`secure_sum`](crate::secure_sum) protocol, so no
//! site reveals its per-cluster statistics, let alone raw points. The
//! limitations the paper calls out are structural and visible here: the
//! algorithm needs a *mean*, so it only handles numeric attributes, and it
//! fixes the clustering algorithm instead of producing a reusable
//! dissimilarity matrix.

use ppc_cluster::ClusterAssignment;
use ppc_core::{FixedPointCodec, HorizontalPartition, Schema};
use ppc_crypto::Seed;

use crate::error::BaselineError;
use crate::secure_sum::secure_vector_sum;

/// Configuration for the distributed k-means baseline.
#[derive(Debug, Clone, Copy)]
pub struct DistributedKMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iterations: usize,
    /// Seed for centroid initialisation and secure-sum masks.
    pub seed: u64,
}

/// Result of the distributed k-means baseline.
#[derive(Debug, Clone)]
pub struct DistributedKMeansResult {
    /// Assignment of every object, in global (site concatenation) order.
    pub assignment: ClusterAssignment,
    /// Final global centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Iterations executed.
    pub iterations: usize,
}

/// Runs secure-sum distributed k-means over the numeric attributes of the
/// partitions.
pub fn distributed_kmeans(
    schema: &Schema,
    partitions: &[HorizontalPartition],
    config: &DistributedKMeansConfig,
) -> Result<DistributedKMeansResult, BaselineError> {
    if partitions.len() < 2 {
        return Err(BaselineError::InvalidParameter(
            "distributed k-means needs at least two sites".into(),
        ));
    }
    if config.k == 0 {
        return Err(BaselineError::InvalidParameter("k must be positive".into()));
    }
    // Collect the numeric attribute indices; the baseline simply cannot use
    // categorical or alphanumeric attributes (the paper's point).
    let numeric_attributes: Vec<usize> = schema
        .attributes()
        .iter()
        .enumerate()
        .filter(|(_, a)| a.kind == ppc_core::AttributeKind::Numeric)
        .map(|(i, _)| i)
        .collect();
    if numeric_attributes.is_empty() {
        return Err(BaselineError::InvalidParameter(
            "distributed k-means requires at least one numeric attribute".into(),
        ));
    }
    let dim = numeric_attributes.len();

    // Local numeric views, per site.
    let mut local_points: Vec<Vec<Vec<f64>>> = Vec::with_capacity(partitions.len());
    for partition in partitions {
        partition.validate_schema(schema)?;
        let columns: Vec<Vec<f64>> = numeric_attributes
            .iter()
            .map(|&i| partition.matrix().numeric_column(i))
            .collect::<Result<_, _>>()?;
        let points: Vec<Vec<f64>> = (0..partition.len())
            .map(|row| columns.iter().map(|c| c[row]).collect())
            .collect();
        local_points.push(points);
    }
    let total_objects: usize = local_points.iter().map(Vec::len).sum();
    if total_objects < config.k {
        return Err(BaselineError::InvalidParameter(format!(
            "cannot form {} clusters from {total_objects} objects",
            config.k
        )));
    }

    // Initial centroids: spread across the first site's points plus, if
    // needed, other sites' points (public knowledge of k starting points is
    // assumed, as in the original protocol).
    let all_points: Vec<&Vec<f64>> = local_points.iter().flatten().collect();
    let mut centroids: Vec<Vec<f64>> = (0..config.k)
        .map(|i| all_points[(i * total_objects) / config.k].clone())
        .collect();

    let codec = FixedPointCodec::default();
    let mask_root = Seed::from_u64(config.seed);
    let mut iterations = 0;
    let mut assignments: Vec<Vec<usize>> = local_points
        .iter()
        .map(|pts| vec![0usize; pts.len()])
        .collect();
    for iteration in 0..config.max_iterations {
        iterations = iteration + 1;
        // Local assignment step at every site.
        for (site, points) in local_points.iter().enumerate() {
            for (i, p) in points.iter().enumerate() {
                let mut best = (0usize, f64::INFINITY);
                for (c, centroid) in centroids.iter().enumerate() {
                    let d: f64 = p.iter().zip(centroid).map(|(a, b)| (a - b) * (a - b)).sum();
                    if d < best.1 {
                        best = (c, d);
                    }
                }
                assignments[site][i] = best.0;
            }
        }
        // Secure aggregation of per-cluster sums and counts.
        let mut new_centroids = Vec::with_capacity(config.k);
        let mut moved = 0.0f64;
        for (c, centroid_c) in centroids.iter().enumerate() {
            // Each site contributes (sum_vector, count) in fixed point.
            let contributions: Vec<Vec<i64>> = local_points
                .iter()
                .enumerate()
                .map(|(site, points)| {
                    let mut sums = vec![0f64; dim];
                    let mut count = 0f64;
                    for (i, p) in points.iter().enumerate() {
                        if assignments[site][i] == c {
                            count += 1.0;
                            for (s, x) in sums.iter_mut().zip(p) {
                                *s += x;
                            }
                        }
                    }
                    let mut encoded: Vec<i64> = sums
                        .iter()
                        .map(|&s| codec.encode(s))
                        .collect::<Result<_, _>>()
                        .expect("bounded sums encode");
                    encoded.push(codec.encode(count).expect("bounded count encodes"));
                    encoded
                })
                .collect();
            let aggregated = secure_vector_sum(
                &contributions,
                &mask_root.derive(&format!("iter/{iteration}/cluster/{c}")),
            )?;
            let count = codec.decode(aggregated[dim]);
            let centroid: Vec<f64> = if count > 0.5 {
                aggregated[..dim]
                    .iter()
                    .map(|&s| codec.decode(s) / count)
                    .collect()
            } else {
                centroid_c.clone()
            };
            moved += centroid
                .iter()
                .zip(centroid_c)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
            new_centroids.push(centroid);
        }
        centroids = new_centroids;
        if moved < 1e-9 {
            break;
        }
    }

    let flat: Vec<usize> = assignments.iter().flatten().copied().collect();
    Ok(DistributedKMeansResult {
        assignment: ClusterAssignment::from_labels(&flat),
        centroids,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_cluster::agreement::adjusted_rand_index;
    use ppc_data::Workload;

    #[test]
    fn recovers_clusters_on_numeric_workload() {
        let w = Workload::customer_segmentation(45, 3, 3, 21).unwrap();
        let config = DistributedKMeansConfig {
            k: 3,
            max_iterations: 50,
            seed: 5,
        };
        let result = distributed_kmeans(w.schema(), &w.partitions, &config).unwrap();
        assert_eq!(result.assignment.len(), 45);
        let truth = ClusterAssignment::from_labels(&w.ground_truth_in_site_order());
        let ari = adjusted_rand_index(&result.assignment, &truth).unwrap();
        assert!(ari > 0.6, "distributed k-means ARI {ari}");
        assert_eq!(result.centroids.len(), 3);
        assert!(result.iterations >= 1);
    }

    #[test]
    fn rejects_workloads_without_numeric_attributes() {
        let w = Workload::dna_only(12, 2, 2, 16, 1).unwrap();
        let config = DistributedKMeansConfig {
            k: 2,
            max_iterations: 10,
            seed: 1,
        };
        assert!(distributed_kmeans(w.schema(), &w.partitions, &config).is_err());
    }

    #[test]
    fn parameter_validation() {
        let w = Workload::numeric_only(10, 2, 2, 3).unwrap();
        let bad_k = DistributedKMeansConfig {
            k: 0,
            max_iterations: 10,
            seed: 1,
        };
        assert!(distributed_kmeans(w.schema(), &w.partitions, &bad_k).is_err());
        let too_many = DistributedKMeansConfig {
            k: 100,
            max_iterations: 10,
            seed: 1,
        };
        assert!(distributed_kmeans(w.schema(), &w.partitions, &too_many).is_err());
        assert!(distributed_kmeans(
            w.schema(),
            &w.partitions[..1],
            &DistributedKMeansConfig {
                k: 2,
                max_iterations: 10,
                seed: 1
            }
        )
        .is_err());
    }
}
