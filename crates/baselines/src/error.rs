//! Error type for the baselines.

use std::fmt;

use ppc_cluster::ClusterError;
use ppc_core::CoreError;
use ppc_data::DataError;

/// Errors produced by the baseline implementations.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// A parameter was out of range (message explains which).
    InvalidParameter(String),
    /// Error from the core crate.
    Core(CoreError),
    /// Error from the clustering substrate.
    Cluster(ClusterError),
    /// Error from the data generators.
    Data(DataError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            BaselineError::Core(e) => write!(f, "core error: {e}"),
            BaselineError::Cluster(e) => write!(f, "clustering error: {e}"),
            BaselineError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<CoreError> for BaselineError {
    fn from(e: CoreError) -> Self {
        BaselineError::Core(e)
    }
}

impl From<ClusterError> for BaselineError {
    fn from(e: ClusterError) -> Self {
        BaselineError::Cluster(e)
    }
}

impl From<DataError> for BaselineError {
    fn from(e: DataError) -> Self {
        BaselineError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: BaselineError = CoreError::EmptyInput.into();
        assert!(e.to_string().contains("core"));
        let e: BaselineError = ClusterError::EmptyInput.into();
        assert!(e.to_string().contains("clustering"));
        let e: BaselineError = DataError::InvalidParameter("x".into()).into();
        assert!(e.to_string().contains("data"));
        assert!(BaselineError::InvalidParameter("p".into())
            .to_string()
            .contains("p"));
    }
}
