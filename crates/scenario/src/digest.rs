//! Deterministic fingerprints for byte-identity assertions.
//!
//! "Byte-identical to the oracle" is asserted by comparing 64-bit FNV-1a
//! digests over the exact IEEE-754 bit patterns of every published value.
//! Hashing instead of materialising both sides keeps the flagship
//! comparisons (10⁴ objects ⇒ ~5·10⁷ condensed entries per run) at one
//! resident copy, and a digest mismatch is exactly a byte mismatch.

use ppc_core::protocol::engine::EngineOutcome;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming 64-bit FNV-1a hasher.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(FNV_OFFSET)
    }
}

impl Fnv {
    /// Absorbs raw bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs the exact bit pattern of every float, in order.
    pub fn update_f64_bits(&mut self, values: &[f64]) {
        for v in values {
            self.update(&v.to_bits().to_le_bytes());
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Fingerprint of arbitrary text (manifests, schema specs, stdout lines).
pub fn fingerprint_str(text: &str) -> u64 {
    let mut h = Fnv::default();
    h.update(text.as_bytes());
    h.finish()
}

/// Fingerprint of one engine outcome: the published cluster membership,
/// the quality parameter's bits, and every condensed-matrix entry's bits.
pub fn fingerprint_outcome(outcome: &EngineOutcome) -> u64 {
    let mut h = Fnv::default();
    absorb_outcome(&mut h, outcome);
    h.finish()
}

/// Fingerprint of a full engine run (outcomes in session order).
pub fn fingerprint_outcomes(outcomes: &[EngineOutcome]) -> u64 {
    let mut h = Fnv::default();
    for outcome in outcomes {
        absorb_outcome(&mut h, outcome);
    }
    h.finish()
}

/// Fingerprint of a published result in wire form (`(site, local_index)`
/// pairs), as carried by `PublishedResultMsg`/`TpOutcome`. Produces the
/// same digest as [`fingerprint_outcome`] for the same session, so party
/// reports can be compared against the in-process oracle directly.
pub fn fingerprint_published(clusters: &[Vec<(u32, u32)>], average: f64, condensed: &[f64]) -> u64 {
    let mut h = Fnv::default();
    absorb_published(&mut h, clusters, average, condensed);
    h.finish()
}

fn absorb_outcome(h: &mut Fnv, outcome: &EngineOutcome) {
    for cluster in &outcome.result.clusters {
        h.update(b"[");
        for member in cluster {
            h.update(&member.site.to_le_bytes());
            h.update(&(member.local_index as u32).to_le_bytes());
        }
        h.update(b"]");
    }
    h.update_f64_bits(&[outcome.result.average_within_cluster_squared_distance]);
    h.update_f64_bits(outcome.final_matrix.matrix().condensed_values());
}

fn absorb_published(h: &mut Fnv, clusters: &[Vec<(u32, u32)>], average: f64, condensed: &[f64]) {
    for cluster in clusters {
        h.update(b"[");
        for &(site, local_index) in cluster {
            h.update(&site.to_le_bytes());
            h.update(&local_index.to_le_bytes());
        }
        h.update(b"]");
    }
    h.update_f64_bits(&[average]);
    h.update_f64_bits(condensed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_order_sensitive_and_bit_exact() {
        assert_eq!(fingerprint_str("ab"), fingerprint_str("ab"));
        assert_ne!(fingerprint_str("ab"), fingerprint_str("ba"));
        let mut a = Fnv::default();
        a.update_f64_bits(&[0.0]);
        let mut b = Fnv::default();
        b.update_f64_bits(&[-0.0]);
        assert_ne!(
            a.finish(),
            b.finish(),
            "bit-level identity distinguishes 0.0 from -0.0"
        );
    }
}
