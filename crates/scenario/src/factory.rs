//! The seeded scenario factory.
//!
//! A [`ScenarioSpec`] is a small, copyable description of a federation
//! workload; [`ScenarioSpec::generate`] expands it — fully deterministically
//! — into a [`Scenario`]: the mixed schema, the generated dataset, its
//! horizontal partitioning across k sites, and a list of per-session plans
//! with deliberate diversity (linkage, weights, chunk windows, numeric
//! modes). The same seed always yields the byte-identical scenario, which
//! [`Scenario::fingerprint`] pins.
//!
//! Everything downstream consumes the same artefacts: in-process engines
//! take [`Scenario::session_specs`], the `ppc-party` CLI takes
//! [`Scenario::schema_cli`] + per-site CSVs ([`Scenario::write_csvs`]) + a
//! [`Scenario::manifest_text`] that round-trips through the CLI's
//! `--manifest` parser, and benches label rows with the scenario seed.

use std::path::{Path, PathBuf};

use rand::Rng;

use ppc_cluster::Linkage;
use ppc_core::csv::to_csv;
use ppc_core::protocol::driver::ClusteringRequest;
use ppc_core::protocol::engine::{EngineOutcome, SessionEngine, SessionSpec};
use ppc_core::protocol::party::TrustedSetup;
use ppc_core::protocol::party_engine::SessionPlan;
use ppc_core::protocol::{NumericMode, ProtocolConfig};
use ppc_core::schema::WeightVector;
use ppc_core::{Alphabet, HorizontalPartition, Schema};
use ppc_crypto::Seed;
use ppc_data::categorical::CategoricalGenerator;
use ppc_data::mixed::{AttributeSpec, GeneratedDataset, MixedDatasetSpec};
use ppc_data::numeric::{rng_from_seed, GaussianMixture};
use ppc_data::partition::{partition, PartitionStrategy};
use ppc_data::sequence::SequenceGenerator;
use ppc_net::{Network, PartyId};

use crate::digest::{fingerprint_str, Fnv};

/// How rows are distributed across the k sites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SiteSkew {
    /// Balanced random assignment — every site holds ~n/k rows.
    Uniform,
    /// Site `i` holds a share ∝ `1/(i+1)^exponent` (heavy-tailed
    /// institution sizes).
    Zipf {
        /// Skew exponent (≥ 0; 0 is uniform, 1 harmonic, larger steeper).
        exponent: f64,
    },
    /// One dominant institution: site 0 holds `fraction` of all rows, the
    /// remainder is split evenly.
    DominantSite {
        /// Site 0's share (0 < fraction < 1).
        fraction: f64,
    },
}

/// Shape of the mixed schema: how many attributes of each kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemaShape {
    /// Gaussian-mixture numeric attributes.
    pub numeric: usize,
    /// Categorical attributes with per-cluster dominant labels.
    pub categorical: usize,
    /// Alphanumeric attributes mutated from per-cluster ancestors.
    pub alphanumeric: usize,
    /// Ancestor length of the alphanumeric attributes, in symbols.
    pub sequence_len: usize,
}

impl Default for SchemaShape {
    /// One attribute of every kind — the paper's mixed-schema setting.
    fn default() -> Self {
        SchemaShape {
            numeric: 1,
            categorical: 1,
            alphanumeric: 1,
            sequence_len: 10,
        }
    }
}

/// A seeded, deterministic description of a federation workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioSpec {
    /// Master seed: drives data generation, partitioning, session
    /// diversity *and* the trusted setup. Same seed ⇒ identical scenario.
    pub seed: u64,
    /// Number of data-holder sites (3–16).
    pub sites: u32,
    /// Total objects across all sites.
    pub objects: usize,
    /// Ground-truth clusters baked into the generated data.
    pub clusters: usize,
    /// Row-distribution skew across sites.
    pub skew: SiteSkew,
    /// Mixed-schema shape.
    pub shape: SchemaShape,
    /// Number of sessions (each gets its own diversified plan).
    pub sessions: usize,
    /// Base chunk window the per-session diversity varies around
    /// (`None` streams whole matrices).
    pub chunk_base: Option<usize>,
}

impl ScenarioSpec {
    /// The small deterministic scenario the CI slice runs: 5 sites, a few
    /// hundred objects, zipf row skew, one attribute of every kind, three
    /// diversified sessions.
    pub fn ci(seed: u64) -> Self {
        ScenarioSpec {
            seed,
            sites: 5,
            objects: 240,
            clusters: 3,
            skew: SiteSkew::Zipf { exponent: 1.0 },
            shape: SchemaShape::default(),
            sessions: 3,
            chunk_base: Some(8),
        }
    }

    /// The flagship acceptance scenario: 8 sites, 10⁴ objects, mixed
    /// schema, zipf row skew. Release-mode only — a debug build pays ~30×
    /// on the O(n²) masking kernels.
    pub fn flagship(seed: u64) -> Self {
        ScenarioSpec {
            seed,
            sites: 8,
            objects: 10_000,
            clusters: 4,
            skew: SiteSkew::Zipf { exponent: 0.8 },
            shape: SchemaShape {
                numeric: 1,
                categorical: 1,
                alphanumeric: 1,
                sequence_len: 12,
            },
            sessions: 1,
            chunk_base: Some(256),
        }
    }

    /// Expands the spec into the full deterministic scenario.
    pub fn generate(&self) -> Result<Scenario, String> {
        if !(3..=16).contains(&self.sites) {
            return Err(format!("sites must be in 3..=16, got {}", self.sites));
        }
        if self.objects < self.sites as usize {
            return Err(format!(
                "{} objects cannot cover {} sites",
                self.objects, self.sites
            ));
        }
        if self.clusters < 2 {
            return Err("at least two ground-truth clusters required".into());
        }
        if self.sessions == 0 {
            return Err("at least one session required".into());
        }
        let shape = &self.shape;
        if shape.numeric + shape.categorical + shape.alphanumeric == 0 {
            return Err("the schema shape declares no attributes".into());
        }
        if shape.alphanumeric > 0 && shape.sequence_len == 0 {
            return Err("alphanumeric attributes need a positive sequence_len".into());
        }

        let mut schema_rng = rng_from_seed(mix(self.seed, 0x5C11_E3A0));
        let mut attributes = Vec::new();
        let mut cli_fields = Vec::new();
        for i in 0..shape.numeric {
            let base = 10.0 + 17.0 * i as f64;
            let spacing = 6.0 + 2.0 * i as f64;
            attributes.push(AttributeSpec::Numeric {
                name: format!("num{i}"),
                mixture: GaussianMixture::evenly_spaced(self.clusters, base, spacing, 1.5)
                    .map_err(|e| e.to_string())?,
            });
            cli_fields.push(format!("num{i}:numeric"));
        }
        for i in 0..shape.categorical {
            let labels = LABEL_POOLS[i % LABEL_POOLS.len()]
                .iter()
                .map(|l| l.to_string())
                .collect();
            attributes.push(AttributeSpec::Categorical {
                name: format!("cat{i}"),
                generator: CategoricalGenerator::dominant_label(labels, self.clusters, 0.08)
                    .map_err(|e| e.to_string())?,
            });
            cli_fields.push(format!("cat{i}:categorical"));
        }
        for i in 0..shape.alphanumeric {
            let (alphabet_name, alphabet) = alphabet_pool(i);
            attributes.push(AttributeSpec::Alphanumeric {
                name: format!("seq{i}"),
                generator: SequenceGenerator::random_ancestors(
                    alphabet,
                    self.clusters,
                    shape.sequence_len,
                    0.06,
                    0.02,
                    &mut schema_rng,
                )
                .map_err(|e| e.to_string())?,
            });
            cli_fields.push(format!("seq{i}:alphanumeric:{alphabet_name}"));
        }
        let schema_cli = cli_fields.join(",");

        let dataset = MixedDatasetSpec {
            attributes,
            clusters: self.clusters,
            objects: self.objects,
            seed: mix(self.seed, 0x0DA7_A5E7),
        }
        .generate()
        .map_err(|e| e.to_string())?;

        let strategy = match self.skew {
            SiteSkew::Uniform => PartitionStrategy::Random {
                seed: mix(self.seed, 0x9A27),
            },
            SiteSkew::Zipf { exponent } => PartitionStrategy::Zipf {
                exponent,
                seed: mix(self.seed, 0x21BF),
            },
            SiteSkew::DominantSite { fraction } => PartitionStrategy::Skewed { fraction },
        };
        let (partitions, origins) =
            partition(&dataset.data, self.sites, strategy).map_err(|e| e.to_string())?;

        // Per-session manifest diversity: linkage, weights (small integers,
        // normalised through the same WeightVector path the manifest parser
        // uses), chunk window and numeric mode all rotate deterministically.
        let attrs = dataset.data.schema().len();
        let mut plan_rng = rng_from_seed(mix(self.seed, 0xD1CE));
        let mut profiles = Vec::with_capacity(self.sessions);
        for s in 0..self.sessions {
            let linkage = LINKAGE_POOL[s % LINKAGE_POOL.len()];
            let raw_weights: Vec<u32> = if s % 2 == 0 {
                vec![1; attrs]
            } else {
                (0..attrs).map(|_| plan_rng.gen_range(1..=4)).collect()
            };
            let chunk_rows = match (s % 3, self.chunk_base) {
                (_, None) | (2, _) => None,
                (0, Some(base)) => Some(base),
                (_, Some(base)) => Some((base * 2).max(2)),
            };
            let numeric_mode = if s % 2 == 0 {
                NumericMode::Batch
            } else {
                NumericMode::PerPair
            };
            let clusters = 2 + (s % 3);
            profiles.push(SessionProfile {
                clusters,
                linkage,
                raw_weights,
                chunk_rows,
                numeric_mode,
            });
        }

        let schema = dataset.data.schema().clone();
        let plans = profiles
            .iter()
            .map(|p| p.plan())
            .collect::<Result<Vec<SessionPlan>, String>>()?;

        Ok(Scenario {
            spec: *self,
            schema,
            schema_cli,
            dataset,
            partitions,
            origins,
            profiles,
            plans,
            master: Seed::from_u64(self.seed),
        })
    }
}

/// One session's diversified knobs, kept in renderable (raw) form so the
/// emitted manifest builds the *same* plan through the CLI parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionProfile {
    /// Requested number of clusters.
    pub clusters: usize,
    /// Linkage criterion.
    pub linkage: Linkage,
    /// Raw (pre-normalisation) attribute weights, one per attribute.
    pub raw_weights: Vec<u32>,
    /// Chunk window (`None` streams whole matrices).
    pub chunk_rows: Option<usize>,
    /// Numeric masking mode.
    pub numeric_mode: NumericMode,
}

impl SessionProfile {
    /// The manifest line for this session (`key=value` tokens, every key
    /// explicit so the base plan never leaks through).
    pub fn manifest_line(&self) -> String {
        let weights: Vec<String> = self.raw_weights.iter().map(u32::to_string).collect();
        format!(
            "clusters={} linkage={} weights={} chunk-rows={} numeric-mode={}",
            self.clusters,
            linkage_name(self.linkage),
            weights.join(","),
            match self.chunk_rows {
                Some(w) => w.to_string(),
                None => "none".into(),
            },
            numeric_mode_name(self.numeric_mode),
        )
    }

    /// Builds the session plan, normalising weights exactly like the
    /// manifest parser does.
    pub fn plan(&self) -> Result<SessionPlan, String> {
        let weights = WeightVector::new(self.raw_weights.iter().map(|&w| f64::from(w)).collect())
            .map_err(|e| e.to_string())?;
        Ok(SessionPlan {
            config: ProtocolConfig {
                numeric_mode: self.numeric_mode,
                ..ProtocolConfig::default()
            },
            request: ClusteringRequest {
                weights,
                linkage: self.linkage,
                num_clusters: self.clusters,
            },
            chunk_rows: self.chunk_rows,
        })
    }
}

/// A fully generated scenario: dataset, partitioning and session plans.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The spec this scenario was generated from.
    pub spec: ScenarioSpec,
    /// The mixed schema.
    pub schema: Schema,
    /// The schema in `ppc-party --schema` syntax.
    pub schema_cli: String,
    /// The generated global dataset with ground-truth labels.
    pub dataset: GeneratedDataset,
    /// Horizontal partitions, ascending site order.
    pub partitions: Vec<HorizontalPartition>,
    /// For every site, the global row index of each of its rows.
    pub origins: Vec<Vec<usize>>,
    /// Per-session diversity in renderable form.
    pub profiles: Vec<SessionProfile>,
    /// The session plans the profiles expand to.
    pub plans: Vec<SessionPlan>,
    /// The trusted-setup master seed (`Seed::from_u64(spec.seed)`).
    pub master: Seed,
}

impl Scenario {
    /// The schema in `ppc-party --schema` syntax.
    pub fn schema_cli(&self) -> &str {
        &self.schema_cli
    }

    /// The `--manifest` text: one diversified session per line. Parsing
    /// this with the CLI's manifest parser reproduces [`Self::plans`]
    /// exactly (the round-trip property the generator tests pin).
    pub fn manifest_text(&self) -> String {
        let mut out = format!(
            "# scenario seed={} sites={} objects={}\n",
            self.spec.seed, self.spec.sites, self.spec.objects
        );
        for profile in &self.profiles {
            out.push_str(&profile.manifest_line());
            out.push('\n');
        }
        out
    }

    /// Every party of the federation: `DH0..DH{k-1}` plus the third party.
    pub fn parties(&self) -> Vec<PartyId> {
        (0..self.spec.sites)
            .map(PartyId::DataHolder)
            .chain([PartyId::ThirdParty])
            .collect()
    }

    /// Expands the scenario into one [`SessionSpec`] per plan, running the
    /// deterministic trusted setup per session (sessions are independent).
    pub fn session_specs(&self) -> Result<Vec<SessionSpec>, String> {
        self.plans
            .iter()
            .map(|plan| {
                let setup = TrustedSetup::deterministic(self.partitions.clone(), &self.master)
                    .map_err(|e| e.to_string())?;
                Ok(SessionSpec {
                    schema: self.schema.clone(),
                    config: plan.config,
                    holders: setup.holders,
                    keys: setup.third_party,
                    request: plan.request.clone(),
                    chunk_rows: plan.chunk_rows,
                })
            })
            .collect()
    }

    /// Runs the uninterrupted single-threaded in-process oracle over an
    /// ideal in-memory network, returning outcomes in session order.
    pub fn oracle(&self) -> Result<Vec<EngineOutcome>, String> {
        let mut engine = SessionEngine::new(Network::with_parties(self.spec.sites));
        for spec in self.session_specs()? {
            engine.add_session(spec);
        }
        engine.run().map_err(|e| e.to_string())
    }

    /// Writes one CSV per site into `dir` (`site0.csv`, `site1.csv`, …),
    /// returning the paths in site order.
    pub fn write_csvs(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        let mut paths = Vec::with_capacity(self.partitions.len());
        for partition in &self.partitions {
            let path = dir.join(format!("site{}.csv", partition.site()));
            std::fs::write(&path, to_csv(partition.matrix()))?;
            paths.push(path);
        }
        Ok(paths)
    }

    /// A digest over everything the scenario pins: the CLI schema, every
    /// partition's CSV rendering (site order), the ground-truth labels and
    /// the manifest. Two scenarios from the same spec always agree.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::default();
        h.update(self.schema_cli.as_bytes());
        for partition in &self.partitions {
            h.update(&partition.site().to_le_bytes());
            h.update(to_csv(partition.matrix()).as_bytes());
        }
        for &label in &self.dataset.labels {
            h.update(&(label as u64).to_le_bytes());
        }
        h.update(&fingerprint_str(&self.manifest_text()).to_le_bytes());
        h.finish()
    }
}

/// Stable lowercase linkage names matching the CLI's `parse_linkage`.
pub fn linkage_name(linkage: Linkage) -> &'static str {
    match linkage {
        Linkage::Single => "single",
        Linkage::Complete => "complete",
        Linkage::Average => "average",
        Linkage::Weighted => "weighted",
        Linkage::Ward => "ward",
        Linkage::Centroid => "centroid",
        Linkage::Median => "median",
    }
}

/// Stable numeric-mode names matching the CLI's `--numeric-mode`.
pub fn numeric_mode_name(mode: NumericMode) -> &'static str {
    match mode {
        NumericMode::Batch => "batch",
        NumericMode::PerPair => "per-pair",
    }
}

/// The linkage rotation applied across sessions.
const LINKAGE_POOL: [Linkage; 5] = [
    Linkage::Average,
    Linkage::Ward,
    Linkage::Single,
    Linkage::Complete,
    Linkage::Weighted,
];

/// Categorical label vocabularies, rotated per attribute.
const LABEL_POOLS: [&[&str]; 3] = [
    &["mild", "severe", "critical"],
    &["a", "b", "o", "ab"],
    &["north", "south", "east", "west"],
];

/// Alphabets with their CLI names, rotated per alphanumeric attribute.
fn alphabet_pool(i: usize) -> (&'static str, Alphabet) {
    match i % 3 {
        0 => ("dna", Alphabet::dna()),
        1 => ("abcd", Alphabet::abcd()),
        _ => ("lowercase", Alphabet::lowercase()),
    }
}

/// SplitMix64-style seed derivation so every sub-generator gets an
/// independent, reproducible stream.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_validate() {
        assert!(ScenarioSpec {
            sites: 2,
            ..ScenarioSpec::ci(1)
        }
        .generate()
        .is_err());
        assert!(ScenarioSpec {
            sites: 17,
            ..ScenarioSpec::ci(1)
        }
        .generate()
        .is_err());
        assert!(ScenarioSpec {
            objects: 4,
            ..ScenarioSpec::ci(1)
        }
        .generate()
        .is_err());
        assert!(ScenarioSpec {
            sessions: 0,
            ..ScenarioSpec::ci(1)
        }
        .generate()
        .is_err());
        assert!(ScenarioSpec {
            clusters: 1,
            ..ScenarioSpec::ci(1)
        }
        .generate()
        .is_err());
    }

    #[test]
    fn scenario_shape_matches_spec() {
        let scenario = ScenarioSpec::ci(7).generate().unwrap();
        assert_eq!(scenario.partitions.len(), 5);
        assert_eq!(scenario.plans.len(), 3);
        assert_eq!(scenario.schema.len(), 3);
        assert_eq!(
            scenario
                .partitions
                .iter()
                .map(HorizontalPartition::len)
                .sum::<usize>(),
            240
        );
        assert_eq!(scenario.parties().len(), 6);
        // Zipf skew: site 0 dominates the tail site.
        assert!(scenario.partitions[0].len() > scenario.partitions[4].len());
        // Session diversity: the three CI sessions differ in linkage and
        // numeric mode.
        assert_ne!(
            scenario.plans[0].request.linkage,
            scenario.plans[1].request.linkage
        );
        assert_ne!(
            scenario.plans[0].config.numeric_mode,
            scenario.plans[1].config.numeric_mode
        );
    }

    #[test]
    fn dominant_site_skew_applies() {
        let scenario = ScenarioSpec {
            skew: SiteSkew::DominantSite { fraction: 0.6 },
            ..ScenarioSpec::ci(3)
        }
        .generate()
        .unwrap();
        assert_eq!(scenario.partitions[0].len(), 144);
    }
}
