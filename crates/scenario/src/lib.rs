//! # ppc-scenario — seeded scenario factory + chaos matrix
//!
//! Every test and bench used to exercise ~2 holders and a third party over
//! 32-object miniatures. This crate makes *realistic adversarial workloads*
//! the standard surface instead:
//!
//! * [`factory`] — a seeded, deterministic generator producing k sites
//!   (3–16) with skewed row distributions (uniform / zipf / one dominant
//!   site), mixed numeric/categorical/alphanumeric schemas, datasets up to
//!   10⁵ objects, and per-session manifest diversity (linkage, weights,
//!   chunk windows, numeric modes). Same seed ⇒ byte-identical scenario.
//! * [`chaos`] — the chaos matrix: WAN loss/latency profiles crossed with
//!   mid-run link kills ([`sever_links`](ppc_net::SocketTransport::sever_links)),
//!   dead peers and frame tampering, plus the machine-readable **outcome
//!   taxonomy** ([`chaos::RunOutcome`]) and per-cell expectations
//!   ([`chaos::Expectation`]) that make "settled" runs impossible to pass
//!   off as "completed".
//! * [`proxy`] — reusable byte-level TCP adversaries (tamper proxy) for
//!   driving the tampering cells against real sockets.
//! * [`digest`] — the order-sensitive fingerprints used for byte-identity
//!   (`f64`-bit exact) comparisons against the in-process oracle.
//!
//! The three consumers are `tests/scenario_matrix.rs` (deterministic CI
//! slice vs the [`SessionEngine`](ppc_core::protocol::engine::SessionEngine)
//! oracle), the `ppc-party` process-level chaos harness, and the bench
//! binaries that emit `BENCH_pr8.json`. See `docs/SCENARIOS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod digest;
pub mod factory;
pub mod proxy;

pub use chaos::{ChaosCell, Expectation, FailureReason, Fault, NetworkProfile, RunOutcome};
pub use factory::{Scenario, ScenarioSpec, SchemaShape, SessionProfile, SiteSkew};
pub use proxy::TamperProxy;
