//! The chaos matrix: fault cells, the machine-readable outcome taxonomy
//! and the per-cell expectations that keep "settled" from passing as
//! "completed".
//!
//! A chaos run never asserts inline — it runs, gets **classified** into a
//! [`RunOutcome`] by one of the `classify_*` functions, and the cell's
//! [`Expectation`] is checked against that classification. The expectation
//! match is strict: a run that settled with the wrong failure reason, or
//! completed with a fingerprint differing from the oracle, is a test
//! failure, not a shrug.

use ppc_core::protocol::engine::EngineOutcome;
use ppc_core::protocol::party_engine::{PartyOutcome, PartyRunReport, SessionFailure, TpOutcome};

use crate::digest::{fingerprint_outcomes, fingerprint_str, Fnv};

/// The network conditions a cell runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkProfile {
    /// In-memory or loopback, no simulated impairment.
    Ideal,
    /// `WanProfile::wan()` — 100 Mbit/s, 20 ms, lossless.
    Wan,
    /// `WanProfile::lossy_dsl()` — 10 Mbit/s, 50 ms, 1% transmission loss.
    LossyDsl,
}

impl NetworkProfile {
    /// Stable lowercase name for bench rows and test labels.
    pub fn name(self) -> &'static str {
        match self {
            NetworkProfile::Ideal => "ideal",
            NetworkProfile::Wan => "wan",
            NetworkProfile::LossyDsl => "lossy-dsl",
        }
    }
}

/// The fault a cell injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// No fault — the baseline column.
    None,
    /// Mid-run `sever_links`: OS streams die, logical links re-dial and
    /// replay. The run must still complete identical to the oracle.
    SeverResume,
    /// A peer is gone for good on a *direct* link with a bounded reconnect
    /// policy: sends eventually fail and the run settles `PeerUnreachable`.
    DeadPeer,
    /// A byte of a sealed frame is flipped in flight: the AEAD tier
    /// detects it and the run settles `ChannelAuth`.
    TamperSealed,
    /// A process is killed behind a router and never restarted: the router
    /// keeps buffering, so the coordinator hits its stall budget.
    KillBehindRouter,
    /// Handshake-level security mismatch (a plaintext peer against a
    /// sealed federation): the connection is rejected before any protocol
    /// traffic — no silent downgrade.
    SecurityMismatch,
}

impl Fault {
    /// Stable lowercase name for bench rows and test labels.
    pub fn name(self) -> &'static str {
        match self {
            Fault::None => "none",
            Fault::SeverResume => "sever-resume",
            Fault::DeadPeer => "dead-peer",
            Fault::TamperSealed => "tamper-sealed",
            Fault::KillBehindRouter => "kill-behind-router",
            Fault::SecurityMismatch => "security-mismatch",
        }
    }
}

/// Why a run settled instead of completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureReason {
    /// Reconnect backoff exhausted towards a peer.
    PeerUnreachable,
    /// The channel-security tier detected active interference.
    ChannelAuth,
    /// Any other reported failure.
    Other,
}

/// The machine-readable outcome taxonomy every chaos run is classified
/// into. Exactly one variant per run; classification is mechanical (no
/// judgement calls in test bodies).
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// The run finished and published results; `fingerprint` digests the
    /// published bytes (see [`crate::digest`]).
    Completed {
        /// Digest of everything published, f64-bit exact.
        fingerprint: u64,
    },
    /// The run finished *by reporting failure* — sessions settled with a
    /// classified reason rather than results.
    Settled {
        /// The dominant failure reason across settled sessions.
        reason: FailureReason,
        /// Human-readable detail for diagnostics.
        detail: String,
    },
    /// The connection was rejected at handshake time — no session ever
    /// started.
    AuthRejected {
        /// Human-readable detail for diagnostics.
        detail: String,
    },
    /// The run made no progress within its stall/readiness budget.
    Stalled {
        /// Human-readable detail for diagnostics.
        detail: String,
    },
}

impl RunOutcome {
    /// Stable lowercase name of the taxonomy bucket.
    pub fn name(&self) -> &'static str {
        match self {
            RunOutcome::Completed { .. } => "completed",
            RunOutcome::Settled { .. } => "settled",
            RunOutcome::AuthRejected { .. } => "auth-rejected",
            RunOutcome::Stalled { .. } => "stalled",
        }
    }
}

/// What a cell is *supposed* to do. Checked strictly: the wrong bucket,
/// the wrong settle reason, or a completed run whose fingerprint differs
/// from the oracle's all fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// The run completes and its fingerprint equals the oracle's.
    CompletedIdenticalToOracle,
    /// The run settles with exactly this failure reason.
    Settled(FailureReason),
    /// The handshake rejects the connection.
    AuthRejected,
    /// The run hits its stall budget.
    Stalled,
}

impl Expectation {
    /// Checks a classified outcome against this expectation.
    ///
    /// `oracle_fingerprint` must be `Some` for
    /// [`Expectation::CompletedIdenticalToOracle`] cells and is ignored by
    /// the failure cells.
    pub fn check(
        &self,
        outcome: &RunOutcome,
        oracle_fingerprint: Option<u64>,
    ) -> Result<(), String> {
        match (self, outcome) {
            (Expectation::CompletedIdenticalToOracle, RunOutcome::Completed { fingerprint }) => {
                match oracle_fingerprint {
                    Some(oracle) if oracle == *fingerprint => Ok(()),
                    Some(oracle) => Err(format!(
                        "completed, but fingerprint {fingerprint:016x} differs from the \
                         oracle's {oracle:016x}"
                    )),
                    None => Err("expected CompletedIdenticalToOracle but no oracle \
                                 fingerprint was supplied"
                        .into()),
                }
            }
            (Expectation::Settled(want), RunOutcome::Settled { reason, detail }) => {
                if want == reason {
                    Ok(())
                } else {
                    Err(format!(
                        "settled with reason {reason:?} (wanted {want:?}): {detail}"
                    ))
                }
            }
            (Expectation::AuthRejected, RunOutcome::AuthRejected { .. }) => Ok(()),
            (Expectation::Stalled, RunOutcome::Stalled { .. }) => Ok(()),
            (want, got) => Err(format!("expected {want:?}, classified as {got:?}")),
        }
    }
}

/// One cell of the chaos matrix: a network profile crossed with a fault,
/// plus the assert-able expectation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosCell {
    /// Stable cell name (used in test output and bench rows).
    pub name: &'static str,
    /// Network conditions.
    pub profile: NetworkProfile,
    /// Injected fault.
    pub fault: Fault,
    /// What the cell must classify as.
    pub expect: Expectation,
}

/// The deterministic CI slice of the matrix — every taxonomy bucket is
/// covered by at least one cell, so no bucket can silently regress.
pub fn ci_slice() -> Vec<ChaosCell> {
    vec![
        ChaosCell {
            name: "ideal/baseline",
            profile: NetworkProfile::Ideal,
            fault: Fault::None,
            expect: Expectation::CompletedIdenticalToOracle,
        },
        ChaosCell {
            name: "wan/baseline",
            profile: NetworkProfile::Wan,
            fault: Fault::None,
            expect: Expectation::CompletedIdenticalToOracle,
        },
        ChaosCell {
            name: "lossy-dsl/baseline",
            profile: NetworkProfile::LossyDsl,
            fault: Fault::None,
            expect: Expectation::CompletedIdenticalToOracle,
        },
        ChaosCell {
            name: "ideal/sever-resume",
            profile: NetworkProfile::Ideal,
            fault: Fault::SeverResume,
            expect: Expectation::CompletedIdenticalToOracle,
        },
        ChaosCell {
            name: "lossy-dsl/sever-resume",
            profile: NetworkProfile::LossyDsl,
            fault: Fault::SeverResume,
            expect: Expectation::CompletedIdenticalToOracle,
        },
        ChaosCell {
            name: "ideal/dead-peer",
            profile: NetworkProfile::Ideal,
            fault: Fault::DeadPeer,
            expect: Expectation::Settled(FailureReason::PeerUnreachable),
        },
        ChaosCell {
            name: "ideal/tamper-sealed",
            profile: NetworkProfile::Ideal,
            fault: Fault::TamperSealed,
            expect: Expectation::Settled(FailureReason::ChannelAuth),
        },
        ChaosCell {
            name: "ideal/kill-behind-router",
            profile: NetworkProfile::Ideal,
            fault: Fault::KillBehindRouter,
            expect: Expectation::Stalled,
        },
        ChaosCell {
            name: "ideal/security-mismatch",
            profile: NetworkProfile::Ideal,
            fault: Fault::SecurityMismatch,
            expect: Expectation::AuthRejected,
        },
    ]
}

/// Classifies an in-process engine run (`SessionEngine::run` or
/// `ShardedEngine::run`) into the taxonomy.
pub fn classify_engine_result<E: std::fmt::Display>(
    result: Result<Vec<EngineOutcome>, E>,
) -> RunOutcome {
    match result {
        Ok(outcomes) => RunOutcome::Completed {
            fingerprint: fingerprint_outcomes(&outcomes),
        },
        Err(e) => classify_error_text(&e.to_string()),
    }
}

/// Classifies a `PartyEngine` run (`coordinate` / `serve` result) into the
/// taxonomy. A report with any failed session settles with the dominant
/// reason (`ChannelAuth` outranks `PeerUnreachable` outranks `Other`,
/// since interference is the strongest signal).
pub fn classify_party_result<E: std::fmt::Display>(
    result: Result<PartyRunReport, E>,
) -> RunOutcome {
    let report = match result {
        Ok(report) => report,
        Err(e) => return classify_error_text(&e.to_string()),
    };
    if report.stats.sessions_failed == 0 {
        return RunOutcome::Completed {
            fingerprint: fingerprint_party_report(&report),
        };
    }
    let mut dominant: Option<(FailureReason, String)> = None;
    for row in &report.outcomes {
        if let PartyOutcome::Failed(failure) = &row.outcome {
            let (reason, detail) = match failure {
                SessionFailure::ChannelAuth { detail } => {
                    (FailureReason::ChannelAuth, detail.clone())
                }
                SessionFailure::PeerUnreachable { party } => {
                    (FailureReason::PeerUnreachable, format!("peer {party}"))
                }
                SessionFailure::Error(e) => (FailureReason::Other, e.clone()),
            };
            let stronger = match &dominant {
                None => true,
                Some((current, _)) => rank(reason) > rank(*current),
            };
            if stronger {
                dominant = Some((reason, detail));
            }
        }
    }
    let (reason, detail) =
        dominant.unwrap_or((FailureReason::Other, "failed sessions without rows".into()));
    RunOutcome::Settled { reason, detail }
}

/// Classifies one `ppc-party` process run from its exit status and
/// captured stdio. `timed_out` is set by the harness when it had to kill
/// the process at its deadline.
pub fn classify_process_run(
    exit_ok: bool,
    timed_out: bool,
    stdout: &str,
    stderr: &str,
) -> RunOutcome {
    if timed_out {
        return RunOutcome::Stalled {
            detail: last_line(stdout)
                .unwrap_or("no output before deadline")
                .into(),
        };
    }
    // Settled failures are reported as structured FAILED lines.
    let mut dominant: Option<(FailureReason, String)> = None;
    for line in stdout.lines().filter(|l| l.starts_with("FAILED")) {
        let reason = if line.contains("reason=channel-auth") {
            FailureReason::ChannelAuth
        } else if line.contains("reason=peer-unreachable") {
            FailureReason::PeerUnreachable
        } else {
            FailureReason::Other
        };
        let stronger = match &dominant {
            None => true,
            Some((current, _)) => rank(reason) > rank(*current),
        };
        if stronger {
            dominant = Some((reason, line.to_string()));
        }
    }
    if let Some((reason, detail)) = dominant {
        return RunOutcome::Settled { reason, detail };
    }
    if !exit_ok {
        let text = format!("{stderr}\n{stdout}");
        if text.contains("authentication") || text.contains("handshake") {
            return RunOutcome::AuthRejected {
                detail: last_line(stderr).unwrap_or("authentication failure").into(),
            };
        }
        if text.contains("stalled") || text.contains("readiness") {
            return RunOutcome::Stalled {
                detail: last_line(stderr).unwrap_or("stalled").into(),
            };
        }
        return RunOutcome::Settled {
            reason: FailureReason::Other,
            detail: last_line(stderr).unwrap_or("process failed").into(),
        };
    }
    RunOutcome::Completed {
        fingerprint: fingerprint_process_stdout(stdout),
    }
}

/// Digest over the stable result lines (`RESULT` / `MATRIX`) of a
/// `ppc-party` process's stdout. Two deterministic runs of the same
/// scenario produce identical digests; values embed f64 bits as hex, so
/// this is bit-exact too.
pub fn fingerprint_process_stdout(stdout: &str) -> u64 {
    let lines: Vec<&str> = stdout
        .lines()
        .filter(|l| l.starts_with("RESULT") || l.starts_with("MATRIX"))
        .collect();
    fingerprint_str(&lines.join("\n"))
}

/// Fingerprint of a completed party report: per session (ascending id),
/// the third party's exported outcome. Matches the oracle's
/// [`fingerprint_outcomes`] for the same sessions.
pub fn fingerprint_party_report(report: &PartyRunReport) -> u64 {
    let mut sessions: Vec<u64> = report.outcomes.iter().map(|o| o.session).collect();
    sessions.sort_unstable();
    sessions.dedup();
    let mut h = Fnv::default();
    for id in sessions {
        for row in report.session(id) {
            match &row.outcome {
                PartyOutcome::ThirdParty(outcome) => {
                    let tp = TpOutcome::from_engine_outcome(outcome);
                    absorb_tp(&mut h, &tp);
                    break;
                }
                PartyOutcome::Remote(Some(tp)) => {
                    absorb_tp(&mut h, tp);
                    break;
                }
                _ => {}
            }
        }
    }
    h.finish()
}

// Absorbs the same byte stream as `digest::fingerprint_outcomes` does for
// the corresponding engine outcome, so report and oracle digests agree.
fn absorb_tp(h: &mut Fnv, tp: &TpOutcome) {
    for cluster in &tp.result.clusters {
        h.update(b"[");
        for &(site, local_index) in cluster {
            h.update(&site.to_le_bytes());
            h.update(&local_index.to_le_bytes());
        }
        h.update(b"]");
    }
    h.update_f64_bits(&[tp.result.average_within_cluster_squared_distance]);
    h.update_f64_bits(&tp.condensed);
}

fn classify_error_text(text: &str) -> RunOutcome {
    if text.contains("stalled") || text.contains("readiness") {
        RunOutcome::Stalled {
            detail: text.to_string(),
        }
    } else if text.contains("authentication") || text.contains("handshake") {
        RunOutcome::AuthRejected {
            detail: text.to_string(),
        }
    } else if text.contains("unreachable") {
        RunOutcome::Settled {
            reason: FailureReason::PeerUnreachable,
            detail: text.to_string(),
        }
    } else {
        RunOutcome::Settled {
            reason: FailureReason::Other,
            detail: text.to_string(),
        }
    }
}

fn rank(reason: FailureReason) -> u8 {
    match reason {
        FailureReason::ChannelAuth => 2,
        FailureReason::PeerUnreachable => 1,
        FailureReason::Other => 0,
    }
}

fn last_line(text: &str) -> Option<&str> {
    text.lines().rev().find(|l| !l.trim().is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_slice_covers_every_taxonomy_bucket() {
        let cells = ci_slice();
        let has = |f: &dyn Fn(&Expectation) -> bool| cells.iter().any(|c| f(&c.expect));
        assert!(has(&|e| matches!(
            e,
            Expectation::CompletedIdenticalToOracle
        )));
        assert!(has(&|e| matches!(
            e,
            Expectation::Settled(FailureReason::PeerUnreachable)
        )));
        assert!(has(&|e| matches!(
            e,
            Expectation::Settled(FailureReason::ChannelAuth)
        )));
        assert!(has(&|e| matches!(e, Expectation::AuthRejected)));
        assert!(has(&|e| matches!(e, Expectation::Stalled)));
        // Cell names are unique — bench rows key on them.
        let mut names: Vec<_> = cells.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cells.len());
    }

    #[test]
    fn settled_never_passes_as_completed() {
        let settled = RunOutcome::Settled {
            reason: FailureReason::PeerUnreachable,
            detail: "gone".into(),
        };
        assert!(Expectation::CompletedIdenticalToOracle
            .check(&settled, Some(1))
            .is_err());
        // ... and a completed run with the wrong bytes fails too.
        let completed = RunOutcome::Completed { fingerprint: 2 };
        assert!(Expectation::CompletedIdenticalToOracle
            .check(&completed, Some(1))
            .is_err());
        assert!(Expectation::CompletedIdenticalToOracle
            .check(&completed, Some(2))
            .is_ok());
        // Wrong settle reason is also a failure.
        assert!(Expectation::Settled(FailureReason::ChannelAuth)
            .check(&settled, None)
            .is_err());
        assert!(Expectation::Settled(FailureReason::PeerUnreachable)
            .check(&settled, None)
            .is_ok());
    }

    #[test]
    fn error_text_classification() {
        let stalled: Result<Vec<EngineOutcome>, String> =
            Err("party engine for TP stalled (sessions [0] unfinished)".into());
        assert!(matches!(
            classify_engine_result(stalled),
            RunOutcome::Stalled { .. }
        ));
        let auth: Result<Vec<EngineOutcome>, String> =
            Err("channel authentication failure: frame MAC".into());
        assert!(matches!(
            classify_engine_result(auth),
            RunOutcome::AuthRejected { .. }
        ));
        let unreachable: Result<Vec<EngineOutcome>, String> =
            Err("peer hosting TP is unreachable: backoff exhausted".into());
        assert!(matches!(
            classify_engine_result(unreachable),
            RunOutcome::Settled {
                reason: FailureReason::PeerUnreachable,
                ..
            }
        ));
    }

    #[test]
    fn process_stdout_classification() {
        let out = RunOutcome::Stalled { detail: "x".into() };
        assert_eq!(out.name(), "stalled");
        assert!(matches!(
            classify_process_run(true, true, "RESULT a\n", ""),
            RunOutcome::Stalled { .. }
        ));
        assert!(matches!(
            classify_process_run(
                false,
                false,
                "FAILED session=0 reason=channel-auth:mac\n",
                ""
            ),
            RunOutcome::Settled {
                reason: FailureReason::ChannelAuth,
                ..
            }
        ));
        assert!(matches!(
            classify_process_run(
                false,
                false,
                "FAILED session=0 reason=peer-unreachable:TP\n",
                ""
            ),
            RunOutcome::Settled {
                reason: FailureReason::PeerUnreachable,
                ..
            }
        ));
        assert!(matches!(
            classify_process_run(false, false, "", "error: channel authentication failure"),
            RunOutcome::AuthRejected { .. }
        ));
        let a = classify_process_run(true, false, "RESULT x\nMATRIX y\nSTATS z\n", "");
        let b = classify_process_run(true, false, "RESULT x\nMATRIX y\nSTATS other\n", "");
        assert_eq!(a, b, "fingerprint ignores non-result lines");
    }
}
