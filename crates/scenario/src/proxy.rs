//! Byte-level TCP adversaries for the tampering cells.
//!
//! A [`TamperProxy`] sits between a dialler and its upstream (a router or
//! a direct acceptor) and flips exactly one byte of each connection's
//! client→upstream stream — at a fixed absolute offset
//! ([`TamperProxy::spawn`]) or inside the first frame whose body clears a
//! size threshold ([`TamperProxy::spawn_on_first_large_frame`]).
//!
//! Where the flip lands matters, in two ways.
//!
//! *Layer*: a sealed record's `from`/`to` routing header stays in the
//! clear (forwarders route by it), and the stack absorbs a corrupted
//! header without an auth failure — the router counts the frame
//! unroutable and drops it, and the receiver accepts the sender's *next*
//! record as first contact with that incarnation. Only a flip inside the
//! sealed payload reaches the AEAD tier, which must reject it as a
//! [`ChannelAuth`
//! failure](ppc_core::protocol::party_engine::SessionFailure::ChannelAuth) —
//! never deliver.
//!
//! *Record*: the stack also absorbs losing an entire *control* record.
//! A serve party re-sends its readiness announce while idle (so startup
//! order does not matter), and a router drops frames for parties no link
//! has announced yet — so corrupting a dialler's first record is a race:
//! if the dialler connects before its counterparty, the record was going
//! to be dropped unroutable anyway and a fresh ready replaces it. A
//! deterministic tamper cell must corrupt a record that is necessarily
//! forwarded and necessarily needed: session *data*, which is what the
//! large-frame trigger targets (control records are tens of bytes; even
//! one matrix chunk is hundreds).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

/// The dialler→acceptor link handshake is 28 bytes on the wire (magic,
/// version/flags, party ids, resume token), followed by 4-byte length
/// prefixes per frame.
pub const HANDSHAKE_BYTES: usize = 28;

/// Length prefix preceding every frame.
pub const FRAME_PREFIX_BYTES: usize = 4;

/// Cleartext prelude of a sealed record's frame body before the AEAD
/// ciphertext begins: `from` (5) + `to` (5) + the `"!"` topic as a
/// length-prefixed string (4 + 1) + payload length prefix (4) + `salt`
/// (4) + `seq` (8). See `docs/WIRE_FORMAT.md` §4 and §8.2.
pub const SEALED_RECORD_PRELUDE_BYTES: usize = 31;

/// A one-byte-flipping TCP proxy. Dropping the handle leaves the proxy
/// threads running until the process exits (they are detached, like the
/// in-tree test helpers); each accepted connection is forwarded to the
/// same upstream.
#[derive(Debug, Clone, Copy)]
pub struct TamperProxy {
    addr: SocketAddr,
}

impl TamperProxy {
    /// Spawns a proxy forwarding to `upstream`. In every accepted
    /// connection, the byte at absolute offset `flip_at` of the
    /// client→upstream stream is XORed with `0x20`; all other bytes (and
    /// the entire return stream) pass untouched.
    pub fn spawn(upstream: SocketAddr, flip_at: usize) -> std::io::Result<TamperProxy> {
        Self::spawn_with_rule(upstream, FlipRule::At(flip_at))
    }

    /// Spawns a proxy that flips one byte `SEALED_RECORD_PRELUDE_BYTES +
    /// extra` into the body of the first frame whose body length is at
    /// least `min_body` bytes — i.e. inside the AEAD ciphertext of the
    /// first *data*-sized sealed record, skipping the small control
    /// records (readiness announces, session opens) whose loss the stack
    /// absorbs by design. `extra < 16` stays within authenticated bytes
    /// for any record (the tag alone is 16).
    pub fn spawn_on_first_large_frame(
        upstream: SocketAddr,
        min_body: usize,
        extra: usize,
    ) -> std::io::Result<TamperProxy> {
        Self::spawn_with_rule(upstream, FlipRule::LargeFrame { min_body, extra })
    }

    fn spawn_with_rule(upstream: SocketAddr, rule: FlipRule) -> std::io::Result<TamperProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        std::thread::spawn(move || {
            while let Ok((client, _)) = listener.accept() {
                let _ = client.set_nodelay(true);
                let server = match TcpStream::connect(upstream) {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                let _ = server.set_nodelay(true);
                if let (Ok(c2), Ok(s2)) = (client.try_clone(), server.try_clone()) {
                    pump(client, s2, Some(rule));
                    pump(server, c2, None);
                }
            }
        });
        Ok(TamperProxy { addr })
    }

    /// The address diallers should connect to instead of the upstream.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// An offset `extra` bytes into the first frame's body — i.e. past the
    /// handshake and the frame's length prefix. Small `extra` values land
    /// in the cleartext routing header (a *routing* corruption the stack
    /// may absorb); use [`Self::into_first_sealed_payload`] to hit the
    /// AEAD-protected bytes.
    pub const fn into_first_frame(extra: usize) -> usize {
        HANDSHAKE_BYTES + FRAME_PREFIX_BYTES + extra
    }

    /// An offset `extra` bytes into the first frame's AEAD ciphertext,
    /// past the cleartext `from`/`to`/topic/salt/seq prelude. Every
    /// sealed record carries a 16-byte tag, so `extra < 16` is in
    /// authenticated bytes for any record at all. Note the dialler's
    /// first record is usually a *control* record whose corruption the
    /// stack may absorb (see the module docs); for a deterministic
    /// tamper cell prefer [`Self::spawn_on_first_large_frame`].
    pub const fn into_first_sealed_payload(extra: usize) -> usize {
        Self::into_first_frame(SEALED_RECORD_PRELUDE_BYTES + extra)
    }
}

/// Which byte of the client→upstream stream to flip.
#[derive(Debug, Clone, Copy)]
enum FlipRule {
    /// A fixed absolute stream offset.
    At(usize),
    /// `SEALED_RECORD_PRELUDE_BYTES + extra` into the body of the first
    /// frame whose body is at least `min_body` bytes.
    LargeFrame { min_body: usize, extra: usize },
}

/// Incremental frame-boundary scanner over a dialler stream: skips the
/// handshake, reads each 4-byte length prefix, and resolves the rule into
/// an absolute offset as soon as the qualifying frame's header streams by.
struct FlipScanner {
    rule: FlipRule,
    pos: usize,
    resolved: Option<usize>,
    handshake_left: usize,
    header: [u8; 4],
    header_got: usize,
    body_left: usize,
}

impl FlipScanner {
    fn new(rule: FlipRule) -> FlipScanner {
        FlipScanner {
            rule,
            pos: 0,
            resolved: match rule {
                FlipRule::At(at) => Some(at),
                FlipRule::LargeFrame { .. } => None,
            },
            handshake_left: HANDSHAKE_BYTES,
            header: [0; 4],
            header_got: 0,
            body_left: 0,
        }
    }

    /// Scans (and possibly flips) one chunk of the stream in place.
    fn process(&mut self, chunk: &mut [u8]) {
        for (i, byte) in chunk.iter_mut().enumerate() {
            let abs = self.pos + i;
            if self.resolved == Some(abs) {
                *byte ^= 0x20;
            }
            if self.resolved.is_some() {
                continue;
            }
            if self.handshake_left > 0 {
                self.handshake_left -= 1;
            } else if self.body_left > 0 {
                self.body_left -= 1;
            } else {
                self.header[self.header_got] = *byte;
                self.header_got += 1;
                if self.header_got == 4 {
                    self.header_got = 0;
                    let len = u32::from_le_bytes(self.header) as usize;
                    self.body_left = len;
                    if let FlipRule::LargeFrame { min_body, extra } = self.rule {
                        if len >= min_body {
                            self.resolved = Some(abs + 1 + SEALED_RECORD_PRELUDE_BYTES + extra);
                        }
                    }
                }
            }
        }
        self.pos += chunk.len();
    }
}

fn pump(mut from: TcpStream, mut to: TcpStream, flip: Option<FlipRule>) {
    std::thread::spawn(move || {
        let mut scan = flip.map(FlipScanner::new);
        let mut buf = [0u8; 4096];
        loop {
            let n = match from.read(&mut buf) {
                Ok(0) | Err(_) => {
                    let _ = to.shutdown(std::net::Shutdown::Both);
                    return;
                }
                Ok(n) => n,
            };
            if let Some(scan) = scan.as_mut() {
                scan.process(&mut buf[..n]);
            }
            if to.write_all(&buf[..n]).is_err() {
                return;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxy_flips_exactly_one_byte_at_the_offset() {
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let proxy = TamperProxy::spawn(upstream_addr, 5).unwrap();

        let mut client = TcpStream::connect(proxy.addr()).unwrap();
        let (mut server, _) = upstream.accept().unwrap();
        let sent: Vec<u8> = (0u8..32).collect();
        client.write_all(&sent).unwrap();
        let mut got = vec![0u8; sent.len()];
        server.read_exact(&mut got).unwrap();

        let mut expected = sent.clone();
        expected[5] ^= 0x20;
        assert_eq!(got, expected);

        // The return direction is untouched.
        server.write_all(&sent).unwrap();
        let mut back = vec![0u8; sent.len()];
        client.read_exact(&mut back).unwrap();
        assert_eq!(back, sent);
    }

    #[test]
    fn offsets_compose() {
        assert_eq!(TamperProxy::into_first_frame(0), 32);
        assert_eq!(TamperProxy::into_first_frame(25), 57);
        assert_eq!(TamperProxy::into_first_sealed_payload(0), 63);
        assert_eq!(TamperProxy::into_first_sealed_payload(8), 71);
    }

    #[test]
    fn large_frame_rule_skips_small_control_frames() {
        let mut stream = vec![0u8; HANDSHAKE_BYTES];
        stream.extend_from_slice(&10u32.to_le_bytes());
        stream.extend_from_slice(&[0xAA; 10]);
        stream.extend_from_slice(&100u32.to_le_bytes());
        stream.extend_from_slice(&[0xBB; 100]);

        let mut scan = FlipScanner::new(FlipRule::LargeFrame {
            min_body: 64,
            extra: 8,
        });
        let mut tampered = stream.clone();
        // Awkward chunking exercises headers split across reads.
        for chunk in tampered.chunks_mut(7) {
            scan.process(chunk);
        }

        let large_body_start = HANDSHAKE_BYTES + 4 + 10 + 4;
        let flip_at = large_body_start + SEALED_RECORD_PRELUDE_BYTES + 8;
        let diffs: Vec<usize> = stream
            .iter()
            .zip(tampered.iter())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(diffs, vec![flip_at]);
        assert_eq!(tampered[flip_at], 0xBB ^ 0x20);
    }
}
