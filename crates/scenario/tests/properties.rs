//! Property tests on the scenario factory's determinism and coverage
//! guarantees (PR-8 satellite 1).

use proptest::prelude::*;

use ppc_scenario::factory::{ScenarioSpec, SchemaShape, SiteSkew};

fn skew(choice: u8, exponent: f64, fraction: f64) -> SiteSkew {
    match choice % 3 {
        0 => SiteSkew::Uniform,
        1 => SiteSkew::Zipf { exponent },
        _ => SiteSkew::DominantSite { fraction },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same seed ⇒ byte-identical scenario: the fingerprint (CLI schema,
    /// every partition's CSV rendering, labels, manifest) agrees across
    /// independent generations, and differs when the seed changes.
    #[test]
    fn same_seed_yields_identical_scenario(
        seed in any::<u64>(),
        sites in 3u32..=9,
        objects in 60usize..200,
        skew_choice in 0u8..3,
        exponent in 0.2f64..2.0,
        fraction in 0.3f64..0.9,
        sessions in 1usize..5,
    ) {
        let spec = ScenarioSpec {
            seed,
            sites,
            objects,
            clusters: 3,
            skew: skew(skew_choice, exponent, fraction),
            shape: SchemaShape::default(),
            sessions,
            chunk_base: Some(8),
        };
        let a = spec.generate().unwrap();
        let b = spec.generate().unwrap();
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        prop_assert_eq!(a.manifest_text(), b.manifest_text());
        prop_assert_eq!(a.schema_cli(), b.schema_cli());

        let other = ScenarioSpec { seed: seed.wrapping_add(1), ..spec }.generate().unwrap();
        prop_assert_ne!(a.fingerprint(), other.fingerprint());
    }

    /// The partitioning covers every object exactly once: each global row
    /// index appears in exactly one site's origin list, partition sizes sum
    /// to the dataset, and no site is empty.
    #[test]
    fn partitions_cover_every_object_exactly_once(
        seed in any::<u64>(),
        sites in 3u32..=12,
        objects in 60usize..240,
        skew_choice in 0u8..3,
        exponent in 0.0f64..2.5,
        fraction in 0.3f64..0.9,
    ) {
        let spec = ScenarioSpec {
            seed,
            sites,
            objects,
            clusters: 2,
            skew: skew(skew_choice, exponent, fraction),
            shape: SchemaShape::default(),
            sessions: 1,
            chunk_base: None,
        };
        let scenario = spec.generate().unwrap();
        prop_assert_eq!(scenario.partitions.len(), sites as usize);
        let mut seen = vec![0u32; objects];
        for (site, origin) in scenario.origins.iter().enumerate() {
            prop_assert_eq!(origin.len(), scenario.partitions[site].len());
            prop_assert!(!origin.is_empty(), "site {} is empty", site);
            for &row in origin {
                prop_assert!(row < objects, "origin row {} out of range", row);
                seen[row] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "coverage counts: {:?}", seen);
    }

    /// The oracle itself is deterministic: two independent generations run
    /// through the in-process engine publish bit-identical results.
    #[test]
    fn oracle_runs_are_bit_identical(seed in any::<u64>()) {
        let spec = ScenarioSpec {
            objects: 90,
            sessions: 2,
            ..ScenarioSpec::ci(0)
        };
        let spec = ScenarioSpec { seed, ..spec };
        let a = spec.generate().unwrap().oracle().unwrap();
        let b = spec.generate().unwrap().oracle().unwrap();
        prop_assert_eq!(
            ppc_scenario::digest::fingerprint_outcomes(&a),
            ppc_scenario::digest::fingerprint_outcomes(&b)
        );
    }
}
