//! Offline stand-in for the parts of `rand` 0.8 this workspace uses.
//!
//! Implements `rngs::StdRng` as a splitmix64-seeded xoshiro256++ generator
//! together with the `RngCore` / `SeedableRng` traits and the `Rng`
//! extension methods the synthetic-data generators call (`gen_range`,
//! `gen_bool`). The statistical quality is ample for workload generation;
//! nothing security-sensitive uses this crate (the protocol crypto lives in
//! `ppc-crypto` and is written from scratch).

/// Core random-number source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` via splitmix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]: {p}");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the stand-in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
            }
            if s.iter().all(|&w| w == 0) {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.gen_range(0u64..u64::MAX), b.gen_range(0u64..u64::MAX));
        }
    }
}
