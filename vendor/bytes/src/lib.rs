//! Offline stand-in for the parts of `bytes` the `ppc-net` wire codec uses:
//! a growable byte buffer ([`BytesMut`]) with little-endian put methods, and
//! a [`Buf`] reader implementation for `&[u8]` slices.

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(buf: BytesMut) -> Vec<u8> {
        buf.inner
    }
}

/// Write-side trait (little-endian integer encodings).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side trait (little-endian integer decodings). Implementations must
/// have already checked `remaining()` before calling the getters; running
/// past the end panics, mirroring the real crate.
pub trait Buf {
    /// Unread byte count.
    fn remaining(&self) -> usize;

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies the next `n` bytes into `dst` and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self[..dst.len()]);
        self.advance(dst.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_scalar_types() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_i64_le(-42);
        buf.put_f64_le(1.5);
        buf.put_slice(b"xyz");
        let bytes = buf.to_vec();
        let mut r: &[u8] = &bytes;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.remaining(), 3);
        r.advance(1);
        assert_eq!(r, b"yz");
    }
}
