//! Offline stand-in for the parts of `criterion` the bench crate uses.
//!
//! Measures wall-clock medians instead of criterion's full statistical
//! pipeline, prints one line per benchmark and appends a JSON record to the
//! file named by the `PPC_BENCH_JSON` environment variable (if set) so the
//! repository's `BENCH_*.json` snapshots can be regenerated without network
//! access.
//!
//! Environment knobs:
//!
//! * `PPC_BENCH_JSON=path` — append `{"id": ..., "median_ns": ...}` lines.
//! * `PPC_BENCH_QUICK=1`   — cap sampling at 5 samples ≤ 50 ms each (CI).

use std::fmt::{self, Display};
use std::fs::OpenOptions;
use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

fn quick_mode() -> bool {
    std::env::var("PPC_BENCH_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// Benchmark identifier: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a name and a displayable parameter.
    pub fn new<N: Into<String>, P: Display>(name: N, parameter: P) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.parameter.is_empty() {
            write!(f, "{}", self.name)
        } else {
            write!(f, "{}/{}", self.name, self.parameter)
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: String::new(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: String::new(),
        }
    }
}

/// Per-iteration timer handed to the bench closure.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    median_ns: f64,
    samples: usize,
    max_sample_time: Duration,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-iteration cost estimate.
        let start = Instant::now();
        std_black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        // Choose iterations per sample so one sample stays under the cap.
        let iters = (self.max_sample_time.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let mut sample_medians: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            sample_medians.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        sample_medians.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = sample_medians[sample_medians.len() / 2];
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let quick = quick_mode();
        let mut bencher = Bencher {
            median_ns: f64::NAN,
            samples: if quick {
                self.sample_size.min(5)
            } else {
                self.sample_size
            },
            max_sample_time: if quick {
                Duration::from_millis(50)
            } else {
                Duration::from_millis(200)
            },
        };
        f(&mut bencher);
        self.criterion
            .record(&format!("{}/{}", self.name, id), bencher.median_ns);
    }

    /// Benchmarks a closure.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = id.into().to_string();
        self.run(id, f);
        self
    }

    /// Benchmarks a closure against an input value.
    pub fn bench_with_input<Ident, I, F>(&mut self, id: Ident, input: &I, mut f: F) -> &mut Self
    where
        Ident: Into<BenchmarkId>,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into().to_string();
        self.run(id, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Top-level bench context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut group = BenchmarkGroup {
            criterion: self,
            name: String::new(),
            sample_size: 10,
        };
        group.run(name.to_string(), f);
        self
    }

    fn record(&mut self, id: &str, median_ns: f64) {
        let id = id.trim_start_matches('/');
        println!("bench: {id:<60} median {}", format_ns(median_ns));
        if let Ok(path) = std::env::var("PPC_BENCH_JSON") {
            if let Ok(mut file) = OpenOptions::new().create(true).append(true).open(path) {
                let _ = writeln!(file, "{{\"id\": \"{id}\", \"median_ns\": {median_ns:.1}}}");
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares the benchmark entry functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
