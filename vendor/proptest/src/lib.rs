//! Offline stand-in for the parts of `proptest` this workspace uses.
//!
//! Supports the `proptest! { #![proptest_config(...)] #[test] fn f(x in
//! strategy, ...) { ... } }` form with range strategies, `any::<T>()`,
//! `prop::collection::vec(elem, len_range)` and a small regex subset for
//! string strategies (`"[chars]{lo,hi}"`, with `a-z` ranges inside the
//! class). Cases are generated from a deterministic per-test seed; failures
//! report the sampled inputs but are not shrunk.

pub mod config {
    //! Runner configuration.

    /// Subset of proptest's configuration: the number of cases per property.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

pub mod test_runner {
    //! Deterministic RNG and the error type the assertion macros produce.

    /// Error carried out of a failing property body.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with a message.
        pub fn fail<M: Into<String>>(message: M) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// xoshiro256++ with a deterministic per-test seed.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the generator from a test identifier (FNV-1a over the name).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut s = [0u64; 4];
            for word in &mut s {
                h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = h;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *word = z ^ (z >> 31);
            }
            TestRng { s }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty bound");
            self.next_u64() % bound
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + v) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u128;
                    let v = (rng.next_u64() as u128 % span) as i128;
                    (start as i128 + v) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// Strings from the regex subset `[class]{lo,hi}` — a single character
    /// class (literal characters and `a-z` style ranges) with a repetition
    /// count.
    impl Strategy for &str {
        type Value = String;

        fn new_value(&self, rng: &mut TestRng) -> String {
            let (chars, lo, hi) = parse_class_pattern(self)
                .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| chars[rng.below(chars.len() as u64) as usize])
                .collect()
        }
    }

    /// Parses `[class]{lo,hi}` / `[class]{n}` patterns.
    fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let mut chars = Vec::new();
        let mut it = class.chars().peekable();
        while let Some(c) = it.next() {
            if it.peek() == Some(&'-') {
                let mut ahead = it.clone();
                ahead.next();
                if let Some(&end) = ahead.peek() {
                    it.next();
                    it.next();
                    for v in c as u32..=end as u32 {
                        chars.push(char::from_u32(v)?);
                    }
                    continue;
                }
            }
            chars.push(c);
        }
        if chars.is_empty() {
            return None;
        }
        let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match counts.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        if lo > hi {
            return None;
        }
        Some((chars, lo, hi))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn class_patterns_parse() {
            let (chars, lo, hi) = parse_class_pattern("[acgt]{0,12}").unwrap();
            assert_eq!(chars, vec!['a', 'c', 'g', 't']);
            assert_eq!((lo, hi), (0, 12));
            let (chars, lo, hi) = parse_class_pattern("[a-e]{3}").unwrap();
            assert_eq!(chars, vec!['a', 'b', 'c', 'd', 'e']);
            assert_eq!((lo, hi), (3, 3));
            assert!(parse_class_pattern("plain").is_none());
        }

        #[test]
        fn string_strategy_respects_bounds() {
            let mut rng = TestRng::deterministic("string_strategy_respects_bounds");
            for _ in 0..200 {
                let s = Strategy::new_value(&"[acgt]{1,5}", &mut rng);
                assert!((1..=5).contains(&s.len()), "{s:?}");
                assert!(s.chars().all(|c| "acgt".contains(c)));
            }
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only, spread over a wide magnitude range.
            let mantissa = rng.unit_f64() * 2.0 - 1.0;
            let exponent = (rng.below(61) as i32 - 30) as f64;
            mantissa * exponent.exp2()
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> [u8; N] {
            let mut out = [0u8; N];
            for chunk in out.chunks_mut(8) {
                let bytes = rng.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
            out
        }
    }

    /// Strategy wrapper returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Vector strategy with element strategy and length range.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let len = self.len.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop` namespace (`prop::collection::vec` etc.).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests over named strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::config::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                let described = [$(format!(
                    "  {} = {:?}", stringify!($arg), &$arg
                )),+].join("\n");
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(error) = outcome {
                    panic!(
                        "property {} failed at case #{case}: {error}\n{described}",
                        stringify!($name),
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::config::ProptestConfig::default()); $($rest)*);
    };
}

/// Fails the enclosing property unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the enclosing property unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {left:?}\n  right: {right:?}",
                    stringify!($left),
                    stringify!($right),
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the enclosing property if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {left:?}",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}
