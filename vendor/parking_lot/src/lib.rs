//! Offline stand-in for `parking_lot`: a [`Mutex`] with the poison-free
//! `lock()` signature and a matching [`Condvar`], backed by `std::sync`.

use std::fmt;
use std::sync::MutexGuard;
use std::time::Duration;

/// Mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking, returning `None` if
    /// it is currently held (parking_lot's poison-free signature).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed (rather than a
    /// notification).
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable with parking_lot's poison-free signatures, paired with
/// [`Mutex`] guards.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar::default()
    }

    /// Blocks until notified, releasing the guard while parked.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.inner.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until notified or until `timeout` elapses.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        let (guard, result) = self
            .inner
            .wait_timeout(guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        (
            guard,
            WaitTimeoutResult {
                timed_out: result.timed_out(),
            },
        )
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, Mutex};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wakes_a_blocked_waiter() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let other = Arc::clone(&shared);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*other;
            let mut ready = lock.lock();
            while !*ready {
                ready = cv.wait(ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*shared;
        *lock.lock() = true;
        cv.notify_all();
        waiter.join().unwrap();
    }

    #[test]
    fn condvar_wait_timeout_reports_elapsed() {
        let pair = (Mutex::new(()), Condvar::new());
        let guard = pair.0.lock();
        let (_guard, result) = pair.1.wait_timeout(guard, Duration::from_millis(5));
        assert!(result.timed_out());
    }
}
