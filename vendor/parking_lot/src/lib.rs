//! Offline stand-in for `parking_lot`: a [`Mutex`] with the poison-free
//! `lock()` signature, backed by `std::sync::Mutex`.

use std::fmt;
use std::sync::MutexGuard;

/// Mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
