//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a
//! forward-compatibility marker — nothing in the repository serialises
//! through serde yet, and the build environment has no access to crates.io.
//! These derive macros therefore accept the same syntax (including
//! `#[serde(...)]` helper attributes) and expand to nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
