//! Offline stand-in for `polling`: OS readiness events over raw syscalls.
//!
//! The registry is unreachable from the build environment, so instead of
//! `mio`/`polling` proper this crate declares the handful of syscalls an
//! event loop needs via `extern "C"` (std already links libc) and wraps
//! them in a safe, level-triggered [`Poller`]:
//!
//! * **Linux**: `epoll_create1` / `epoll_ctl` / `epoll_wait`, woken from
//!   other threads through an `eventfd`.
//! * **Other unix**: portable `poll(2)` over a snapshot of the registered
//!   interest table, woken through a non-blocking self-pipe.
//! * **Non-unix**: a stub whose constructor reports `Unsupported`, so
//!   callers can fall back to blocking I/O at runtime.
//!
//! Semantics are deliberately minimal — exactly what `ppc-net`'s reactor
//! consumes:
//!
//! * Registration is keyed by a caller-chosen `usize`; [`Poller::wait`]
//!   reports that key back in each [`Event`].
//! * Readiness is **level-triggered**: an fd with unread bytes (or free
//!   write buffer, while write interest is armed) is reported again on
//!   every wait, so a handler that does not drain completely is re-run
//!   instead of hanging.
//! * Error/hangup conditions are folded into both `readable` and
//!   `writable`, so whichever half owns the fd observes the failure from
//!   its own `read`/`write` call.
//!
//! All `unsafe` in the workspace's I/O tier lives here; `ppc-net` itself
//! stays `#![forbid(unsafe_code)]`.

use std::io;
use std::time::Duration;

/// Raw OS file descriptor (mirrors `std::os::fd::RawFd` on unix; plain
/// `i32` elsewhere so the stub compiles).
pub type RawFd = i32;

/// Which readiness conditions a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Report when the fd has bytes to read (or hit EOF/error).
    pub readable: bool,
    /// Report when the fd can accept writes (or hit an error).
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The key the fd was registered under.
    pub key: usize,
    /// The fd is readable (has bytes, EOF, or an error condition).
    pub readable: bool,
    /// The fd is writable (buffer space, or an error condition).
    pub writable: bool,
}

/// Key value reserved for the poller's internal wake-up fd; user
/// registrations must stay below it.
const NOTIFY_KEY: u64 = u64::MAX;

/// Converts a `-1` syscall result into the calling thread's `errno` error.
#[cfg(unix)]
fn check(result: i32) -> io::Result<i32> {
    if result < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(result)
    }
}

/// Milliseconds for `epoll_wait`/`poll`: `-1` blocks forever; sub-millisecond
/// timeouts round **up** so a caller-supplied deadline is never spun past.
#[cfg(unix)]
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) => {
            let ms = t.as_millis();
            let ms = if ms == 0 && !t.is_zero() { 1 } else { ms };
            ms.min(i32::MAX as u128) as i32
        }
    }
}

// ---------------------------------------------------------------------------
// Linux: epoll + eventfd
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod imp {
    use super::*;
    use std::os::raw::{c_int, c_uint, c_void};

    // x86 and x86_64 kernels declare epoll_event packed; other
    // architectures use natural alignment. Mirror libc's layout exactly.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_NONBLOCK: c_int = 0o4000;
    const EFD_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    fn interest_mask(interest: Interest) -> u32 {
        let mut mask = 0;
        if interest.readable {
            // RDHUP rides with read interest: a registration that disarmed
            // reading (flow-control pause) must stay silent on a peer
            // half-close too, or a level-triggered loop would spin on an
            // event its handler refuses to consume. ERR/HUP cannot be
            // masked and still surface fatal conditions.
            mask |= EPOLLIN | EPOLLRDHUP;
        }
        if interest.writable {
            mask |= EPOLLOUT;
        }
        mask
    }

    /// Level-triggered epoll instance plus its eventfd waker.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
        waker: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let waker = match check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) }) {
                Ok(fd) => fd,
                Err(e) => {
                    unsafe { close(epfd) };
                    return Err(e);
                }
            };
            let poller = Poller { epfd, waker };
            let mut event = EpollEvent {
                events: EPOLLIN,
                data: NOTIFY_KEY,
            };
            check(unsafe { epoll_ctl(poller.epfd, EPOLL_CTL_ADD, poller.waker, &mut event) })?;
            Ok(poller)
        }

        fn ctl(&self, op: c_int, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            let mut event = EpollEvent {
                events: interest_mask(interest),
                data: key as u64,
            };
            check(unsafe { epoll_ctl(self.epfd, op, fd, &mut event) }).map(|_| ())
        }

        pub fn add(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, key, interest)
        }

        pub fn modify(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, key, interest)
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            let mut event = EpollEvent { events: 0, data: 0 };
            check(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut event) }).map(|_| ())
        }

        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    buf.as_mut_ptr(),
                    buf.len() as c_int,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            let before = events.len();
            for raw in buf.iter().take(n as usize) {
                // Copy out of the (possibly packed) struct before use.
                let (mask, data) = (raw.events, raw.data);
                if data == NOTIFY_KEY {
                    // Drain the eventfd counter so the next notify re-arms.
                    let mut count = [0u8; 8];
                    unsafe { read(self.waker, count.as_mut_ptr().cast(), count.len()) };
                    continue;
                }
                let failed = mask & (EPOLLERR | EPOLLHUP) != 0;
                events.push(Event {
                    key: data as usize,
                    readable: failed || mask & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: failed || mask & EPOLLOUT != 0,
                });
            }
            Ok(events.len() - before)
        }

        pub fn notify(&self) -> io::Result<()> {
            let one = 1u64.to_ne_bytes();
            // A full counter (EAGAIN) already has a wake-up pending.
            unsafe { write(self.waker, one.as_ptr().cast(), one.len()) };
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.waker);
                close(self.epfd);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Other unix: poll(2) over a registered-interest table + self-pipe waker
// ---------------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::*;
    use std::collections::HashMap;
    use std::os::raw::{c_int, c_short, c_void};
    use std::sync::Mutex;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;
    const F_GETFL: c_int = 3;
    const F_SETFL: c_int = 4;
    const O_NONBLOCK: c_int = 0x0004;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: usize, timeout: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    /// Portable poll(2) loop over a snapshot of the interest table.
    #[derive(Debug)]
    pub struct Poller {
        interests: Mutex<HashMap<RawFd, (usize, Interest)>>,
        pipe_read: RawFd,
        pipe_write: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let mut fds = [0 as c_int; 2];
            check(unsafe { pipe(fds.as_mut_ptr()) })?;
            for fd in fds {
                let flags = check(unsafe { fcntl(fd, F_GETFL, 0) })?;
                check(unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) })?;
            }
            Ok(Poller {
                interests: Mutex::new(HashMap::new()),
                pipe_read: fds[0],
                pipe_write: fds[1],
            })
        }

        pub fn add(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            let mut interests = self.interests.lock().unwrap_or_else(|e| e.into_inner());
            if interests.insert(fd, (key, interest)).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            drop(interests);
            self.notify()
        }

        pub fn modify(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            let mut interests = self.interests.lock().unwrap_or_else(|e| e.into_inner());
            match interests.get_mut(&fd) {
                Some(entry) => *entry = (key, interest),
                None => return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
            drop(interests);
            self.notify()
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            let mut interests = self.interests.lock().unwrap_or_else(|e| e.into_inner());
            interests.remove(&fd);
            drop(interests);
            self.notify()
        }

        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let mut fds: Vec<(PollFd, u64)> = vec![(
                PollFd {
                    fd: self.pipe_read,
                    events: POLLIN,
                    revents: 0,
                },
                NOTIFY_KEY,
            )];
            {
                let interests = self.interests.lock().unwrap_or_else(|e| e.into_inner());
                for (&fd, &(key, interest)) in interests.iter() {
                    let mut mask = 0;
                    if interest.readable {
                        mask |= POLLIN;
                    }
                    if interest.writable {
                        mask |= POLLOUT;
                    }
                    fds.push((
                        PollFd {
                            fd,
                            events: mask,
                            revents: 0,
                        },
                        key as u64,
                    ));
                }
            }
            let mut raw: Vec<PollFd> = fds.iter().map(|(fd, _)| *fd).collect();
            let n = unsafe { poll(raw.as_mut_ptr(), raw.len(), timeout_ms(timeout)) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            let before = events.len();
            for (polled, (_, key)) in raw.iter().zip(&fds) {
                if polled.revents == 0 {
                    continue;
                }
                if *key == NOTIFY_KEY {
                    let mut sink = [0u8; 64];
                    while unsafe { read(self.pipe_read, sink.as_mut_ptr().cast(), sink.len()) } > 0
                    {
                    }
                    continue;
                }
                let failed = polled.revents & (POLLERR | POLLHUP) != 0;
                events.push(Event {
                    key: *key as usize,
                    readable: failed || polled.revents & POLLIN != 0,
                    writable: failed || polled.revents & POLLOUT != 0,
                });
            }
            Ok(events.len() - before)
        }

        pub fn notify(&self) -> io::Result<()> {
            let byte = [1u8];
            // A full pipe already has a wake-up pending.
            unsafe { write(self.pipe_write, byte.as_ptr().cast(), 1) };
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.pipe_read);
                close(self.pipe_write);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Non-unix stub: constructor reports Unsupported, callers fall back to the
// blocking transport backend.
// ---------------------------------------------------------------------------

#[cfg(not(unix))]
mod imp {
    use super::*;

    #[derive(Debug)]
    pub struct Poller {}

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "readiness polling is only implemented on unix",
            ))
        }

        pub fn add(&self, _fd: RawFd, _key: usize, _interest: Interest) -> io::Result<()> {
            unreachable!("stub Poller cannot be constructed")
        }

        pub fn modify(&self, _fd: RawFd, _key: usize, _interest: Interest) -> io::Result<()> {
            unreachable!("stub Poller cannot be constructed")
        }

        pub fn delete(&self, _fd: RawFd) -> io::Result<()> {
            unreachable!("stub Poller cannot be constructed")
        }

        pub fn wait(
            &self,
            _events: &mut Vec<Event>,
            _timeout: Option<Duration>,
        ) -> io::Result<usize> {
            unreachable!("stub Poller cannot be constructed")
        }

        pub fn notify(&self) -> io::Result<()> {
            unreachable!("stub Poller cannot be constructed")
        }
    }
}

/// Readiness poller: epoll on Linux, poll(2) on other unix platforms.
///
/// Thread-safe: registrations and [`notify`](Poller::notify) may be called
/// from any thread while another blocks in [`wait`](Poller::wait).
#[derive(Debug)]
pub struct Poller {
    imp: imp::Poller,
}

// The Linux impl holds raw fds (Send+Sync is sound: all syscalls on them
// are thread-safe); the poll(2) impl guards its table with a Mutex.
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

impl Poller {
    /// Creates a poller. `Err(Unsupported)` on non-unix platforms.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            imp: imp::Poller::new()?,
        })
    }

    /// Registers `fd` under `key`. Keys below `usize::MAX` only; one
    /// registration per fd.
    pub fn add(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        self.imp.add(fd, key, interest)
    }

    /// Replaces the interest set of a registered fd.
    pub fn modify(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        self.imp.modify(fd, key, interest)
    }

    /// Removes a registration. Safe to call for already-removed fds on
    /// Linux only if the fd is still open; callers should delete before
    /// closing.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.imp.delete(fd)
    }

    /// Blocks until readiness (or `timeout`, or [`notify`](Self::notify)),
    /// appending reports to `events`. Returns the number appended; `0`
    /// means timeout, wake-up, or a benign interruption.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        self.imp.wait(events, timeout)
    }

    /// Wakes a thread blocked in [`wait`](Self::wait) from any thread.
    pub fn notify(&self) -> io::Result<()> {
        self.imp.notify()
    }
}

/// One-shot portable wait for `fd` to become writable (poll(2), which Linux
/// also provides): used to apply backpressure on non-blocking streams
/// without registering them anywhere. Returns `false` on timeout.
#[cfg(unix)]
pub fn wait_writable(fd: RawFd, timeout: Option<Duration>) -> io::Result<bool> {
    use std::os::raw::{c_int, c_short};

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: usize, timeout: c_int) -> c_int;
    }

    const POLLOUT: c_short = 0x004;
    let mut pollfd = PollFd {
        fd,
        events: POLLOUT,
        revents: 0,
    };
    loop {
        let n = unsafe { poll(&mut pollfd, 1, timeout_ms(timeout)) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return Err(err);
        }
        // POLLERR/POLLHUP count as "ready": the caller's write surfaces
        // the actual error.
        return Ok(n > 0);
    }
}

/// Non-unix stub of [`wait_writable`]: reports the stream as ready so the
/// caller's own blocking write provides the backpressure.
#[cfg(not(unix))]
pub fn wait_writable(_fd: RawFd, _timeout: Option<Duration>) -> io::Result<bool> {
    Ok(true)
}

/// Pins the calling thread to CPU `core` (`sched_setaffinity(0, ...)`).
/// Returns `Ok(true)` when the affinity mask was applied. The caller is
/// responsible for keeping `core` below the number of online CPUs —
/// the kernel rejects masks with no runnable CPU (`EINVAL`).
#[cfg(target_os = "linux")]
pub fn pin_current_thread(core: usize) -> io::Result<bool> {
    // cpu_set_t is a 1024-bit mask (128 bytes) of u64 words.
    const MASK_WORDS: usize = 1024 / 64;

    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }

    if core >= MASK_WORDS * 64 {
        return Ok(false);
    }
    let mut mask = [0u64; MASK_WORDS];
    mask[core / 64] |= 1u64 << (core % 64);
    check(unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) })?;
    Ok(true)
}

/// Non-Linux stub of [`pin_current_thread`]: affinity is not portable, so
/// pinning degrades to a no-op and reports that nothing happened.
#[cfg(not(target_os = "linux"))]
pub fn pin_current_thread(_core: usize) -> io::Result<bool> {
    Ok(false)
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn reports_readable_when_bytes_arrive() {
        let (mut client, server) = tcp_pair();
        server.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert_eq!(n, 0, "no readiness before any bytes");

        client.write_all(b"ping").unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while events.is_empty() && Instant::now() < deadline {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
        }
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].key, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn level_triggered_readiness_repeats_until_drained() {
        let (mut client, mut server) = tcp_pair();
        server.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 1, Interest::READ).unwrap();
        client.write_all(b"xy").unwrap();

        for _ in 0..2 {
            let mut events = Vec::new();
            let deadline = Instant::now() + Duration::from_secs(5);
            while events.is_empty() && Instant::now() < deadline {
                poller
                    .wait(&mut events, Some(Duration::from_millis(100)))
                    .unwrap();
            }
            assert!(
                events.iter().any(|e| e.key == 1 && e.readable),
                "undrained bytes must be re-reported"
            );
        }
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 2);
    }

    #[test]
    fn write_interest_arms_and_disarms() {
        let (client, server) = tcp_pair();
        let _ = client;
        server.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller
            .add(server.as_raw_fd(), 3, Interest::READ_WRITE)
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            events.iter().any(|e| e.key == 3 && e.writable),
            "an idle socket's buffer is writable"
        );

        // Dropping write interest silences the (always-ready) writability.
        poller
            .modify(server.as_raw_fd(), 3, Interest::READ)
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.iter().all(|e| !e.writable));
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::clone(&poller);
        let waited = std::thread::spawn(move || {
            let mut events = Vec::new();
            let started = Instant::now();
            waker
                .wait(&mut events, Some(Duration::from_secs(30)))
                .unwrap();
            (started.elapsed(), events.len())
        });
        std::thread::sleep(Duration::from_millis(50));
        poller.notify().unwrap();
        let (elapsed, events) = waited.join().unwrap();
        assert!(
            elapsed < Duration::from_secs(10),
            "notify must cut the 30 s wait short (took {elapsed:?})"
        );
        assert_eq!(events, 0, "the wake-up itself is not a readiness event");
    }

    #[test]
    fn deleted_fds_stop_reporting() {
        let (mut client, server) = tcp_pair();
        server.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 9, Interest::READ).unwrap();
        client.write_all(b"!").unwrap();
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while events.is_empty() && Instant::now() < deadline {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
        }
        assert!(!events.is_empty());

        poller.delete(server.as_raw_fd()).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.is_empty(), "deleted registrations are silent");
    }

    #[test]
    fn wait_writable_reports_an_idle_socket_ready() {
        let (client, server) = tcp_pair();
        let _ = client;
        assert!(wait_writable(server.as_raw_fd(), Some(Duration::from_secs(5))).unwrap());
    }
}
