//! A minimal lock-free multi-producer queue with a recycling node arena.
//!
//! This is a vendored stand-in for the crates.io lock-free queue family
//! (crossbeam et al.), which is unfetchable in this offline workspace. It
//! implements exactly the shape the `ppc-net` delivery path needs:
//!
//! * **many producers, one logical consumer** — socket readers and the
//!   reactor push decoded envelopes; one `receive_*` caller at a time
//!   drains a given party's queue;
//! * **wait-free-ish pop** — the consumer takes the whole inbound stack
//!   with a single `swap`, so consuming never loops against producers;
//! * **no steady-state allocation** — nodes are recycled through a fixed
//!   pre-allocated arena with a tagged free list; the heap is only touched
//!   when the arena is exhausted (counted, see [`MpscQueue::pool_stats`]).
//!
//! # Ordering contract
//!
//! [`push`](MpscQueue::push) is linearizable: every push has a single
//! linearization point (the successful CAS publishing its node). The
//! consumer observes values in **global push-linearization order** — it
//! grabs the whole inbound Treiber stack at once (`swap(null)`) and
//! reverses it, so a batch pops oldest-first, and values from an earlier
//! batch always pop before values pushed after that batch was taken. Two
//! consequences the delivery path relies on:
//!
//! * **per-producer FIFO** — if one thread pushes `a` then `b`, every
//!   consumer sees `a` before `b`;
//! * **cross-producer order respects real time** — if `push(a)` returns
//!   before `push(b)` begins (on any threads), `a` pops before `b`.
//!
//! Pops on the *same* queue are serialized by a tiny internal mutex, so
//! accidentally-concurrent consumers are safe (each value is delivered
//! exactly once) but not scalable; the design point is one consumer per
//! queue with many queues, which is precisely the sharded inbox layout.
//!
//! # ABA safety
//!
//! The two places a naive Treiber design breaks are both closed here:
//! the consume side never CASes the inbound head (it `swap`s, which
//! cannot observe a stale head), and the free list packs a 32-bit
//! generation tag next to the 32-bit head index in one `AtomicU64`, with
//! the tag bumped on every successful CAS, so a recycled node cannot be
//! mistaken for its previous incarnation. (A tag would have to wrap all
//! 2^32 values inside one competitor's load→CAS window to be fooled.)

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// Sentinel arena index: "no next free node" on the free list, and
/// "heap-allocated, not arena-backed" in [`Node::slot`].
const NIL: u32 = u32::MAX;

/// Default arena capacity for [`MpscQueue::new`].
pub const DEFAULT_CAPACITY: usize = 256;

struct Node<T> {
    /// The carried value. Only the producer that acquired this node
    /// writes it (before publishing); only the consumer that unlinked
    /// the node reads it (after the acquiring swap). `UnsafeCell` because
    /// both happen through a shared arena reference.
    value: UnsafeCell<MaybeUninit<T>>,
    /// Inbound-stack / consumer-chain linkage. Atomic so the consumer's
    /// reversal can rewrite links that racing producers once wrote,
    /// without a data race (all accesses are Relaxed; the Release/Acquire
    /// pair on the stack head publishes them).
    next: AtomicPtr<Node<T>>,
    /// Free-list linkage by arena index. Written by the releasing thread
    /// before its CAS; a racing reader that loses the CAS discards what
    /// it read, so Relaxed atomics suffice (and keep it race-free).
    free_next: AtomicU32,
    /// This node's arena index, or [`NIL`] for heap-fallback nodes.
    slot: u32,
}

impl<T> Node<T> {
    fn heap() -> Box<Node<T>> {
        Box::new(Node {
            value: UnsafeCell::new(MaybeUninit::uninit()),
            next: AtomicPtr::new(ptr::null_mut()),
            free_next: AtomicU32::new(NIL),
            slot: NIL,
        })
    }
}

/// Head of the consumer-side FIFO chain (already reversed into pop
/// order). Wrapped in a struct so the raw pointer can live in a `Mutex`
/// while the queue's own `Send`/`Sync` impls take responsibility.
struct ConsumerHead<T>(*mut Node<T>);

/// A lock-free multi-producer queue — see the [module docs](self) for
/// the ordering contract and ABA argument.
pub struct MpscQueue<T> {
    /// Treiber stack of freshly pushed nodes, newest first.
    inbound: AtomicPtr<Node<T>>,
    /// Consumer state: the reversed (FIFO) chain currently being drained.
    consumer: Mutex<ConsumerHead<T>>,
    /// Fixed node pool. Never reallocated, so node addresses are stable.
    arena: Box<[Node<T>]>,
    /// Free-list head: `(generation tag) << 32 | arena index`, index
    /// [`NIL`] when empty. The tag increments on every successful CAS.
    free: AtomicU64,
    node_hits: AtomicU64,
    node_misses: AtomicU64,
}

unsafe impl<T: Send> Send for MpscQueue<T> {}
unsafe impl<T: Send> Sync for MpscQueue<T> {}

impl<T> Default for MpscQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MpscQueue<T> {
    /// Creates a queue with the [default arena capacity](DEFAULT_CAPACITY).
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates a queue whose arena holds `capacity` nodes. Pushes beyond
    /// the arena fall back to the heap (still correct, counted as pool
    /// misses). `capacity` is clamped to `u32::MAX - 1`.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.min(NIL as usize - 1) as u32;
        let mut arena = Vec::with_capacity(cap as usize);
        for i in 0..cap {
            arena.push(Node {
                value: UnsafeCell::new(MaybeUninit::uninit()),
                next: AtomicPtr::new(ptr::null_mut()),
                free_next: AtomicU32::new(if i + 1 < cap { i + 1 } else { NIL }),
                slot: i,
            });
        }
        MpscQueue {
            inbound: AtomicPtr::new(ptr::null_mut()),
            consumer: Mutex::new(ConsumerHead(ptr::null_mut())),
            arena: arena.into_boxed_slice(),
            free: AtomicU64::new(Self::pack(0, if cap == 0 { NIL } else { 0 })),
            node_hits: AtomicU64::new(0),
            node_misses: AtomicU64::new(0),
        }
    }

    /// Arena capacity in nodes.
    pub fn capacity(&self) -> usize {
        self.arena.len()
    }

    /// `(arena hits, heap-fallback misses)` over the queue's lifetime.
    pub fn pool_stats(&self) -> (u64, u64) {
        (
            self.node_hits.load(Ordering::Relaxed),
            self.node_misses.load(Ordering::Relaxed),
        )
    }

    #[inline]
    fn pack(tag: u64, idx: u32) -> u64 {
        ((tag & NIL as u64) << 32) | idx as u64
    }

    /// Pops a node off the tagged free list, or heap-allocates one.
    fn acquire(&self) -> *mut Node<T> {
        loop {
            let head = self.free.load(Ordering::Acquire);
            let idx = (head & NIL as u64) as u32;
            if idx == NIL {
                self.node_misses.fetch_add(1, Ordering::Relaxed);
                return Box::into_raw(Node::heap());
            }
            let node = &self.arena[idx as usize] as *const Node<T> as *mut Node<T>;
            // May read a stale link if we lose the race; the tag check in
            // the CAS below rejects exactly that case.
            let next = self.arena[idx as usize].free_next.load(Ordering::Relaxed);
            let new = Self::pack((head >> 32).wrapping_add(1), next);
            if self
                .free
                .compare_exchange_weak(head, new, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                self.node_hits.fetch_add(1, Ordering::Relaxed);
                return node;
            }
        }
    }

    /// Returns a drained node to the free list (or the heap).
    ///
    /// # Safety
    /// `node` must be exclusively owned by the caller (unlinked from both
    /// the inbound stack and the consumer chain) with its value moved out.
    unsafe fn release(&self, node: *mut Node<T>) {
        if (*node).slot == NIL {
            drop(Box::from_raw(node));
            return;
        }
        loop {
            let head = self.free.load(Ordering::Relaxed);
            (*node)
                .free_next
                .store((head & NIL as u64) as u32, Ordering::Relaxed);
            let new = Self::pack((head >> 32).wrapping_add(1), (*node).slot);
            if self
                .free
                .compare_exchange_weak(head, new, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Pushes `value`. Lock-free: at most a CAS retry loop against other
    /// producers, never blocked by the consumer.
    pub fn push(&self, value: T) {
        let node = self.acquire();
        unsafe {
            (*node).value.get().write(MaybeUninit::new(value));
        }
        let mut head = self.inbound.load(Ordering::Relaxed);
        loop {
            unsafe {
                (*node).next.store(head, Ordering::Relaxed);
            }
            // Release publishes the value write above to the consumer's
            // Acquire swap in `take_all_reversed`.
            match self.inbound.compare_exchange_weak(
                head,
                node,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(current) => head = current,
            }
        }
    }

    /// Grabs the whole inbound stack and reverses it into pop (FIFO)
    /// order. The `swap` cannot suffer ABA: whatever head it reads, it
    /// owns the entire chain hanging off it.
    fn take_all_reversed(&self) -> *mut Node<T> {
        let mut cur = self.inbound.swap(ptr::null_mut(), Ordering::Acquire);
        let mut prev: *mut Node<T> = ptr::null_mut();
        while !cur.is_null() {
            unsafe {
                let next = (*cur).next.load(Ordering::Relaxed);
                (*cur).next.store(prev, Ordering::Relaxed);
                prev = cur;
                cur = next;
            }
        }
        prev
    }

    /// Pops the oldest value, or `None` if the queue is empty.
    ///
    /// See the [module docs](self) for the ordering guarantee. Concurrent
    /// `pop` calls are safe (serialized internally) but the intended
    /// shape is one consumer per queue.
    pub fn pop(&self) -> Option<T> {
        let mut chain = self.consumer.lock().unwrap_or_else(|e| e.into_inner());
        if chain.0.is_null() {
            chain.0 = self.take_all_reversed();
        }
        let node = chain.0;
        if node.is_null() {
            return None;
        }
        unsafe {
            chain.0 = (*node).next.load(Ordering::Relaxed);
            let value = (*node).value.get().read().assume_init();
            self.release(node);
            Some(value)
        }
    }

    /// True if a `pop` right now would return `None`. Racy by nature —
    /// a producer may publish immediately after the check — but exact
    /// with respect to everything pushed before it was called.
    pub fn is_empty(&self) -> bool {
        let chain = self.consumer.lock().unwrap_or_else(|e| e.into_inner());
        chain.0.is_null() && self.inbound.load(Ordering::Acquire).is_null()
    }
}

impl<T> Drop for MpscQueue<T> {
    fn drop(&mut self) {
        // Drain so remaining values run their destructors and heap
        // fallback nodes are freed; arena nodes die with the arena box.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let q = MpscQueue::with_capacity(4);
        for i in 0..10 {
            q.push(i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_matches_vecdeque_oracle() {
        // Deterministic xorshift schedule: same op sequence against the
        // queue and a VecDeque; single producer means the global-FIFO
        // contract collapses to exact equality.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut step = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let q = MpscQueue::with_capacity(8);
        let mut oracle: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        for _ in 0..10_000 {
            if step() % 3 != 0 {
                q.push(next);
                oracle.push_back(next);
                next += 1;
            } else {
                assert_eq!(q.pop(), oracle.pop_front());
            }
        }
        while let Some(expected) = oracle.pop_front() {
            assert_eq!(q.pop(), Some(expected));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn arena_recycles_and_heap_fallback_is_counted() {
        let q = MpscQueue::with_capacity(2);
        q.push(1);
        q.push(2);
        q.push(3); // arena exhausted -> heap
        assert_eq!(q.pool_stats(), (2, 1));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        // Nodes were recycled: the next pushes hit the arena again.
        q.push(4);
        q.push(5);
        assert_eq!(q.pool_stats(), (4, 1));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), Some(5));
    }

    #[test]
    fn zero_capacity_degrades_to_heap() {
        let q = MpscQueue::with_capacity(0);
        for i in 0..100 {
            q.push(i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pool_stats().0, 0);
        assert_eq!(q.pool_stats().1, 100);
    }

    #[test]
    fn concurrent_producers_keep_per_producer_fifo_exactly_once() {
        const PRODUCERS: u64 = 8;
        const PER_PRODUCER: u64 = 2_000;
        let q = Arc::new(MpscQueue::with_capacity(64));
        std::thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let q = Arc::clone(&q);
                scope.spawn(move || {
                    for seq in 0..PER_PRODUCER {
                        q.push((p, seq));
                        if seq % 64 == 0 {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let mut last_seen = vec![None::<u64>; PRODUCERS as usize];
            let mut received = 0u64;
            while received < PRODUCERS * PER_PRODUCER {
                match q.pop() {
                    Some((p, seq)) => {
                        let last = &mut last_seen[p as usize];
                        match last {
                            None => assert_eq!(seq, 0, "producer {p} out of order"),
                            Some(prev) => {
                                assert_eq!(seq, *prev + 1, "producer {p} out of order")
                            }
                        }
                        *last = Some(seq);
                        received += 1;
                    }
                    None => std::thread::yield_now(),
                }
            }
        });
        assert_eq!(q.pop(), None);
        let (hits, misses) = q.pool_stats();
        assert_eq!(hits + misses, PRODUCERS * PER_PRODUCER);
    }

    #[test]
    fn dropping_a_nonempty_queue_drops_remaining_values() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let dropped = Arc::new(AtomicUsize::new(0));
        {
            let q = MpscQueue::with_capacity(2);
            for _ in 0..5 {
                q.push(Counted(Arc::clone(&dropped)));
            }
            let popped = q.pop().expect("one value");
            drop(popped);
            assert_eq!(dropped.load(Ordering::SeqCst), 1);
        }
        assert_eq!(dropped.load(Ordering::SeqCst), 5);
    }
}
