//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` trait names and re-exports the
//! no-op derive macros so that `#[derive(Serialize, Deserialize)]` compiles
//! without network access. No actual serialisation machinery is provided;
//! nothing in the workspace currently serialises through serde.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
