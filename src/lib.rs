//! # ppclust — privacy preserving clustering on horizontally partitioned data
//!
//! Umbrella crate re-exporting the whole workspace: a reproduction of
//! İnan, Saygın, Savaş, Hintoğlu, Levi — *"Privacy Preserving Clustering on
//! Horizontally Partitioned Data"* (ICDE Workshops, 2006).
//!
//! `k ≥ 2` data holders each own a horizontal partition of a data matrix; a
//! semi-trusted third party coordinates privacy-preserving comparison
//! protocols (numeric, categorical and alphanumeric attributes) that let it
//! assemble the **global dissimilarity matrix** without seeing any raw
//! values, run hierarchical clustering on it and publish cluster membership
//! lists back to the holders.
//!
//! ## Crate map
//!
//! * [`core`] (`ppc-core`) — the paper's contribution: data model,
//!   comparison protocols, dissimilarity construction, privacy analysis.
//! * [`crypto`] (`ppc-crypto`) — seeded pseudo-random streams, seed
//!   agreement, deterministic encryption, masking primitives.
//! * [`net`] (`ppc-net`) — simulated multi-party transport with byte
//!   accounting, channel security and eavesdropping.
//! * [`cluster`] (`ppc-cluster`) — hierarchical clustering, partitioning
//!   baselines, quality and agreement metrics.
//! * [`data`] (`ppc-data`) — synthetic workload generators with ground
//!   truth.
//! * [`baselines`] (`ppc-baselines`) — centralized, sanitization,
//!   Atallah-style and distributed-k-means baselines for the experiments.
//!
//! ## Quickstart
//!
//! ```
//! use ppclust::core::protocol::driver::{ClusteringRequest, ThirdPartyDriver};
//! use ppclust::core::protocol::party::TrustedSetup;
//! use ppclust::core::protocol::ProtocolConfig;
//! use ppclust::crypto::Seed;
//! use ppclust::data::Workload;
//!
//! // Three hospitals, 30 patients, 3 strains of a virus.
//! let workload = Workload::bird_flu(30, 3, 3, 42).unwrap();
//! let schema = workload.schema().clone();
//! let setup = TrustedSetup::deterministic(workload.partitions.clone(), &Seed::from_u64(7))
//!     .unwrap();
//! let driver = ThirdPartyDriver::new(schema.clone(), ProtocolConfig::default());
//! let output = driver.construct(&setup.holders, &setup.third_party).unwrap();
//! let (result, _matrix) = driver
//!     .cluster(&output, &ClusteringRequest::uniform(&schema, 3))
//!     .unwrap();
//! assert_eq!(result.num_clusters(), 3);
//! println!("{result}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ppc_baselines as baselines;
pub use ppc_cluster as cluster;
pub use ppc_core as core;
pub use ppc_crypto as crypto;
pub use ppc_data as data;
pub use ppc_net as net;
