//! Property-based tests (proptest) on the protocol invariants and the core
//! data structures.

use proptest::prelude::*;

use ppclust::cluster::CondensedDistanceMatrix;
use ppclust::core::ccm::CharacterComparisonMatrix;
use ppclust::core::distance::{edit_distance, edit_distance_from_ccm};
use ppclust::core::protocol::messages::PairwiseChunkMsg;
use ppclust::core::protocol::{alphanumeric, numeric};
use ppclust::core::{Alphabet, FixedPointCodec};
use ppclust::crypto::{PairwiseSeeds, Prf128, RngAlgorithm, Seed};

fn seeds(a: u64, b: u64) -> PairwiseSeeds {
    PairwiseSeeds::new(Seed::from_u64(a), Seed::from_u64(b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The numeric batch protocol recovers |x − y| exactly for every pair of
    /// fixed-point values and every seed choice.
    #[test]
    fn numeric_batch_protocol_is_exact(
        j_values in prop::collection::vec(-1_000_000_000i64..1_000_000_000, 0..12),
        k_values in prop::collection::vec(-1_000_000_000i64..1_000_000_000, 1..10),
        seed_jk in any::<u64>(),
        seed_jt in any::<u64>(),
    ) {
        let seeds = seeds(seed_jk, seed_jt);
        let algorithm = RngAlgorithm::ChaCha20;
        let masked = numeric::initiator_mask(&j_values, &seeds, algorithm);
        let pairwise = numeric::responder_fold(&masked, &k_values, &seeds.holder_holder, algorithm);
        let distances = numeric::third_party_unmask(&pairwise, &seeds.holder_third_party, algorithm);
        for (m, &y) in k_values.iter().enumerate() {
            for (n, &x) in j_values.iter().enumerate() {
                prop_assert_eq!(*distances.get(m, n), x.abs_diff(y));
            }
        }
    }

    /// Chunk headers round-trip for every window shape, and the declared
    /// row accounting always matches the carried cells — including the
    /// zero-column streams an empty initiator produces.
    #[test]
    fn pairwise_chunk_headers_roundtrip_for_every_window_shape(
        start_row in 0u32..50,
        rows in 0u32..20,
        cols in 0u32..12,
        slack in 0u32..30,
        cell_seed in any::<i64>(),
    ) {
        let total_rows = start_row + rows + slack;
        let values: Vec<i64> = (0..(rows * cols) as i64)
            .map(|i| cell_seed.wrapping_mul(31).wrapping_add(i))
            .collect();
        let msg = PairwiseChunkMsg {
            attribute: "attr".into(),
            start_row,
            rows,
            total_rows,
            cols,
            values,
        };
        let back = PairwiseChunkMsg::decode(&msg.encode()).unwrap();
        prop_assert_eq!(&back, &msg);
        prop_assert_eq!(back.rows(), rows as usize);
        // A chunk claiming rows beyond the declared total must be rejected.
        let overflow = PairwiseChunkMsg {
            total_rows: start_row + rows.saturating_sub(1),
            ..msg
        };
        if rows > 0 {
            prop_assert!(PairwiseChunkMsg::decode(&overflow.encode()).is_err());
        }
    }

    /// Batch mode and the per-pair hardened mode always agree.
    #[test]
    fn per_pair_mode_agrees_with_batch_mode(
        j_values in prop::collection::vec(-1_000_000i64..1_000_000, 1..8),
        k_values in prop::collection::vec(-1_000_000i64..1_000_000, 1..8),
        seed in any::<u64>(),
    ) {
        let seeds = seeds(seed, seed ^ 0xABCD);
        let algorithm = RngAlgorithm::Xoshiro256PlusPlus;
        let batch = numeric::third_party_unmask(
            &numeric::responder_fold(
                &numeric::initiator_mask(&j_values, &seeds, algorithm),
                &k_values,
                &seeds.holder_holder,
                algorithm,
            ),
            &seeds.holder_third_party,
            algorithm,
        );
        let per_pair = numeric::third_party_unmask_per_pair(
            &numeric::responder_fold_per_pair(
                &numeric::initiator_mask_per_pair(&j_values, k_values.len(), &seeds, algorithm),
                &k_values,
                &seeds.holder_holder,
                algorithm,
            )
            .unwrap(),
            &seeds.holder_third_party,
            algorithm,
        );
        prop_assert_eq!(batch, per_pair);
    }

    /// The masked vector DH_K receives never equals the plaintext column
    /// (up to the astronomically unlikely event of a zero mask), i.e. the
    /// one-time-pad property holds for every input.
    #[test]
    fn masked_values_differ_from_plaintext(
        values in prop::collection::vec(-1_000_000i64..1_000_000, 1..16),
        seed in any::<u64>(),
    ) {
        let seeds = seeds(seed, !seed);
        let masked = numeric::initiator_mask(&values, &seeds, RngAlgorithm::ChaCha20);
        let equal = masked.iter().zip(&values).filter(|(a, b)| a == b).count();
        prop_assert_eq!(equal, 0);
    }

    /// The alphanumeric protocol computes exactly the plaintext edit
    /// distance for arbitrary DNA strings.
    #[test]
    fn alphanumeric_protocol_matches_edit_distance(
        j_strings in prop::collection::vec("[acgt]{0,12}", 1..5),
        k_strings in prop::collection::vec("[acgt]{0,12}", 1..5),
        seed in any::<u64>(),
    ) {
        let alphabet = Alphabet::dna();
        let seeds = seeds(seed, seed.rotate_left(17));
        let algorithm = RngAlgorithm::ChaCha20;
        let j_encoded: Vec<Vec<u32>> =
            j_strings.iter().map(|s| alphabet.encode(s).unwrap()).collect();
        let k_encoded: Vec<Vec<u32>> =
            k_strings.iter().map(|s| alphabet.encode(s).unwrap()).collect();
        let masked = alphanumeric::initiator_mask_strings(&j_encoded, 4, &seeds, algorithm).unwrap();
        let bundle = alphanumeric::responder_build_bundle(&masked, &k_encoded, 4).unwrap();
        let distances = alphanumeric::third_party_edit_distances(
            &bundle, 4, &seeds.holder_third_party, algorithm,
        ).unwrap();
        for (m, t) in k_strings.iter().enumerate() {
            for (n, s) in j_strings.iter().enumerate() {
                prop_assert_eq!(*distances.get(m, n), edit_distance(s, t));
            }
        }
    }

    /// Edit distance is a metric on the sampled strings: symmetric,
    /// zero iff equal (for these generators), triangle inequality.
    #[test]
    fn edit_distance_is_a_metric(
        a in "[acgt]{0,14}",
        b in "[acgt]{0,14}",
        c in "[acgt]{0,14}",
    ) {
        prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        prop_assert_eq!(edit_distance(&a, &a), 0);
        prop_assert!(edit_distance(&a, &c) <= edit_distance(&a, &b) + edit_distance(&b, &c));
        if a != b {
            prop_assert!(edit_distance(&a, &b) > 0);
        }
    }

    /// The CCM-driven edit distance always equals the plaintext edit
    /// distance.
    #[test]
    fn ccm_edit_distance_equals_plaintext(
        a in "[a-f]{0,10}",
        b in "[a-f]{0,10}",
    ) {
        let ccm = CharacterComparisonMatrix::from_strings(&a, &b);
        prop_assert_eq!(edit_distance_from_ccm(&ccm), edit_distance(&a, &b));
    }

    /// Fixed-point encoding round-trips within half a unit of precision and
    /// distances decoded from fixed point match float distances.
    #[test]
    fn fixed_point_roundtrip(x in -1.0e6f64..1.0e6, y in -1.0e6f64..1.0e6) {
        let codec = FixedPointCodec::default();
        let ex = codec.encode(x).unwrap();
        let ey = codec.encode(y).unwrap();
        prop_assert!((codec.decode(ex) - x).abs() <= 0.5 / codec.scale() + 1e-12);
        let distance = codec.decode_distance(ex.abs_diff(ey));
        prop_assert!((distance - (x - y).abs()).abs() <= 1.0 / codec.scale() + 1e-9);
    }

    /// Normalising a condensed matrix always lands every entry in [0, 1] and
    /// keeps the arg-max pair unchanged.
    #[test]
    fn normalisation_preserves_structure(
        values in prop::collection::vec(0.0f64..1000.0, 1..28),
    ) {
        // Find the largest n with n(n-1)/2 <= len, then truncate.
        let mut n = 2usize;
        while (n + 1) * n / 2 <= values.len() { n += 1; }
        let take = n * (n - 1) / 2;
        let mut matrix = CondensedDistanceMatrix::from_condensed(n, values[..take].to_vec()).unwrap();
        let before_max = matrix.max_value();
        matrix.normalize_max();
        prop_assert!(matrix.max_value() <= 1.0 + 1e-12);
        prop_assert!(matrix.min_value() >= 0.0 || take == 0);
        if before_max > 0.0 {
            prop_assert!((matrix.max_value() - 1.0).abs() < 1e-12);
        }
    }

    /// Deterministic categorical encryption preserves exactly the equality
    /// relation of the plaintext labels.
    #[test]
    fn categorical_tags_preserve_equality(
        labels in prop::collection::vec("[a-z]{0,6}", 2..20),
        key in any::<[u8; 32]>(),
    ) {
        let prf = Prf128::new(&key);
        let tags: Vec<_> = labels.iter().map(|l| prf.tag_str(l)).collect();
        for i in 0..labels.len() {
            for j in 0..labels.len() {
                prop_assert_eq!(tags[i] == tags[j], labels[i] == labels[j]);
            }
        }
    }

    /// Seed derivation never collides across distinct labels (on sampled
    /// label sets) and is deterministic.
    #[test]
    fn seed_derivation_is_deterministic_and_label_separated(
        base in any::<u64>(),
        label_a in "[a-z]{1,12}",
        label_b in "[a-z]{1,12}",
    ) {
        let seed = Seed::from_u64(base);
        prop_assert_eq!(seed.derive(&label_a), seed.derive(&label_a));
        if label_a != label_b {
            prop_assert_ne!(seed.derive(&label_a), seed.derive(&label_b));
        }
    }
}
