//! End-to-end integration tests: the privacy-preserving pipeline must match
//! the centralized computation exactly, in every mode, over the networked
//! session as well as the in-memory driver, for every workload type.

use ppclust::baselines::centralized::CentralizedBaseline;
use ppclust::cluster::agreement::{adjusted_rand_index, rand_index};
use ppclust::cluster::{ClusterAssignment, Linkage};
use ppclust::core::protocol::driver::{ClusteringRequest, ThirdPartyDriver};
use ppclust::core::protocol::party::TrustedSetup;
use ppclust::core::protocol::session::ClusteringSession;
use ppclust::core::protocol::{NumericMode, ProtocolConfig};
use ppclust::core::ClusteringResult;
use ppclust::crypto::{RngAlgorithm, Seed};
use ppclust::data::Workload;

fn published_assignment(result: &ClusteringResult, total: usize) -> ClusterAssignment {
    let mut pairs: Vec<(ppclust::core::ObjectId, usize)> = Vec::new();
    for (cluster, members) in result.clusters.iter().enumerate() {
        for &id in members {
            pairs.push((id, cluster));
        }
    }
    pairs.sort_by_key(|(id, _)| *id);
    assert_eq!(pairs.len(), total);
    ClusterAssignment::from_labels(&pairs.into_iter().map(|(_, c)| c).collect::<Vec<_>>())
}

fn assert_matches_centralized(workload: &Workload, clusters: usize, config: ProtocolConfig) {
    let schema = workload.schema().clone();
    let setup =
        TrustedSetup::deterministic(workload.partitions.clone(), &Seed::from_u64(0xEE)).unwrap();
    let driver = ThirdPartyDriver::new(schema.clone(), config);
    let output = driver
        .construct(&setup.holders, &setup.third_party)
        .unwrap();
    let request = ClusteringRequest {
        weights: schema.uniform_weights(),
        linkage: Linkage::Average,
        num_clusters: clusters,
    };
    let (result, matrix) = driver.cluster(&output, &request).unwrap();

    let central = CentralizedBaseline::new(schema.clone());
    let reference = central
        .run(
            &workload.partitions,
            &schema.uniform_weights(),
            Linkage::Average,
            clusters,
        )
        .unwrap();

    // The dissimilarity matrices agree to fixed-point precision...
    let diff = matrix
        .matrix()
        .max_abs_difference(reference.final_matrix.matrix());
    assert!(diff < 1e-6, "matrix deviation {diff}");
    // ...and the published clustering is identical to the centralized one.
    let published = published_assignment(&result, workload.len());
    let ari = adjusted_rand_index(&published, &reference.assignment).unwrap();
    assert!((ari - 1.0).abs() < 1e-9, "ARI vs centralized {ari}");
    let ri = rand_index(&published, &reference.assignment).unwrap();
    assert!((ri - 1.0).abs() < 1e-9);
}

#[test]
fn protocol_matches_centralized_on_mixed_bird_flu_workload() {
    let workload = Workload::bird_flu(24, 3, 3, 100).unwrap();
    assert_matches_centralized(&workload, 3, ProtocolConfig::default());
}

#[test]
fn protocol_matches_centralized_on_customer_workload_with_four_sites() {
    let workload = Workload::customer_segmentation(32, 4, 4, 55).unwrap();
    assert_matches_centralized(&workload, 4, ProtocolConfig::default());
}

#[test]
fn protocol_matches_centralized_in_per_pair_mode() {
    let workload = Workload::numeric_only(30, 3, 3, 8).unwrap();
    let config = ProtocolConfig {
        numeric_mode: NumericMode::PerPair,
        ..ProtocolConfig::default()
    };
    assert_matches_centralized(&workload, 3, config);
}

#[test]
fn protocol_matches_centralized_with_xoshiro_streams() {
    let workload = Workload::dna_only(18, 2, 3, 20, 9).unwrap();
    let config = ProtocolConfig {
        rng_algorithm: RngAlgorithm::Xoshiro256PlusPlus,
        ..ProtocolConfig::default()
    };
    assert_matches_centralized(&workload, 3, config);
}

#[test]
fn networked_session_equals_in_memory_driver_and_counts_traffic() {
    let workload = Workload::bird_flu(21, 3, 3, 5).unwrap();
    let schema = workload.schema().clone();
    let setup =
        TrustedSetup::deterministic(workload.partitions.clone(), &Seed::from_u64(6)).unwrap();
    let request = ClusteringRequest {
        weights: schema.uniform_weights(),
        linkage: Linkage::Average,
        num_clusters: 3,
    };

    let driver = ThirdPartyDriver::new(schema.clone(), ProtocolConfig::default());
    let output = driver
        .construct(&setup.holders, &setup.third_party)
        .unwrap();
    let (reference, reference_matrix) = driver.cluster(&output, &request).unwrap();

    let session = ClusteringSession::new(schema.clone(), ProtocolConfig::default(), 3);
    let outcome = session
        .run(&setup.holders, &setup.third_party, &request)
        .unwrap();

    assert_eq!(outcome.result.clusters, reference.clusters);
    assert!(
        outcome
            .final_matrix
            .matrix()
            .max_abs_difference(reference_matrix.matrix())
            < 1e-12
    );
    assert!(outcome.communication.total_bytes() > 0);
    // Every attribute produced a matrix.
    assert_eq!(outcome.per_attribute.len(), schema.len());
}

#[test]
fn diffie_hellman_setup_produces_the_same_result_as_dealer_setup() {
    let workload = Workload::numeric_only(20, 2, 2, 77).unwrap();
    let schema = workload.schema().clone();
    let request = ClusteringRequest {
        weights: schema.uniform_weights(),
        linkage: Linkage::Average,
        num_clusters: 2,
    };
    let driver = ThirdPartyDriver::new(schema.clone(), ProtocolConfig::default());

    let dealer =
        TrustedSetup::deterministic(workload.partitions.clone(), &Seed::from_u64(1)).unwrap();
    let dh =
        TrustedSetup::via_diffie_hellman(workload.partitions.clone(), &Seed::from_u64(2)).unwrap();
    let (dealer_result, dealer_matrix) = driver
        .cluster(
            &driver
                .construct(&dealer.holders, &dealer.third_party)
                .unwrap(),
            &request,
        )
        .unwrap();
    let (dh_result, dh_matrix) = driver
        .cluster(
            &driver.construct(&dh.holders, &dh.third_party).unwrap(),
            &request,
        )
        .unwrap();
    // The masks differ, but the recovered distances — hence everything the
    // third party publishes — are identical.
    assert!(
        dealer_matrix
            .matrix()
            .max_abs_difference(dh_matrix.matrix())
            < 1e-9
    );
    assert_eq!(dealer_result.clusters, dh_result.clusters);
}

#[test]
fn ground_truth_is_recovered_on_well_separated_data() {
    let workload = Workload::bird_flu(30, 3, 3, 123).unwrap();
    let schema = workload.schema().clone();
    let setup =
        TrustedSetup::deterministic(workload.partitions.clone(), &Seed::from_u64(4)).unwrap();
    let driver = ThirdPartyDriver::new(schema.clone(), ProtocolConfig::default());
    let output = driver
        .construct(&setup.holders, &setup.third_party)
        .unwrap();
    let (result, _) = driver
        .cluster(
            &output,
            &ClusteringRequest {
                weights: schema.uniform_weights(),
                linkage: Linkage::Average,
                num_clusters: 3,
            },
        )
        .unwrap();
    let truth = ClusterAssignment::from_labels(&workload.ground_truth_in_site_order());
    let published = published_assignment(&result, workload.len());
    let ari = adjusted_rand_index(&published, &truth).unwrap();
    assert!(
        ari > 0.8,
        "expected near-perfect strain recovery, ARI {ari}"
    );
}
