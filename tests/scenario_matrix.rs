//! The scenario × chaos matrix, CI slice: seeded realistic scenarios run
//! against the in-process `SessionEngine` oracle under every taxonomy
//! cell — completed runs must be **byte-identical** (f64-bit exact) to
//! the oracle, faulted runs must classify into exactly the expected
//! bucket ([`ppc_scenario::chaos::RunOutcome`]), so a settled run can
//! never silently pass as completed.
//!
//! The flagship cell (8 sites, 10⁴ objects, mixed schema, lossy WAN +
//! mid-run link kill) is `#[ignore]`d here and run in release mode by the
//! CI `scenario-matrix` job — a debug build pays ~30× on the O(n²)
//! masking kernels.

use std::sync::Arc;
use std::time::Duration;

use ppc_scenario::chaos::{
    self, classify_engine_result, classify_party_result, Expectation, FailureReason, Fault,
    NetworkProfile, RunOutcome,
};
use ppc_scenario::digest::fingerprint_outcomes;
use ppc_scenario::factory::{Scenario, ScenarioSpec};
use ppclust::core::protocol::engine::EngineOutcome;
use ppclust::core::protocol::party_engine::{PartyEngine, PartySeat};
use ppclust::core::protocol::sharded::ShardedEngine;
use ppclust::net::control::{ControlAuth, SessionReady};
use ppclust::net::{
    Backoff, ChannelKeyring, Envelope, Network, PartyId, SimulatedWan, TcpAcceptor, TcpRouter,
    TcpTransport, Transport, WaitTransport, WanProfile, TOPIC_READY,
};

const SEED: u64 = 0x5EED_0008;

fn ci_scenario() -> Scenario {
    ScenarioSpec::ci(SEED).generate().expect("CI scenario")
}

/// Runs every scenario session through a 1-shard `ShardedEngine` over the
/// given transport and classifies the result.
fn run_sharded<T: WaitTransport + Sync>(scenario: &Scenario, transport: T) -> RunOutcome {
    let mut engine = ShardedEngine::new(vec![transport]).unwrap();
    for spec in scenario.session_specs().unwrap() {
        engine.add_session(spec);
    }
    engine.set_stall_budget(Duration::from_millis(100), 300);
    classify_engine_result(engine.run().map(|run| run.outcomes))
}

/// Baseline column: under ideal, WAN and lossy-DSL profiles the engine
/// must complete byte-identical to the oracle. The cells come from
/// `chaos::ci_slice()` so the expectations asserted here are the same
/// machine-readable ones the docs and bench rows reference.
#[test]
fn baseline_cells_complete_identical_to_the_oracle() {
    let scenario = ci_scenario();
    let oracle_fp = fingerprint_outcomes(&scenario.oracle().unwrap());

    for cell in chaos::ci_slice() {
        if cell.fault != Fault::None {
            continue;
        }
        let sites = scenario.spec.sites;
        let outcome = match cell.profile {
            NetworkProfile::Ideal => run_sharded(&scenario, Network::with_parties(sites)),
            NetworkProfile::Wan => run_sharded(
                &scenario,
                SimulatedWan::new(Network::with_parties(sites), WanProfile::wan(), 11).unwrap(),
            ),
            NetworkProfile::LossyDsl => run_sharded(
                &scenario,
                SimulatedWan::new(Network::with_parties(sites), WanProfile::lossy_dsl(), 13)
                    .unwrap(),
            ),
        };
        cell.expect
            .check(&outcome, Some(oracle_fp))
            .unwrap_or_else(|e| panic!("cell {}: {e}", cell.name));
    }
}

/// Kill → resume → identical: mid-run `sever_links` tears down every OS
/// stream of the engine's router link (twice); re-dial + replay must
/// recover losslessly and the published results must stay byte-identical
/// to the uninterrupted oracle — under both an ideal and a lossy profile.
#[test]
fn sever_resume_cells_complete_identical_to_the_oracle() {
    let scenario = ci_scenario();
    let oracle_fp = fingerprint_outcomes(&scenario.oracle().unwrap());

    for cell in chaos::ci_slice() {
        if cell.fault != Fault::SeverResume {
            continue;
        }
        let (mut router, addr) = TcpRouter::spawn("127.0.0.1:0").unwrap();
        let transport = TcpTransport::new(scenario.parties());
        transport.connect(addr, &Backoff::default()).unwrap();
        let transport = Arc::new(transport);

        let chaos_handle = Arc::clone(&transport);
        let saboteur = std::thread::spawn(move || {
            for _ in 0..2 {
                std::thread::sleep(Duration::from_millis(40));
                chaos_handle.sever_links();
            }
        });

        let outcome = match cell.profile {
            NetworkProfile::LossyDsl => run_sharded(
                &scenario,
                SimulatedWan::new(Arc::clone(&transport), WanProfile::lossy_dsl(), 17).unwrap(),
            ),
            _ => run_sharded(&scenario, Arc::clone(&transport)),
        };
        saboteur.join().unwrap();
        router.shutdown();
        cell.expect
            .check(&outcome, Some(oracle_fp))
            .unwrap_or_else(|e| panic!("cell {}: {e}", cell.name));
    }
}

/// Dead peer on a direct link: the third party announces readiness, then
/// dies for good. With a bounded reconnect policy the coordinator's sends
/// fail and every session settles `PeerUnreachable` — classified, never a
/// bare stall or a hang.
#[test]
fn dead_peer_cell_settles_peer_unreachable() {
    let scenario = ci_scenario();
    let cell = chaos::ci_slice()
        .into_iter()
        .find(|c| c.fault == Fault::DeadPeer)
        .unwrap();
    let master = scenario.master;

    let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
    let addr = acceptor.local_addr().unwrap();
    let tp_side = TcpTransport::new([PartyId::ThirdParty]);

    let holders: Vec<PartyId> = (0..scenario.spec.sites).map(PartyId::DataHolder).collect();
    let mut transport = TcpTransport::new(holders.iter().copied());
    transport.set_reconnect_policy(Backoff {
        initial: Duration::from_millis(1),
        max_delay: Duration::from_millis(2),
        max_attempts: 2,
    });
    let dial = std::thread::spawn(move || {
        transport.connect(addr, &Backoff::default()).unwrap();
        transport
    });
    acceptor.accept_into(&tp_side).unwrap();
    let transport = dial.join().unwrap();

    // The third party reports readiness, then is gone for good.
    let body = SessionReady {
        party: PartyId::ThirdParty,
        rows: 0,
    }
    .encode();
    tp_side
        .send(Envelope::new(
            PartyId::ThirdParty,
            PartyId::DataHolder(0),
            TOPIC_READY,
            ControlAuth::from_master(&master).seal(
                TOPIC_READY,
                PartyId::ThirdParty,
                PartyId::DataHolder(0),
                &body,
            ),
        ))
        .unwrap();
    tp_side.flush().unwrap();
    tp_side.shutdown();
    drop(tp_side);
    drop(acceptor);

    let seats: Vec<PartySeat> = scenario
        .partitions
        .iter()
        .map(|partition| PartySeat::Holder {
            partition: partition.clone(),
            master,
        })
        .collect();
    let mut engine = PartyEngine::new(transport, seats).unwrap();
    engine.set_stall_budget(Duration::from_millis(20), 50);
    let outcome = classify_party_result(engine.coordinate(
        scenario.schema.clone(),
        [PartyId::ThirdParty],
        scenario.plans.clone(),
    ));
    cell.expect
        .check(&outcome, None)
        .unwrap_or_else(|e| panic!("cell {}: {e}", cell.name));
    match outcome {
        RunOutcome::Settled {
            reason: FailureReason::PeerUnreachable,
            ..
        } => {}
        other => panic!("expected PeerUnreachable settle, got {other:?}"),
    }
}

/// A peer killed behind a router never surfaces as a send failure (the
/// router keeps buffering), so the coordinator must hit its *readiness*
/// budget instead — classified as a stall, bounded by the configurable
/// budget rather than a CI-killing hang.
#[test]
fn kill_behind_router_cell_classifies_as_a_stall() {
    let scenario = ci_scenario();
    let cell = chaos::ci_slice()
        .into_iter()
        .find(|c| c.fault == Fault::KillBehindRouter)
        .unwrap();

    let (mut router, addr) = TcpRouter::spawn("127.0.0.1:0").unwrap();
    let holders: Vec<PartyId> = (0..scenario.spec.sites).map(PartyId::DataHolder).collect();
    let transport = TcpTransport::new(holders.iter().copied());
    transport.connect(addr, &Backoff::default()).unwrap();

    let seats: Vec<PartySeat> = scenario
        .partitions
        .iter()
        .map(|partition| PartySeat::Holder {
            partition: partition.clone(),
            master: scenario.master,
        })
        .collect();
    let mut engine = PartyEngine::new(transport, seats).unwrap();
    engine.set_stall_budget(Duration::from_millis(50), 200);
    // The third party was killed before it ever reported ready: bound the
    // readiness gather tightly so the run settles in milliseconds.
    engine.set_readiness_budget(Duration::from_millis(10), 5);
    let outcome = classify_party_result(engine.coordinate(
        scenario.schema.clone(),
        [PartyId::ThirdParty],
        scenario.plans.clone(),
    ));
    router.shutdown();
    cell.expect
        .check(&outcome, None)
        .unwrap_or_else(|e| panic!("cell {}: {e}", cell.name));
}

/// Handshake-level security mismatch: a plaintext dialler against a
/// sealed endpoint is rejected before any protocol traffic — classified
/// `AuthRejected`, the "no silent downgrade" bucket.
#[test]
fn security_mismatch_cell_is_rejected_at_the_handshake() {
    let scenario = ci_scenario();
    let cell = chaos::ci_slice()
        .into_iter()
        .find(|c| c.fault == Fault::SecurityMismatch)
        .unwrap();

    let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
    let addr = acceptor.local_addr().unwrap();
    let mut sealed = TcpTransport::new([PartyId::ThirdParty]);
    sealed.set_security(ChannelKeyring::from_master(&scenario.master));

    let dial = std::thread::spawn(move || {
        let plaintext = TcpTransport::new([PartyId::DataHolder(0)]);
        plaintext.connect(addr, &Backoff::none()).unwrap_err()
    });
    let _ = acceptor.accept_into(&sealed);
    let dial_err = dial.join().unwrap();
    sealed.shutdown();

    let outcome = classify_engine_result(Err::<Vec<EngineOutcome>, _>(dial_err));
    cell.expect
        .check(&outcome, None)
        .unwrap_or_else(|e| panic!("cell {}: {e}", cell.name));
}

/// The flagship acceptance cell (release-only; run by CI as
/// `cargo test --release --test scenario_matrix -- --ignored`):
/// 8 sites, 10⁴ objects, mixed schema, zipf row skew — run over loopback
/// TCP through a router under a lossy WAN profile with a mid-run link
/// kill, and compared f64-bit-exact against the uninterrupted in-process
/// oracle via digests (one resident condensed matrix at a time, not two).
#[test]
#[ignore = "release-mode flagship: ~10^8 masked comparisons, run via CI scenario-matrix job"]
fn flagship_scenario_survives_loss_and_mid_run_kill_byte_identical() {
    let scenario = ScenarioSpec::flagship(SEED).generate().expect("flagship");
    assert!(scenario.spec.sites >= 8);
    assert!(scenario.spec.objects >= 10_000);
    assert_eq!(scenario.schema.len(), 3, "mixed numeric/cat/alnum schema");

    let oracle_fp = fingerprint_outcomes(&scenario.oracle().unwrap());

    let (mut router, addr) = TcpRouter::spawn("127.0.0.1:0").unwrap();
    let transport = TcpTransport::new(scenario.parties());
    transport.connect(addr, &Backoff::default()).unwrap();
    let transport = Arc::new(transport);

    let chaos_handle = Arc::clone(&transport);
    let saboteur = std::thread::spawn(move || {
        // Two kills while the masked-comparison phase is in full flight.
        for wait_ms in [400u64, 1_500] {
            std::thread::sleep(Duration::from_millis(wait_ms));
            chaos_handle.sever_links();
        }
    });

    let wan = SimulatedWan::new(Arc::clone(&transport), WanProfile::lossy_dsl(), 19).unwrap();
    let mut engine = ShardedEngine::new(vec![wan]).unwrap();
    for spec in scenario.session_specs().unwrap() {
        engine.add_session(spec);
    }
    // Generous budget: the flagship compute phase between envelopes is
    // long on a single core.
    engine.set_stall_budget(Duration::from_millis(200), 3_000);
    let outcome = classify_engine_result(engine.run().map(|run| run.outcomes));
    saboteur.join().unwrap();
    router.shutdown();

    Expectation::CompletedIdenticalToOracle
        .check(&outcome, Some(oracle_fp))
        .unwrap_or_else(|e| panic!("flagship cell: {e}"));
}
