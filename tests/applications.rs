//! Integration tests for the applications the paper lists beyond clustering:
//! weighted attribute merging, privacy-preserving record linkage and
//! distance-based outlier detection — all served from the same
//! protocol-built dissimilarity matrix.

use ppclust::cluster::outlier::knn_outlier_scores;
use ppclust::core::protocol::driver::ThirdPartyDriver;
use ppclust::core::protocol::party::TrustedSetup;
use ppclust::core::protocol::ProtocolConfig;
use ppclust::core::{
    Alphabet, AttributeDescriptor, AttributeValue, DataMatrix, HorizontalPartition, ObjectId,
    Record, Schema, WeightVector,
};
use ppclust::crypto::Seed;

fn person_schema() -> Schema {
    Schema::new(vec![
        AttributeDescriptor::alphanumeric("name", Alphabet::alphanumeric_lower()),
        AttributeDescriptor::numeric("age"),
    ])
    .unwrap()
}

fn person(name: &str, age: f64) -> Record {
    Record::new(vec![
        AttributeValue::alphanumeric(name),
        AttributeValue::numeric(age),
    ])
}

fn linkage_setup() -> (Schema, TrustedSetup) {
    let schema = person_schema();
    let org_a = HorizontalPartition::new(
        0,
        DataMatrix::with_rows(
            schema.clone(),
            vec![
                person("maria gonzalez", 34.0),
                person("john smith", 52.0),
                person("ayse yilmaz", 29.0),
            ],
        )
        .unwrap(),
    );
    let org_b = HorizontalPartition::new(
        1,
        DataMatrix::with_rows(
            schema.clone(),
            vec![
                person("maria gonzales", 35.0), // same person, typo + drift
                person("paulo oliveira", 47.0),
                person("jon smith", 52.0), // same person, typo
            ],
        )
        .unwrap(),
    );
    let setup = TrustedSetup::deterministic(vec![org_a, org_b], &Seed::from_u64(44)).unwrap();
    (schema, setup)
}

#[test]
fn record_linkage_finds_true_matches_and_rejects_non_matches() {
    let (schema, setup) = linkage_setup();
    let driver = ThirdPartyDriver::new(schema.clone(), ProtocolConfig::default());
    let output = driver
        .construct(&setup.holders, &setup.third_party)
        .unwrap();
    let matrix = output
        .merge(&schema, &WeightVector::new(vec![0.8, 0.2]).unwrap())
        .unwrap();

    let d = |a: usize, b: usize| {
        matrix
            .distance(ObjectId::new(0, a), ObjectId::new(1, b))
            .unwrap()
    };
    // True matches are much closer than any non-match.
    let maria = d(0, 0);
    let john = d(1, 2);
    let best_non_match = [
        d(0, 1),
        d(0, 2),
        d(1, 0),
        d(1, 1),
        d(2, 0),
        d(2, 1),
        d(2, 2),
    ]
    .into_iter()
    .fold(f64::INFINITY, f64::min);
    assert!(maria < 0.3, "maria pair distance {maria}");
    assert!(john < 0.3, "john pair distance {john}");
    assert!(
        best_non_match > 2.0 * maria.max(john),
        "non-matches ({best_non_match}) should be far above matches"
    );
}

#[test]
fn attribute_weights_change_the_linkage_decision() {
    let (schema, setup) = linkage_setup();
    let driver = ThirdPartyDriver::new(schema.clone(), ProtocolConfig::default());
    let output = driver
        .construct(&setup.holders, &setup.third_party)
        .unwrap();
    // Under a name-only weighting, "john smith" vs "jon smith" is nearly 0;
    // under an age-only weighting, people with similar ages collapse even if
    // their names are unrelated.
    let name_only = output
        .merge(&schema, &WeightVector::new(vec![1.0, 0.0]).unwrap())
        .unwrap();
    let age_only = output
        .merge(&schema, &WeightVector::new(vec![0.0, 1.0]).unwrap())
        .unwrap();
    let john = ObjectId::new(0, 1);
    let jon = ObjectId::new(1, 2);
    let paulo = ObjectId::new(1, 1);
    assert!(name_only.distance(john, jon).unwrap() < 0.1);
    assert!(name_only.distance(john, paulo).unwrap() > 0.5);
    // Age-only: John (52) and Paulo (47) are fairly close, far closer than
    // under the name-only view.
    assert!(age_only.distance(john, paulo).unwrap() < name_only.distance(john, paulo).unwrap());
}

#[test]
fn outlier_detection_on_the_protocol_built_matrix() {
    // Two sites of normal patients plus one anomalous record at site B.
    let schema = Schema::new(vec![
        AttributeDescriptor::numeric("age"),
        AttributeDescriptor::numeric("lab_result"),
    ])
    .unwrap();
    let record = |age: f64, lab: f64| {
        Record::new(vec![
            AttributeValue::numeric(age),
            AttributeValue::numeric(lab),
        ])
    };
    let site_a = HorizontalPartition::new(
        0,
        DataMatrix::with_rows(
            schema.clone(),
            vec![
                record(30.0, 1.0),
                record(32.0, 1.2),
                record(29.0, 0.9),
                record(31.0, 1.1),
            ],
        )
        .unwrap(),
    );
    let site_b = HorizontalPartition::new(
        1,
        DataMatrix::with_rows(
            schema.clone(),
            vec![record(33.0, 1.0), record(28.0, 1.3), record(85.0, 9.5)],
        )
        .unwrap(),
    );
    let setup = TrustedSetup::deterministic(vec![site_a, site_b], &Seed::from_u64(5)).unwrap();
    let driver = ThirdPartyDriver::new(schema.clone(), ProtocolConfig::default());
    let output = driver
        .construct(&setup.holders, &setup.third_party)
        .unwrap();
    let matrix = output.merge(&schema, &schema.uniform_weights()).unwrap();

    let scores = knn_outlier_scores(matrix.matrix(), 2).unwrap();
    // The anomalous record is global index 6 (last object of site B).
    let top = scores.top(1);
    assert_eq!(top, vec![6]);
    assert_eq!(matrix.index().object_id(6).unwrap(), ObjectId::new(1, 2));
    assert_eq!(scores.above_sigma(1.5), vec![6]);
}

#[test]
fn per_site_result_views_only_contain_that_sites_objects() {
    let (schema, setup) = linkage_setup();
    let driver = ThirdPartyDriver::new(schema.clone(), ProtocolConfig::default());
    let output = driver
        .construct(&setup.holders, &setup.third_party)
        .unwrap();
    let (result, _) = driver
        .cluster(
            &output,
            &ppclust::core::protocol::driver::ClusteringRequest::uniform(&schema, 2),
        )
        .unwrap();
    for site in 0..2u32 {
        let view = result.view_for_site(site);
        assert_eq!(view.len(), result.num_clusters());
        assert!(view.iter().flatten().all(|o| o.site == site));
        let total: usize = view.iter().map(Vec::len).sum();
        assert_eq!(total, 3);
    }
}
