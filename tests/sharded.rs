//! End-to-end tests for the threaded, socket-backed engine tier: sessions
//! hash-sharded across worker threads must produce results identical to
//! the single-threaded `SessionEngine` oracle over every transport —
//! in-memory, simulated WAN, loopback TCP through a frame router, and
//! (on Unix) a Unix-domain socket router.

use std::time::Duration;

use ppclust::cluster::Linkage;
use ppclust::core::protocol::driver::ClusteringRequest;
use ppclust::core::protocol::engine::{EngineOutcome, SessionEngine, SessionSpec};
use ppclust::core::protocol::party::TrustedSetup;
use ppclust::core::protocol::sharded::ShardedEngine;
use ppclust::core::protocol::{NumericMode, ProtocolConfig};
use ppclust::crypto::Seed;
use ppclust::data::Workload;
use ppclust::net::{Backoff, Network, PartyId, SimulatedWan, TcpRouter, TcpTransport, WanProfile};

const HOLDERS: u32 = 3;

fn bird_flu_spec(seed: u64, chunk_rows: Option<usize>, mode: NumericMode) -> SessionSpec {
    let workload = Workload::bird_flu(15, HOLDERS, 3, seed).unwrap();
    let schema = workload.schema().clone();
    let setup =
        TrustedSetup::deterministic(workload.partitions.clone(), &Seed::from_u64(seed)).unwrap();
    SessionSpec {
        schema: schema.clone(),
        config: ProtocolConfig {
            numeric_mode: mode,
            ..ProtocolConfig::default()
        },
        holders: setup.holders,
        keys: setup.third_party,
        request: ClusteringRequest {
            weights: schema.uniform_weights(),
            linkage: Linkage::Average,
            num_clusters: 3,
        },
        chunk_rows,
    }
}

/// A mixed six-session workload: chunked and whole-matrix, batch and
/// per-pair numeric modes.
fn mixed_specs() -> Vec<SessionSpec> {
    vec![
        bird_flu_spec(201, Some(2), NumericMode::Batch),
        bird_flu_spec(202, None, NumericMode::Batch),
        bird_flu_spec(203, Some(1), NumericMode::PerPair),
        bird_flu_spec(204, Some(3), NumericMode::Batch),
        bird_flu_spec(205, None, NumericMode::PerPair),
        bird_flu_spec(206, Some(2), NumericMode::Batch),
    ]
}

/// The sequential oracle: every spec run alone on the single-threaded
/// engine over a fresh in-memory network.
fn oracle_outcomes(specs: &[SessionSpec]) -> Vec<EngineOutcome> {
    specs
        .iter()
        .map(|spec| {
            let mut engine = SessionEngine::new(Network::with_parties(HOLDERS));
            engine.add_session(spec.clone());
            engine.run().unwrap().remove(0)
        })
        .collect()
}

fn assert_matches_oracle(outcomes: &[EngineOutcome], oracle: &[EngineOutcome]) {
    assert_eq!(outcomes.len(), oracle.len());
    for (i, (sharded, reference)) in outcomes.iter().zip(oracle).enumerate() {
        assert_eq!(
            sharded.result.clusters, reference.result.clusters,
            "session {i}: sharded clusters diverge from the sequential oracle"
        );
        assert!(
            sharded
                .final_matrix
                .matrix()
                .max_abs_difference(reference.final_matrix.matrix())
                < 1e-12,
            "session {i}: sharded dissimilarity matrix diverges"
        );
        assert_eq!(
            sharded.stats.peak_buffered_rows, reference.stats.peak_buffered_rows,
            "session {i}: chunk-window buffering differs"
        );
    }
}

#[test]
fn two_shards_over_in_memory_networks_match_the_sequential_oracle() {
    let specs = mixed_specs();
    let oracle = oracle_outcomes(&specs);
    let transports = vec![
        Network::with_parties(HOLDERS),
        Network::with_parties(HOLDERS),
    ];
    let mut engine = ShardedEngine::new(transports).unwrap();
    for spec in &specs {
        engine.add_session(spec.clone());
    }
    let run = engine.run().unwrap();
    assert_matches_oracle(&run.outcomes, &oracle);
    assert_eq!(run.shards.len(), 2);
    assert_eq!(run.shards[0].sessions, vec![0, 2, 4]);
    assert_eq!(run.shards[1].sessions, vec![1, 3, 5]);

    // The transports report what happened to the scheduler's parks: the
    // aggregate exists (Network tracks waits) and no transport counts
    // more wakeups than parks (a wakeup is a park that didn't time out).
    let waits = engine
        .transport_wait_stats()
        .expect("in-memory networks track wait stats");
    assert!(waits.wakeups <= waits.blocking_waits);
}

#[test]
fn four_shards_over_simulated_wans_match_the_sequential_oracle() {
    let specs = mixed_specs();
    let oracle = oracle_outcomes(&specs);
    let profile = WanProfile {
        loss_probability: 0.05,
        ..WanProfile::lossy_dsl()
    };
    let transports: Vec<SimulatedWan<Network>> = (0..4)
        .map(|i| SimulatedWan::new(Network::with_parties(HOLDERS), profile, 7 + i).unwrap())
        .collect();
    let mut engine = ShardedEngine::new(transports).unwrap();
    for spec in &specs {
        engine.add_session(spec.clone());
    }
    let run = engine.run().unwrap();
    assert_matches_oracle(&run.outcomes, &oracle);
    // The WAN wrapper accounted virtual costs on every shard that sent.
    for transport in engine.transports() {
        let stats = transport.stats();
        assert!(stats.messages > 0);
        assert!(stats.virtual_seconds > 0.0);
    }
}

/// The acceptance-criterion test: ≥ 4 concurrent sessions across ≥ 2
/// shards over **loopback TCP** — every envelope leaves the process
/// through the kernel's TCP stack, crosses the frame router (wire format
/// per `docs/WIRE_FORMAT.md`) and comes back — with results identical to
/// the single-threaded `SessionEngine`.
#[test]
fn sharded_sessions_over_loopback_tcp_match_the_single_threaded_engine() {
    let specs = mixed_specs();
    let oracle = oracle_outcomes(&specs);

    let (mut router, addr) = TcpRouter::spawn("127.0.0.1:0").unwrap();
    let parties: Vec<PartyId> = (0..HOLDERS)
        .map(PartyId::DataHolder)
        .chain([PartyId::ThirdParty])
        .collect();
    let transports: Vec<TcpTransport> = (0..2)
        .map(|_| {
            let transport = TcpTransport::new(parties.iter().copied());
            let announced = transport.connect(addr, &Backoff::default()).unwrap();
            assert!(announced.is_empty(), "the router announces no parties");
            transport
        })
        .collect();

    let mut engine = ShardedEngine::new(transports).unwrap();
    for spec in &specs {
        engine.add_session(spec.clone());
    }
    // Loopback frames round-trip through the kernel; give stalls a real
    // timeout budget rather than the in-memory default.
    engine.set_stall_budget(Duration::from_millis(100), 100);
    let run = engine.run().unwrap();

    assert_matches_oracle(&run.outcomes, &oracle);
    assert_eq!(run.shards.len(), 2);
    for stats in &run.shards {
        assert_eq!(stats.sessions.len(), 3);
        assert!(stats.messages_sent > 0);
    }
    assert_eq!(router.unroutable_frames(), 0, "every frame found its party");
    assert_eq!(router.connection_count(), 2);

    for transport in engine.transports() {
        transport.shutdown();
    }
    router.shutdown();
}

#[cfg(unix)]
#[test]
fn sharded_sessions_over_unix_domain_sockets_match_the_oracle() {
    use ppclust::net::{UdsRouter, UdsTransport};

    let specs = vec![
        bird_flu_spec(301, Some(2), NumericMode::Batch),
        bird_flu_spec(302, None, NumericMode::Batch),
        bird_flu_spec(303, Some(2), NumericMode::Batch),
        bird_flu_spec(304, Some(1), NumericMode::Batch),
    ];
    let oracle = oracle_outcomes(&specs);

    let dir = std::env::temp_dir().join(format!("ppc-sharded-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("engine.sock");
    let mut router = UdsRouter::spawn(&path).unwrap();

    let parties: Vec<PartyId> = (0..HOLDERS)
        .map(PartyId::DataHolder)
        .chain([PartyId::ThirdParty])
        .collect();
    let transports: Vec<UdsTransport> = (0..2)
        .map(|_| {
            let transport = UdsTransport::new(parties.iter().copied());
            transport.connect(&path, &Backoff::default()).unwrap();
            transport
        })
        .collect();

    let mut engine = ShardedEngine::new(transports).unwrap();
    for spec in &specs {
        engine.add_session(spec.clone());
    }
    engine.set_stall_budget(Duration::from_millis(100), 100);
    let run = engine.run().unwrap();
    assert_matches_oracle(&run.outcomes, &oracle);

    for transport in engine.transports() {
        transport.shutdown();
    }
    router.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// One shard is the degenerate case: the sharded engine over a single
/// transport must agree with `SessionEngine` multiplexing the same
/// sessions (both use `s{id}/` prefixes when more than one session runs).
#[test]
fn one_shard_degenerates_to_the_multiplexing_engine() {
    let specs: Vec<SessionSpec> = (0..4)
        .map(|i| bird_flu_spec(400 + i, Some(2), NumericMode::Batch))
        .collect();

    let mut multiplexed = SessionEngine::new(Network::with_parties(HOLDERS));
    for spec in &specs {
        multiplexed.add_session(spec.clone());
    }
    let reference = multiplexed.run().unwrap();

    let mut engine = ShardedEngine::new(vec![Network::with_parties(HOLDERS)]).unwrap();
    for spec in &specs {
        engine.add_session(spec.clone());
    }
    let run = engine.run().unwrap();
    assert_matches_oracle(&run.outcomes, &reference);
}

/// When a remote party dies for good mid-run, the sharded engine must
/// surface a `PeerUnreachable` error *naming the unreachable party* —
/// distinguishable from a generic protocol stall — once the socket layer's
/// reconnect backoff is exhausted.
#[test]
fn a_dead_peer_is_reported_as_unreachable_not_as_a_stall() {
    use ppclust::core::error::CoreError;
    use ppclust::net::{NetError, TcpAcceptor};

    // The shard registers every party locally (the sharded engine drives
    // whole sessions) but holds a direct TCP link to a peer announcing the
    // third party — announced routes win over local delivery, so all
    // TP-bound traffic crosses the link.
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
    let addr = acceptor.local_addr().unwrap();
    let shard_parties: Vec<PartyId> = (0..HOLDERS)
        .map(PartyId::DataHolder)
        .chain([PartyId::ThirdParty])
        .collect();
    let mut shard = TcpTransport::new(shard_parties);
    shard.set_reconnect_policy(Backoff {
        initial: Duration::from_millis(1),
        max_delay: Duration::from_millis(2),
        max_attempts: 2,
    });
    let tp_side = TcpTransport::new([PartyId::ThirdParty]);
    let dial = std::thread::spawn(move || {
        shard.connect(addr, &Backoff::default()).unwrap();
        shard
    });
    acceptor.accept_into(&tp_side).unwrap();
    let shard = dial.join().unwrap();

    // The third party dies before the session starts and never comes back.
    tp_side.shutdown();
    drop(tp_side);
    drop(acceptor);

    let mut engine = ShardedEngine::new(vec![shard]).unwrap();
    engine.add_session(bird_flu_spec(500, Some(2), NumericMode::Batch));
    engine.set_stall_budget(Duration::from_millis(20), 20);
    match engine.run() {
        Err(CoreError::Net(NetError::PeerUnreachable { party, .. })) => {
            assert_eq!(party, PartyId::ThirdParty);
        }
        other => panic!("expected a PeerUnreachable error, got {other:?}"),
    }
    for transport in engine.transports() {
        transport.shutdown();
    }
}
