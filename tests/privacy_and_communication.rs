//! Integration tests for the privacy analysis (eavesdropping, frequency
//! attack, channel security) and the measured communication-cost claims.

use ppclust::cluster::Linkage;
use ppclust::core::privacy::{eavesdrop_initiator_link, frequency_attack_on_batch_column};
use ppclust::core::protocol::driver::ClusteringRequest;
use ppclust::core::protocol::party::TrustedSetup;
use ppclust::core::protocol::session::ClusteringSession;
use ppclust::core::protocol::{numeric, NumericMode, ProtocolConfig};
use ppclust::crypto::prng::DynStreamRng;
use ppclust::crypto::{PairwiseSeeds, RngAlgorithm, Seed};
use ppclust::data::Workload;
use ppclust::net::{ChannelSecurity, Network, PartyId};

fn run_networked(
    workload: &Workload,
    config: ProtocolConfig,
    network: Option<Network>,
) -> ppclust::core::protocol::session::SessionOutcome {
    let schema = workload.schema().clone();
    let setup =
        TrustedSetup::deterministic(workload.partitions.clone(), &Seed::from_u64(0xFEED)).unwrap();
    let session = match network {
        Some(network) => ClusteringSession::with_network(schema.clone(), config, network),
        None => ClusteringSession::new(schema.clone(), config, workload.partitions.len()),
    };
    let request = ClusteringRequest {
        weights: schema.uniform_weights(),
        linkage: Linkage::Average,
        num_clusters: workload.num_clusters().max(2),
    };
    session
        .run(&setup.holders, &setup.third_party, &request)
        .unwrap()
}

#[test]
fn secured_channels_leak_nothing_to_the_eavesdropper() {
    let workload = Workload::numeric_only(16, 2, 2, 1).unwrap();
    let outcome = run_networked(&workload, ProtocolConfig::default(), None);
    assert!(outcome.communication.total_bytes() > 0);
    // All channels default to Secured: the eavesdropper capture list is empty.
    // (Network is internal to the session here; re-run with an explicit one.)
    let network = Network::with_parties(2);
    let workload = Workload::numeric_only(16, 2, 2, 1).unwrap();
    let _ = run_networked(&workload, ProtocolConfig::default(), Some(network.clone()));
    assert!(network.eavesdropped().is_empty());
}

#[test]
fn plaintext_channels_expose_masked_traffic_and_enable_the_paper_inference() {
    let workload = Workload::numeric_only(12, 2, 2, 3).unwrap();
    let network = Network::with_parties(2);
    // Leave the DH_0 → DH_1 channel unencrypted, as in the paper's warning.
    network.set_channel_security(
        PartyId::DataHolder(0),
        PartyId::DataHolder(1),
        ChannelSecurity::Plaintext,
    );
    let _ = run_networked(&workload, ProtocolConfig::default(), Some(network.clone()));
    let captured = network.eavesdropped();
    assert!(!captured.is_empty());
    assert!(captured
        .iter()
        .all(|e| e.from == PartyId::DataHolder(0) && e.to == PartyId::DataHolder(1)));
    // The captured payload is the masked vector; together with the rng_JT
    // stream (which the third party has) it narrows each value to two
    // candidates — demonstrated directly on a hand-run protocol below.
    let seeds = PairwiseSeeds::new(Seed::from_u64(1), Seed::from_u64(2));
    let x = 123_456i64;
    let masked = numeric::initiator_mask(&[x], &seeds, RngAlgorithm::ChaCha20);
    let mut rng = DynStreamRng::new(RngAlgorithm::ChaCha20, &seeds.holder_third_party);
    let inference = eavesdrop_initiator_link(masked[0], rng.next_u64());
    assert!(inference.contains(x));
    assert!(inference.candidates().len() <= 2);
}

#[test]
fn frequency_attack_succeeds_on_batch_and_fails_on_per_pair() {
    let algorithm = RngAlgorithm::ChaCha20;
    let seeds = PairwiseSeeds::new(Seed::from_u64(10), Seed::from_u64(20));
    let k_values: Vec<i64> = vec![1, 0, 2, 5, 4, 4, 3, 0, 5, 2, 1, 3];
    let j_values = vec![3i64];

    // Batch mode: the column leaks.
    let masked = numeric::initiator_mask(&j_values, &seeds, algorithm);
    let pairwise = numeric::responder_fold(&masked, &k_values, &seeds.holder_holder, algorithm);
    let column: Vec<i64> = pairwise.iter_rows().map(|r| r[0]).collect();
    let mut rng = DynStreamRng::new(algorithm, &seeds.holder_third_party);
    let mask = rng.next_u64();
    let outcome = frequency_attack_on_batch_column(&column, mask, (0, 5));
    assert!(outcome.contains_truth(&k_values));
    assert!(outcome.consistent_candidates <= 4);

    // Per-pair mode: the same attack recovers nothing.
    let masked = numeric::initiator_mask_per_pair(&j_values, k_values.len(), &seeds, algorithm);
    let pairwise =
        numeric::responder_fold_per_pair(&masked, &k_values, &seeds.holder_holder, algorithm)
            .unwrap();
    let column: Vec<i64> = pairwise.iter_rows().map(|r| r[0]).collect();
    let mut rng = DynStreamRng::new(algorithm, &seeds.holder_third_party);
    let mask = rng.next_u64();
    let outcome = frequency_attack_on_batch_column(&column, mask, (0, 5));
    assert!(!outcome.contains_truth(&k_values));
}

#[test]
fn numeric_cost_scales_quadratically_per_site_as_the_paper_claims() {
    let bytes_for = |objects: usize| {
        let workload = Workload::numeric_only(objects, 2, 2, 4).unwrap();
        let outcome = run_networked(&workload, ProtocolConfig::default(), None);
        (
            outcome.communication.bytes_sent_by(PartyId::DataHolder(0)),
            outcome.communication.bytes_sent_by(PartyId::DataHolder(1)),
        )
    };
    let (j_small, k_small) = bytes_for(64);
    let (j_large, k_large) = bytes_for(256); // 4× the objects per site
                                             // O(n²) dominated: 4× objects ⇒ ~16× bytes; allow generous slack for the
                                             // O(n) and framing terms.
    let j_ratio = j_large as f64 / j_small as f64;
    let k_ratio = k_large as f64 / k_small as f64;
    assert!(j_ratio > 8.0 && j_ratio < 24.0, "DH_J ratio {j_ratio}");
    assert!(k_ratio > 8.0 && k_ratio < 24.0, "DH_K ratio {k_ratio}");
}

#[test]
fn per_pair_mode_multiplies_initiator_traffic_but_not_results() {
    let workload = Workload::numeric_only(64, 2, 2, 6).unwrap();
    let batch = run_networked(&workload, ProtocolConfig::default(), None);
    let per_pair = run_networked(
        &workload,
        ProtocolConfig {
            numeric_mode: NumericMode::PerPair,
            ..ProtocolConfig::default()
        },
        None,
    );
    assert_eq!(batch.result.clusters, per_pair.result.clusters);
    let link = |o: &ppclust::core::protocol::session::SessionOutcome| {
        o.communication
            .bytes_on_link(PartyId::DataHolder(0), PartyId::DataHolder(1))
    };
    // The initiator ships ~m copies of its masked column instead of one.
    assert!(link(&per_pair) > 10 * link(&batch));
}

#[test]
fn categorical_traffic_is_linear_in_the_number_of_objects() {
    let bytes_for = |objects: usize| {
        let workload = Workload::customer_segmentation(objects, 2, 3, 9).unwrap();
        let outcome = run_networked(&workload, ProtocolConfig::default(), None);
        outcome.communication.total_bytes()
    };
    // Total traffic includes quadratic numeric terms, so isolate the
    // categorical share by encoding columns directly.
    let key = ppclust::crypto::Prf128::new(&[3u8; 32]);
    let column_bytes = |objects: usize| {
        let workload = Workload::customer_segmentation(objects, 2, 3, 9).unwrap();
        let column = workload.partitions[0]
            .matrix()
            .categorical_column(2)
            .unwrap();
        let encrypted = ppclust::core::protocol::categorical::encrypt_column(&column, &key);
        ppclust::core::protocol::messages::EncryptedColumnMsg {
            attribute: "region".into(),
            tags: encrypted.tags.iter().map(|t| t.to_bytes()).collect(),
        }
        .encode()
        .len() as f64
            / column.len() as f64
    };
    let per_object_small = column_bytes(64);
    let per_object_large = column_bytes(512);
    assert!((per_object_small - per_object_large).abs() < 1.0);
    // And the full session still grows monotonically.
    assert!(bytes_for(96) > bytes_for(32));
}
