//! Integration tests that pin the library to the paper's own worked
//! examples: Figure 3 (numeric), Figure 7 (alphanumeric) and the Figure 13
//! published-result format.

use ppclust::cluster::Linkage;
use ppclust::core::protocol::driver::{ClusteringRequest, ThirdPartyDriver};
use ppclust::core::protocol::party::TrustedSetup;
use ppclust::core::protocol::{alphanumeric, numeric, ProtocolConfig};
use ppclust::core::{
    Alphabet, AttributeDescriptor, AttributeValue, DataMatrix, HorizontalPartition, Record, Schema,
};
use ppclust::crypto::{Negator, NumericMasker, PairwiseSeeds, RngAlgorithm, Seed};

/// Figure 3: x = 3 at DH_J, y = 8 at DH_K, R_JK = 5, R_JT = 7.
#[test]
fn figure3_numeric_worked_example() {
    let negator = Negator::from_random(5);
    assert_eq!(negator, Negator::HolderJ); // odd ⇒ DH_J negates
    let x_masked = NumericMasker::mask_initiator(3, 7, negator);
    assert_eq!(x_masked, 4);
    let m = NumericMasker::fold_responder(x_masked, 8, negator);
    assert_eq!(m, 12);
    assert_eq!(NumericMasker::unmask_distance(m, 7), 5);
}

/// The same Figure 3 comparison through the full batch protocol with real
/// pseudo-random streams: the third party still recovers |3 − 8| = 5 and
/// the intermediate values look nothing like the inputs.
#[test]
fn figure3_through_full_protocol() {
    for algorithm in [RngAlgorithm::ChaCha20, RngAlgorithm::Xoshiro256PlusPlus] {
        let seeds = PairwiseSeeds::new(Seed::from_u64(5), Seed::from_u64(7));
        let masked = numeric::initiator_mask(&[3], &seeds, algorithm);
        assert_ne!(masked[0], 3);
        let pairwise = numeric::responder_fold(&masked, &[8], &seeds.holder_holder, algorithm);
        let distances =
            numeric::third_party_unmask(&pairwise, &seeds.holder_third_party, algorithm);
        assert_eq!(distances.values(), &[5]);
    }
}

/// Figure 7: S = "abc" at DH_J, T = "bd" at DH_K over the alphabet
/// {a, b, c, d}; the third party reconstructs the CCM and the edit distance.
#[test]
fn figure7_alphanumeric_worked_example() {
    let alphabet = Alphabet::abcd();
    let seeds = PairwiseSeeds::new(Seed::from_u64(1), Seed::from_u64(3));
    let s = vec![alphabet.encode("abc").unwrap()];
    let t = vec![alphabet.encode("bd").unwrap()];
    let masked =
        alphanumeric::initiator_mask_strings(&s, alphabet.size(), &seeds, RngAlgorithm::ChaCha20)
            .unwrap();
    // The masked string stays inside the alphabet (the modular masking the
    // paper relies on) but differs from the plaintext.
    assert!(masked[0].iter().all(|&c| c < 4));
    let bundle = alphanumeric::responder_build_bundle(&masked, &t, alphabet.size()).unwrap();
    let distances = alphanumeric::third_party_edit_distances(
        &bundle,
        alphabet.size(),
        &seeds.holder_third_party,
        RngAlgorithm::ChaCha20,
    )
    .unwrap();
    assert_eq!(distances.values(), &[2]); // edit("abc", "bd") = 2
}

/// Figure 13: the published result is a per-cluster list of site-qualified
/// object ids (A1, B4, C3, ...), nothing else.
#[test]
fn figure13_published_result_format() {
    let schema = Schema::new(vec![
        AttributeDescriptor::numeric("age"),
        AttributeDescriptor::categorical("blood"),
    ])
    .unwrap();
    let rows = |values: &[(f64, &str)]| -> DataMatrix {
        DataMatrix::with_rows(
            schema.clone(),
            values
                .iter()
                .map(|(age, blood)| {
                    Record::new(vec![
                        AttributeValue::numeric(*age),
                        AttributeValue::categorical(*blood),
                    ])
                })
                .collect(),
        )
        .unwrap()
    };
    let partitions = vec![
        HorizontalPartition::new(0, rows(&[(20.0, "A"), (21.0, "A"), (60.0, "B")])),
        HorizontalPartition::new(
            1,
            rows(&[(22.0, "A"), (61.0, "B"), (62.0, "B"), (59.0, "B")]),
        ),
        HorizontalPartition::new(2, rows(&[(19.0, "A"), (63.0, "B"), (23.0, "A")])),
    ];
    let setup = TrustedSetup::deterministic(partitions, &Seed::from_u64(8)).unwrap();
    let driver = ThirdPartyDriver::new(schema.clone(), ProtocolConfig::default());
    let output = driver
        .construct(&setup.holders, &setup.third_party)
        .unwrap();
    let (result, _) = driver
        .cluster(
            &output,
            &ClusteringRequest {
                weights: schema.uniform_weights(),
                linkage: Linkage::Average,
                num_clusters: 2,
            },
        )
        .unwrap();
    let rendered = result.to_string();
    assert!(rendered.contains("Cluster1"));
    assert!(rendered.contains("Cluster2"));
    // Site-qualified labels from all three sites appear.
    for label in ["A1", "B1", "C1"] {
        assert!(rendered.contains(label), "missing {label} in:\n{rendered}");
    }
    // The young group and the old group are separated, across sites.
    let young = result
        .cluster_of(ppclust::core::ObjectId::new(0, 0))
        .unwrap();
    assert_eq!(
        result.cluster_of(ppclust::core::ObjectId::new(1, 0)),
        Some(young)
    );
    assert_eq!(
        result.cluster_of(ppclust::core::ObjectId::new(2, 0)),
        Some(young)
    );
    assert_eq!(
        result.cluster_of(ppclust::core::ObjectId::new(2, 2)),
        Some(young)
    );
    let old = result
        .cluster_of(ppclust::core::ObjectId::new(0, 2))
        .unwrap();
    assert_ne!(young, old);
    assert_eq!(
        result.cluster_of(ppclust::core::ObjectId::new(1, 1)),
        Some(old)
    );
    // Exactly the ten objects are published, each once.
    assert_eq!(result.num_objects(), 10);
}
