//! Integration tests for the transport-abstracted protocol engine:
//! golden-trace byte identity, engine/driver result equality, concurrent
//! multi-session scheduling with bounded buffering, and alternative
//! transports.

use ppclust::cluster::Linkage;
use ppclust::core::alphabet::Alphabet;
use ppclust::core::matrix::{DataMatrix, HorizontalPartition};
use ppclust::core::protocol::driver::{ClusteringRequest, ThirdPartyDriver};
use ppclust::core::protocol::engine::{SessionEngine, SessionSpec};
use ppclust::core::protocol::party::TrustedSetup;
use ppclust::core::protocol::session::ClusteringSession;
use ppclust::core::protocol::{NumericMode, ProtocolConfig};
use ppclust::core::record::Record;
use ppclust::core::schema::{AttributeDescriptor, Schema};
use ppclust::core::value::AttributeValue;
use ppclust::crypto::Seed;
use ppclust::data::Workload;
use ppclust::net::{
    ChannelSecurity, Envelope, Network, PartyId, SimulatedWan, WanProfile, WireReader,
};

fn schema() -> Schema {
    Schema::new(vec![
        AttributeDescriptor::numeric("age"),
        AttributeDescriptor::categorical("blood"),
        AttributeDescriptor::alphanumeric("dna", Alphabet::dna()),
    ])
    .unwrap()
}

fn record(age: f64, blood: &str, dna: &str) -> Record {
    Record::new(vec![
        AttributeValue::numeric(age),
        AttributeValue::categorical(blood),
        AttributeValue::alphanumeric(dna),
    ])
}

/// The exact setup the golden trace fixture was captured with.
fn golden_setup() -> TrustedSetup {
    let rows_a = vec![record(30.0, "A", "acgt"), record(31.0, "A", "acga")];
    let rows_b = vec![record(65.0, "B", "ttcg"), record(29.5, "A", "acgt")];
    let rows_c = vec![record(66.0, "B", "ttgg")];
    let partitions = vec![
        HorizontalPartition::new(0, DataMatrix::with_rows(schema(), rows_a).unwrap()),
        HorizontalPartition::new(1, DataMatrix::with_rows(schema(), rows_b).unwrap()),
        HorizontalPartition::new(2, DataMatrix::with_rows(schema(), rows_c).unwrap()),
    ];
    TrustedSetup::deterministic(partitions, &Seed::from_u64(77)).unwrap()
}

fn all_plaintext_network(holders: u32) -> Network {
    let network = Network::with_parties(holders);
    let mut parties: Vec<PartyId> = (0..holders).map(PartyId::DataHolder).collect();
    parties.push(PartyId::ThirdParty);
    for (i, &a) in parties.iter().enumerate() {
        for &b in parties.iter().skip(i + 1) {
            network.set_channel_security(a, b, ChannelSecurity::Plaintext);
        }
    }
    network
}

fn decode_golden_fixture(bytes: &[u8]) -> Vec<Envelope> {
    let decode_party = |code: u32| -> PartyId {
        if code == u32::MAX {
            PartyId::ThirdParty
        } else {
            PartyId::DataHolder(code)
        }
    };
    let mut r = WireReader::new(bytes);
    let count = r.get_u32().unwrap() as usize;
    let mut envelopes = Vec::with_capacity(count);
    for _ in 0..count {
        let from = decode_party(r.get_u32().unwrap());
        let to = decode_party(r.get_u32().unwrap());
        let topic = r.get_str().unwrap();
        let payload = r.get_bytes().unwrap();
        envelopes.push(Envelope {
            from,
            to,
            topic,
            payload,
        });
    }
    r.expect_end().unwrap();
    envelopes
}

/// The refactored, state-machine-driven session must emit **byte-identical
/// envelopes in identical order** to the pre-refactor monolithic session,
/// whose trace was captured into the committed fixture before the refactor.
///
/// The message layouts and topics this fixture pins down are specified
/// normatively in `docs/WIRE_FORMAT.md`. If this test fails because of a
/// *deliberate* wire change, re-capture the fixture, bump `WIRE_VERSION`
/// in `ppc-net::socket`, and update `docs/WIRE_FORMAT.md` in the same PR.
#[test]
fn session_trace_is_byte_identical_to_the_pre_refactor_fixture() {
    let fixture = std::fs::read(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/golden_trace_seed77.bin"
    ))
    .expect("golden trace fixture present");
    let golden = decode_golden_fixture(&fixture);
    assert_eq!(golden.len(), 27, "fixture shape");

    let setup = golden_setup();
    let request = ClusteringRequest::uniform(&schema(), 2);
    let network = all_plaintext_network(3);
    let session = ClusteringSession::with_network(schema(), ProtocolConfig::default(), network);
    session
        .run(&setup.holders, &setup.third_party, &request)
        .unwrap();
    let trace = session.network().eavesdropped();

    assert_eq!(trace.len(), golden.len(), "envelope count");
    for (i, (observed, expected)) in trace.iter().zip(&golden).enumerate() {
        assert_eq!(
            observed, expected,
            "envelope #{i} diverged from the fixture"
        );
    }
}

/// A single-session engine over the default in-memory transport sends the
/// same envelopes as the sequential session — byte-identical payloads and
/// topics (the concurrent scheduler may interleave independent links
/// differently, so equality is as a multiset plus per-link order).
#[test]
fn single_session_engine_envelopes_match_the_oracle_session() {
    let setup = golden_setup();
    let request = ClusteringRequest::uniform(&schema(), 2);

    let session_network = all_plaintext_network(3);
    let session =
        ClusteringSession::with_network(schema(), ProtocolConfig::default(), session_network);
    let outcome = session
        .run(&setup.holders, &setup.third_party, &request)
        .unwrap();
    let mut session_trace = session.network().eavesdropped();

    let engine_network = all_plaintext_network(3);
    let mut engine = SessionEngine::new(engine_network.clone());
    engine.add_session(SessionSpec {
        schema: schema(),
        config: ProtocolConfig::default(),
        holders: setup.holders.clone(),
        keys: setup.third_party.clone(),
        request: request.clone(),
        chunk_rows: None,
    });
    let engine_outcome = &engine.run().unwrap()[0];
    let mut engine_trace = engine_network.eavesdropped();

    assert_eq!(outcome.result.clusters, engine_outcome.result.clusters);
    assert_eq!(session_trace.len(), engine_trace.len());
    // Per-stream order must agree exactly (a stream is one (from, to,
    // topic) triple; chunked transfers rely on this FIFO). The global
    // interleaving across independent streams may differ — the engine
    // schedules round-robin, the session sequentially.
    let key = |e: &Envelope| (e.from, e.to, e.topic.clone());
    let streams: std::collections::BTreeSet<_> = session_trace.iter().map(&key).collect();
    for stream in streams {
        let a: Vec<&Envelope> = session_trace.iter().filter(|e| key(e) == stream).collect();
        let b: Vec<&Envelope> = engine_trace.iter().filter(|e| key(e) == stream).collect();
        assert_eq!(a, b, "stream {stream:?} diverges");
    }
    // And globally the two traces carry exactly the same envelopes.
    let sort = |t: &mut Vec<Envelope>| {
        t.sort_by(|a, b| {
            (a.from, a.to, &a.topic, &a.payload).cmp(&(b.from, b.to, &b.topic, &b.payload))
        })
    };
    sort(&mut session_trace);
    sort(&mut engine_trace);
    assert_eq!(session_trace, engine_trace);
}

fn bird_flu_spec(seed: u64, chunk_rows: Option<usize>, mode: NumericMode) -> SessionSpec {
    let workload = Workload::bird_flu(18, 3, 3, seed).unwrap();
    let schema = workload.schema().clone();
    let setup =
        TrustedSetup::deterministic(workload.partitions.clone(), &Seed::from_u64(seed)).unwrap();
    SessionSpec {
        schema: schema.clone(),
        config: ProtocolConfig {
            numeric_mode: mode,
            ..ProtocolConfig::default()
        },
        holders: setup.holders,
        keys: setup.third_party,
        request: ClusteringRequest {
            weights: schema.uniform_weights(),
            linkage: Linkage::Average,
            num_clusters: 3,
        },
        chunk_rows,
    }
}

fn driver_reference(spec: &SessionSpec) -> ppclust::core::ClusteringResult {
    let driver = ThirdPartyDriver::new(spec.schema.clone(), spec.config);
    let output = driver.construct(&spec.holders, &spec.keys).unwrap();
    driver.cluster(&output, &spec.request).unwrap().0
}

/// Eight concurrent sessions over one transport, all chunked: every one
/// completes with the driver's exact result and per-session peak buffering
/// bounded by the configured window.
#[test]
fn eight_concurrent_chunked_sessions_complete_with_bounded_buffering() {
    const WINDOW: usize = 2;
    let mut engine = SessionEngine::new(Network::with_parties(3));
    let specs: Vec<SessionSpec> = (0..8)
        .map(|i| bird_flu_spec(100 + i as u64, Some(WINDOW), NumericMode::Batch))
        .collect();
    for spec in &specs {
        engine.add_session(spec.clone());
    }
    let outcomes = engine.run().unwrap();
    assert_eq!(outcomes.len(), 8);
    for (i, (outcome, spec)) in outcomes.iter().zip(&specs).enumerate() {
        let reference = driver_reference(spec);
        assert_eq!(outcome.result.clusters, reference.clusters, "session {i}");
        assert!(
            outcome.stats.peak_buffered_rows <= WINDOW,
            "session {i} buffered {} rows, window is {WINDOW}",
            outcome.stats.peak_buffered_rows
        );
    }
    // The same workload whole-matrix buffers more than the window.
    let mut whole = SessionEngine::new(Network::with_parties(3));
    whole.add_session(bird_flu_spec(100, None, NumericMode::Batch));
    let whole_outcome = &whole.run().unwrap()[0];
    assert!(whole_outcome.stats.peak_buffered_rows > WINDOW);
    assert_eq!(
        whole_outcome.result.clusters, outcomes[0].result.clusters,
        "chunking must not change results"
    );
}

/// The hardened per-pair numeric mode streams its masked copies in windows
/// too: initiator, responder and third party all stay within the window.
#[test]
fn per_pair_mode_streams_masked_copies_within_the_window() {
    const WINDOW: usize = 1;
    let spec = bird_flu_spec(55, Some(WINDOW), NumericMode::PerPair);
    let reference = driver_reference(&spec);
    let mut engine = SessionEngine::new(Network::with_parties(3));
    engine.add_session(spec);
    let outcome = &engine.run().unwrap()[0];
    assert_eq!(outcome.result.clusters, reference.clusters);
    assert_eq!(outcome.stats.peak_buffered_rows, WINDOW);
}

/// The engine runs unchanged over a simulated WAN wrapping the in-memory
/// network: delivery semantics identical, virtual costs accounted.
#[test]
fn engine_over_simulated_wan_accounts_costs_without_changing_results() {
    let spec = bird_flu_spec(7, Some(3), NumericMode::Batch);
    let reference = driver_reference(&spec);
    let profile = WanProfile {
        loss_probability: 0.10,
        ..WanProfile::lossy_dsl()
    };
    let wan = SimulatedWan::new(Network::with_parties(3), profile, 99).unwrap();
    let mut engine = SessionEngine::new(wan);
    engine.add_session(spec);
    let outcomes = engine.run().unwrap();
    assert_eq!(outcomes[0].result.clusters, reference.clusters);
    let stats = engine.transport().stats();
    assert!(stats.messages > 0);
    assert!(stats.virtual_seconds > 0.0);
    assert!(
        stats.retransmissions() > 0,
        "1% loss over {} messages should retransmit",
        stats.messages
    );
}
