//! Customer segmentation across four retailers with mixed attribute types,
//! per-holder weight vectors and a comparison of hierarchical linkages —
//! the "every data holder can impose a different weight vector and
//! clustering algorithm of his own choice" part of §3/§5.
//!
//! ```text
//! cargo run --release --example multi_site_segmentation
//! ```

use ppclust::cluster::agreement::adjusted_rand_index;
use ppclust::cluster::{ClusterAssignment, Linkage};
use ppclust::core::protocol::driver::{ClusteringRequest, ThirdPartyDriver};
use ppclust::core::protocol::party::TrustedSetup;
use ppclust::core::protocol::ProtocolConfig;
use ppclust::core::WeightVector;
use ppclust::crypto::Seed;
use ppclust::data::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::customer_segmentation(48, 4, 4, 5)?;
    let schema = workload.schema().clone();
    println!(
        "{} customers across {} retailers; site sizes: {:?}",
        workload.len(),
        workload.partitions.len(),
        workload
            .partitions
            .iter()
            .map(|p| p.len())
            .collect::<Vec<_>>()
    );

    let setup = TrustedSetup::deterministic(workload.partitions.clone(), &Seed::from_u64(3))?;
    let driver = ThirdPartyDriver::new(schema.clone(), ProtocolConfig::default());
    let output = driver.construct(&setup.holders, &setup.third_party)?;
    let truth = ClusterAssignment::from_labels(&workload.ground_truth_in_site_order());

    // Each holder may request different weights / linkages; the third party
    // can serve all of them from the same per-attribute matrices without any
    // further protocol runs.
    let weight_choices = [
        ("uniform weights", schema.uniform_weights()),
        ("spend-heavy", WeightVector::new(vec![0.7, 0.2, 0.1])?),
        (
            "behaviour-only (ignore region)",
            WeightVector::new(vec![0.5, 0.5, 0.0])?,
        ),
    ];
    let linkages = [
        Linkage::Single,
        Linkage::Average,
        Linkage::Complete,
        Linkage::Ward,
    ];

    println!();
    println!(
        "{:<34} {:<10} {:>12} {:>12}",
        "weights", "linkage", "ARI(truth)", "scatter"
    );
    for (weight_name, weights) in &weight_choices {
        for &linkage in &linkages {
            let request = ClusteringRequest {
                weights: weights.clone(),
                linkage,
                num_clusters: 4,
            };
            let (result, matrix) = driver.cluster(&output, &request)?;
            let mut labels = vec![0usize; workload.len()];
            for (cluster, members) in result.clusters.iter().enumerate() {
                for id in members {
                    labels[matrix.index().global_index(*id)?] = cluster;
                }
            }
            let published = ClusterAssignment::from_labels(&labels);
            println!(
                "{:<34} {:<10} {:>12.3} {:>12.5}",
                weight_name,
                format!("{linkage:?}"),
                adjusted_rand_index(&published, &truth)?,
                result.average_within_cluster_squared_distance
            );
        }
    }
    println!();
    println!("the dissimilarity matrices were built exactly once, under the privacy protocol;");
    println!("every (weights, linkage) combination is served locally by the third party.");
    Ok(())
}
