//! Executable version of the paper's privacy discussion (§4.1):
//! what an eavesdropper learns on unsecured channels, how the batch-mode
//! frequency-analysis attack works, and how per-pair masking defeats it.
//!
//! ```text
//! cargo run --example attack_analysis
//! ```

use ppclust::core::privacy::{
    eavesdrop_initiator_link, eavesdrop_responder_link, frequency_attack_on_batch_column,
};
use ppclust::core::protocol::numeric;
use ppclust::crypto::prng::DynStreamRng;
use ppclust::crypto::{PairwiseSeeds, RngAlgorithm, Seed};

fn main() {
    let algorithm = RngAlgorithm::ChaCha20;
    let seeds = PairwiseSeeds::new(Seed::from_u64(5), Seed::from_u64(7));

    // --- Eavesdropping on plaintext channels -----------------------------
    println!("== eavesdropping (why the channels must be secured) ==");
    let x = 42_000i64; // DH_J's private value
    let y = 13_500i64; // DH_K's private value
    let masked = numeric::initiator_mask(&[x], &seeds, algorithm);
    let pairwise = numeric::responder_fold(&masked, &[y], &seeds.holder_holder, algorithm);
    let mut rng_jt = DynStreamRng::new(algorithm, &seeds.holder_third_party);
    let r = rng_jt.next_u64();

    let tp_view = eavesdrop_initiator_link(masked[0], r);
    println!(
        "TP listening on DH_J->DH_K (knows r): x is one of {:?}  (true x = {x})",
        tp_view.candidates()
    );
    let dhj_view = eavesdrop_responder_link(*pairwise.get(0, 0), r, x);
    println!(
        "DH_J listening on DH_K->TP (knows r and x): y is one of {:?}  (true y = {y})",
        dhj_view.candidates()
    );
    println!("with transport encryption (the library default) neither message is observable.");
    println!();

    // --- Frequency-analysis attack on batch mode --------------------------
    println!("== frequency-analysis attack (batch mode, small value range) ==");
    let k_values: Vec<i64> = vec![0, 5, 3, 3, 1, 4, 0, 2]; // e.g. ratings 0..=5
    let j_values = vec![2i64];
    for (label, per_pair) in [("batch mode", false), ("per-pair mode", true)] {
        let (column, mask) = if per_pair {
            let masked =
                numeric::initiator_mask_per_pair(&j_values, k_values.len(), &seeds, algorithm);
            let pairwise = numeric::responder_fold_per_pair(
                &masked,
                &k_values,
                &seeds.holder_holder,
                algorithm,
            )
            .expect("masked copies match the responder column");
            let mut rng = DynStreamRng::new(algorithm, &seeds.holder_third_party);
            (
                pairwise.iter_rows().map(|row| row[0]).collect::<Vec<_>>(),
                rng.next_u64(),
            )
        } else {
            let masked = numeric::initiator_mask(&j_values, &seeds, algorithm);
            let pairwise =
                numeric::responder_fold(&masked, &k_values, &seeds.holder_holder, algorithm);
            let mut rng = DynStreamRng::new(algorithm, &seeds.holder_third_party);
            (
                pairwise.iter_rows().map(|row| row[0]).collect::<Vec<_>>(),
                rng.next_u64(),
            )
        };
        let outcome = frequency_attack_on_batch_column(&column, mask, (0, 5));
        println!(
            "{label:<14}: {} consistent candidate column(s); exact private column recovered: {}",
            outcome.consistent_candidates,
            outcome.contains_truth(&k_values)
        );
        if let Some(first) = outcome.candidates.first() {
            println!("               best candidate: {first:?}   (true column: {k_values:?})");
        }
    }
    println!();
    println!("the paper's mitigation — 'omitting batch processing of inputs and using unique");
    println!("random numbers for each object pair' — removes the leak at O(m·n) extra traffic.");
}
