//! Quickstart: two data holders cluster their joint customers without
//! revealing any attribute values to each other or to the third party.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ppclust::cluster::Linkage;
use ppclust::core::protocol::driver::{ClusteringRequest, ThirdPartyDriver};
use ppclust::core::protocol::party::TrustedSetup;
use ppclust::core::protocol::ProtocolConfig;
use ppclust::core::{
    AttributeDescriptor, AttributeValue, DataMatrix, HorizontalPartition, Record, Schema,
    WeightVector,
};
use ppclust::crypto::Seed;

fn record(age: f64, plan: &str) -> Record {
    Record::new(vec![
        AttributeValue::numeric(age),
        AttributeValue::categorical(plan),
    ])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The agreed attribute list (§3): both holders and the third party
    //    know the schema, never the values.
    let schema = Schema::new(vec![
        AttributeDescriptor::numeric("age"),
        AttributeDescriptor::categorical("plan"),
    ])?;

    // 2. Each data holder owns a horizontal partition.
    let site_a = HorizontalPartition::new(
        0,
        DataMatrix::with_rows(
            schema.clone(),
            vec![
                record(24.0, "basic"),
                record(27.0, "basic"),
                record(61.0, "premium"),
            ],
        )?,
    );
    let site_b = HorizontalPartition::new(
        1,
        DataMatrix::with_rows(
            schema.clone(),
            vec![
                record(25.0, "basic"),
                record(65.0, "premium"),
                record(59.0, "premium"),
            ],
        )?,
    );

    // 3. Trusted setup: pairwise seeds and the shared categorical key.
    let setup = TrustedSetup::deterministic(vec![site_a, site_b], &Seed::from_u64(2024))?;

    // 4. The third party constructs the dissimilarity matrices by running the
    //    comparison protocols, then clusters and publishes membership lists.
    let driver = ThirdPartyDriver::new(schema.clone(), ProtocolConfig::default());
    let output = driver.construct(&setup.holders, &setup.third_party)?;
    let request = ClusteringRequest {
        weights: WeightVector::new(vec![1.0, 1.0])?,
        linkage: Linkage::Average,
        num_clusters: 2,
    };
    let (result, matrix) = driver.cluster(&output, &request)?;

    println!("Published clustering result (Figure 13 format):");
    println!("{result}");
    println!();
    println!(
        "Distance between A1 and B1 (young, basic-plan customers): {:.3}",
        matrix.distance(
            ppclust::core::ObjectId::new(0, 0),
            ppclust::core::ObjectId::new(1, 0)
        )?
    );
    println!(
        "Distance between A1 and B2 (young basic vs old premium):  {:.3}",
        matrix.distance(
            ppclust::core::ObjectId::new(0, 0),
            ppclust::core::ObjectId::new(1, 1)
        )?
    );
    Ok(())
}
