//! Threaded session sharding over loopback TCP: the quickstart for the
//! socket-backed engine tier.
//!
//! ```text
//! cargo run --release --example sharded_tcp
//! ```
//!
//! What happens:
//!
//! * a [`TcpRouter`] binds an ephemeral loopback port and routes frames
//!   between connections by the party each connection announced in its
//!   handshake (wire format: `docs/WIRE_FORMAT.md`);
//! * two shard transports dial it with [`Backoff`] (surviving the startup
//!   race where the router is not listening yet), each hosting all four
//!   parties — so the router reflects every frame back over the kernel's
//!   real TCP stack;
//! * a [`ShardedEngine`] hash-shards six clustering sessions across two
//!   worker threads; idle workers park in condvar-blocking receives until
//!   the socket reader threads deliver the next frame;
//! * every published result is asserted identical to the in-memory
//!   reference driver — sharding and sockets change the plumbing, never
//!   the protocol.

use ppclust::cluster::Linkage;
use ppclust::core::protocol::driver::{ClusteringRequest, ThirdPartyDriver};
use ppclust::core::protocol::engine::SessionSpec;
use ppclust::core::protocol::party::TrustedSetup;
use ppclust::core::protocol::sharded::ShardedEngine;
use ppclust::core::protocol::ProtocolConfig;
use ppclust::crypto::Seed;
use ppclust::data::Workload;
use ppclust::net::{Backoff, PartyId, TcpRouter, TcpTransport};

const SESSIONS: usize = 6;
const SHARDS: usize = 2;
const HOLDERS: u32 = 3;
const CHUNK_ROWS: usize = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Six independent clustering requests between the same three
    // hospitals and one third party.
    let mut specs = Vec::new();
    for i in 0..SESSIONS {
        let workload = Workload::bird_flu(18, HOLDERS, 3, 2000 + i as u64)?;
        let schema = workload.schema().clone();
        let setup =
            TrustedSetup::deterministic(workload.partitions.clone(), &Seed::from_u64(i as u64))?;
        specs.push(SessionSpec {
            schema: schema.clone(),
            config: ProtocolConfig::default(),
            holders: setup.holders,
            keys: setup.third_party,
            request: ClusteringRequest {
                weights: schema.uniform_weights(),
                linkage: Linkage::Average,
                num_clusters: 3,
            },
            chunk_rows: Some(CHUNK_ROWS),
        });
    }

    // The router is the only listener; binding port 0 picks a free port.
    let (mut router, addr) = TcpRouter::spawn("127.0.0.1:0")?;
    println!("frame router listening on {addr}");

    // One TCP connection per shard. Each announces every party, so the
    // router reflects the shard's own traffic back through the kernel.
    let parties: Vec<PartyId> = (0..HOLDERS)
        .map(PartyId::DataHolder)
        .chain([PartyId::ThirdParty])
        .collect();
    let mut transports = Vec::new();
    for shard in 0..SHARDS {
        let transport = TcpTransport::new(parties.iter().copied());
        transport.connect(addr, &Backoff::default())?;
        println!(
            "shard {shard} connected (hosting {} parties)",
            parties.len()
        );
        transports.push(transport);
    }

    let mut engine = ShardedEngine::new(transports)?;
    for spec in &specs {
        engine.add_session(spec.clone());
    }
    engine.set_stall_budget(std::time::Duration::from_millis(100), 100);

    let started = std::time::Instant::now();
    let run = engine.run()?;
    let elapsed = started.elapsed();

    println!("\n=== {SESSIONS} sessions across {SHARDS} shards over loopback TCP ===\n");
    for (i, (outcome, spec)) in run.outcomes.iter().zip(&specs).enumerate() {
        let driver = ThirdPartyDriver::new(spec.schema.clone(), spec.config);
        let reference = driver.construct(&spec.holders, &spec.keys)?;
        let (expected, _) = driver.cluster(&reference, &spec.request)?;
        let matches = expected.clusters == outcome.result.clusters;
        println!(
            "session {i} (shard {}): {} clusters, {} msgs, peak {} buffered rows, \
             matches driver: {matches}",
            i % SHARDS,
            outcome.result.num_clusters(),
            outcome.stats.messages_sent,
            outcome.stats.peak_buffered_rows,
        );
        assert!(matches, "sharded result diverged from the reference driver");
        assert!(outcome.stats.peak_buffered_rows <= CHUNK_ROWS);
    }
    println!();
    for stats in &run.shards {
        println!(
            "shard {}: sessions {:?}, {} rounds, {} blocking waits (parked, no spin), {} msgs",
            stats.shard, stats.sessions, stats.rounds, stats.blocking_waits, stats.messages_sent,
        );
    }
    println!(
        "\nrouter: {} connections, {} unroutable frames",
        router.connection_count(),
        router.unroutable_frames(),
    );
    println!("wall clock: {elapsed:?} (every envelope crossed the kernel's TCP stack twice)");

    for transport in engine.transports() {
        transport.shutdown();
    }
    router.shutdown();
    Ok(())
}
