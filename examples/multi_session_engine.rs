//! Multi-session protocol engine: eight hospitals' clustering requests
//! multiplexed over one simulated WAN with chunked streaming.
//!
//! ```text
//! cargo run --release --example multi_session_engine
//! ```
//!
//! Demonstrates the transport-abstracted stack end to end:
//!
//! * one [`SimulatedWan`] (10 Mbit/s, 50 ms, 1% loss) wrapping the
//!   in-memory [`Network`] carries **all** sessions' traffic;
//! * every session streams its pairwise blocks in 4-row chunks, so no
//!   party ever buffers more than 4 rows of any cross-site block;
//! * the engine schedules sessions round-robin, and each published result
//!   is identical to what the in-memory reference driver computes.

use ppclust::cluster::Linkage;
use ppclust::core::protocol::driver::{ClusteringRequest, ThirdPartyDriver};
use ppclust::core::protocol::engine::{SessionEngine, SessionSpec};
use ppclust::core::protocol::party::TrustedSetup;
use ppclust::core::protocol::ProtocolConfig;
use ppclust::crypto::Seed;
use ppclust::data::Workload;
use ppclust::net::{Network, SimulatedWan, WanProfile};

const SESSIONS: usize = 8;
const CHUNK_ROWS: usize = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Eight independent clustering requests (different synthetic cohorts),
    // all between the same three hospitals and one third party.
    let mut specs = Vec::new();
    for i in 0..SESSIONS {
        let workload = Workload::bird_flu(24, 3, 3, 1000 + i as u64)?;
        let schema = workload.schema().clone();
        let setup =
            TrustedSetup::deterministic(workload.partitions.clone(), &Seed::from_u64(i as u64))?;
        specs.push(SessionSpec {
            schema: schema.clone(),
            config: ProtocolConfig::default(),
            holders: setup.holders,
            keys: setup.third_party,
            request: ClusteringRequest {
                weights: schema.uniform_weights(),
                linkage: Linkage::Average,
                num_clusters: 3,
            },
            chunk_rows: Some(CHUNK_ROWS),
        });
    }

    // One lossy WAN carries everything; losses cost retransmissions on the
    // virtual clock but never reorder or drop protocol state.
    let profile = WanProfile::lossy_dsl();
    let wan = SimulatedWan::new(Network::with_parties(3), profile, 42)?;
    let mut engine = SessionEngine::new(wan);
    for spec in &specs {
        engine.add_session(spec.clone());
    }

    let started = std::time::Instant::now();
    let outcomes = engine.run()?;
    let elapsed = started.elapsed();

    println!("=== {SESSIONS} concurrent sessions over one simulated WAN ===\n");
    for (i, (outcome, spec)) in outcomes.iter().zip(&specs).enumerate() {
        // Verify against the in-memory reference driver.
        let driver = ThirdPartyDriver::new(spec.schema.clone(), spec.config);
        let reference = driver.construct(&spec.holders, &spec.keys)?;
        let (expected, _) = driver.cluster(&reference, &spec.request)?;
        let matches = expected.clusters == outcome.result.clusters;
        println!(
            "session {i}: {} clusters, {} rounds, {} msgs, peak {} buffered rows, \
             matches driver: {matches}",
            outcome.result.num_clusters(),
            outcome.stats.rounds,
            outcome.stats.messages_sent,
            outcome.stats.peak_buffered_rows,
        );
        assert!(matches, "engine result diverged from the reference driver");
        assert!(outcome.stats.peak_buffered_rows <= CHUNK_ROWS);
    }

    let wan_stats = engine.transport().stats();
    println!(
        "\nWAN: {} messages, {} retransmitted, {:.1} KiB on wire, {:.2} virtual seconds \
         ({} kbit/s, {} ms latency, {:.0}% loss)",
        wan_stats.messages,
        wan_stats.retransmissions(),
        wan_stats.bytes_on_wire as f64 / 1024.0,
        wan_stats.virtual_seconds,
        (profile.bandwidth_bytes_per_sec * 8.0 / 1000.0) as u64,
        (profile.latency_sec * 1000.0) as u64,
        profile.loss_probability * 100.0,
    );
    println!("wall clock: {elapsed:?} (simulation only — the WAN clock above is virtual)");
    Ok(())
}
