//! The paper's motivating scenario: several institutions hold DNA sequences
//! of infected individuals and want to cluster strains without pooling the
//! (private) sequences. Runs the full networked protocol and reports both
//! the clustering and the communication bill.
//!
//! ```text
//! cargo run --release --example bird_flu_dna
//! ```

use ppclust::cluster::agreement::adjusted_rand_index;
use ppclust::cluster::{ClusterAssignment, Linkage};
use ppclust::core::protocol::driver::ClusteringRequest;
use ppclust::core::protocol::party::TrustedSetup;
use ppclust::core::protocol::session::ClusteringSession;
use ppclust::core::protocol::ProtocolConfig;
use ppclust::crypto::Seed;
use ppclust::data::Workload;
use ppclust::net::{CostModel, PartyId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three hospitals, 36 patients, 3 circulating strains.
    let workload = Workload::bird_flu(36, 3, 3, 7)?;
    let schema = workload.schema().clone();
    println!(
        "workload: {} — {} patients across {} institutions, attributes: {:?}",
        workload.name,
        workload.len(),
        workload.partitions.len(),
        schema
            .attributes()
            .iter()
            .map(|a| a.name.clone())
            .collect::<Vec<_>>()
    );

    // Dealer-free setup: every pair of parties agrees on seeds via
    // Diffie–Hellman; the categorical key never reaches the third party.
    let setup = TrustedSetup::via_diffie_hellman(workload.partitions.clone(), &Seed::from_u64(99))?;

    let session = ClusteringSession::new(schema.clone(), ProtocolConfig::default(), 3);
    let request = ClusteringRequest {
        weights: schema.uniform_weights(),
        linkage: Linkage::Average,
        num_clusters: 3,
    };
    let outcome = session.run(&setup.holders, &setup.third_party, &request)?;

    println!();
    println!("Published result:");
    println!("{}", outcome.result);

    // How well did the private clustering recover the true strains?
    let truth = ClusterAssignment::from_labels(&workload.ground_truth_in_site_order());
    let mut labels = vec![0usize; workload.len()];
    for (cluster, members) in outcome.result.clusters.iter().enumerate() {
        for id in members {
            let global = outcome.final_matrix.index().global_index(*id)?;
            labels[global] = cluster;
        }
    }
    let published = ClusterAssignment::from_labels(&labels);
    println!();
    println!(
        "adjusted Rand index vs ground-truth strains: {:.3}",
        adjusted_rand_index(&published, &truth)?
    );

    println!();
    println!("Communication bill:");
    print!("{}", outcome.communication.to_table());
    for (name, model) in [("LAN", CostModel::lan()), ("WAN", CostModel::wan())] {
        println!(
            "estimated transfer time on {name}: {:.3} s",
            model.estimate_seconds(&outcome.communication)
        );
    }
    println!(
        "third party received {} bytes and never saw a single nucleotide.",
        outcome.communication.bytes_received_by(PartyId::ThirdParty)
    );
    Ok(())
}
