//! The per-party engine tier and its session control plane, end to end
//! over loopback TCP — the in-process twin of a real three-process
//! `ppc-party` deployment (see the README quickstart for the actual
//! processes).
//!
//! ```text
//! cargo run --release --example party_control_plane
//! ```
//!
//! What happens:
//!
//! * a [`TcpRouter`] binds an ephemeral loopback port;
//! * three [`PartyEngine`]s — a *coordinating* data holder, a *serving*
//!   data holder and a *serving* third party — each dial the router with a
//!   transport hosting **only their own party**, exactly as three separate
//!   OS processes would;
//! * the serving engines announce readiness on the reserved `ctl/` topic;
//!   the coordinator gathers the roster, announces four sessions
//!   (schema, config, request, chunk window and site sizes all in-band),
//!   and every engine derives its own secrets from the shared master seed
//!   — no secret ever crosses a socket;
//! * each session's published clusters are asserted identical to the
//!   in-memory reference driver, and the third party's final matrix is
//!   compared bit for bit against the oracle through its `ctl/done`
//!   export.

use ppclust::cluster::Linkage;
use ppclust::core::protocol::driver::{ClusteringRequest, ThirdPartyDriver};
use ppclust::core::protocol::party::TrustedSetup;
use ppclust::core::protocol::party_engine::{PartyEngine, PartyOutcome, PartySeat, SessionPlan};
use ppclust::core::protocol::ProtocolConfig;
use ppclust::crypto::Seed;
use ppclust::data::Workload;
use ppclust::net::{Backoff, PartyId, TcpRouter, TcpTransport};

const SESSIONS: usize = 4;
const CHUNK_ROWS: usize = 3;
const MASTER: u64 = 4242;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two hospitals' horizontal partitions of one synthetic dataset.
    let workload = Workload::bird_flu(24, 2, 3, 99)?;
    let schema = workload.schema().clone();
    let master = Seed::from_u64(MASTER);
    let parts = workload.partitions.clone();

    let plan = SessionPlan {
        config: ProtocolConfig::default(),
        request: ClusteringRequest {
            weights: schema.uniform_weights(),
            linkage: Linkage::Average,
            num_clusters: 3,
        },
        chunk_rows: Some(CHUNK_ROWS),
    };

    // Reference: the in-memory driver on the full dataset.
    let setup = TrustedSetup::deterministic(parts.clone(), &master)?;
    let driver = ThirdPartyDriver::new(schema.clone(), plan.config);
    let constructed = driver.construct(&setup.holders, &setup.third_party)?;
    let (reference, reference_matrix) = driver.cluster(&constructed, &plan.request)?;

    // The router is the only listener — every party dials it.
    let (mut router, addr) = TcpRouter::spawn("127.0.0.1:0")?;
    println!("frame router listening on {addr}");

    let connect = |party: PartyId| -> Result<TcpTransport, Box<dyn std::error::Error>> {
        let transport = TcpTransport::new([party]);
        transport.connect(addr, &Backoff::default())?;
        println!("{party} connected");
        Ok(transport)
    };

    let coordinator = PartyEngine::new(
        connect(PartyId::DataHolder(0))?,
        vec![PartySeat::Holder {
            partition: parts[0].clone(),
            master,
        }],
    )?;
    let holder = PartyEngine::new(
        connect(PartyId::DataHolder(1))?,
        vec![PartySeat::Holder {
            partition: parts[1].clone(),
            master,
        }],
    )?;
    let third_party = PartyEngine::new(
        connect(PartyId::ThirdParty)?,
        vec![PartySeat::ThirdParty { master }],
    )?;

    let started = std::time::Instant::now();
    let (report, holder_report, tp_report) = std::thread::scope(|scope| {
        let holder = scope.spawn(|| holder.serve(PartyId::DataHolder(0)));
        let tp = scope.spawn(|| third_party.serve(PartyId::DataHolder(0)));
        let report = coordinator.coordinate(
            schema.clone(),
            [PartyId::DataHolder(1), PartyId::ThirdParty],
            vec![plan.clone(); SESSIONS],
        );
        (report, holder.join().unwrap(), tp.join().unwrap())
    });
    let (report, holder_report, tp_report) = (report?, holder_report?, tp_report?);
    let elapsed = started.elapsed();

    println!("\n=== {SESSIONS} sessions, 3 party engines over loopback TCP ===\n");
    for id in 0..SESSIONS as u64 {
        for row in report.session(id) {
            match &row.outcome {
                PartyOutcome::Holder(published) => {
                    let clusters: Vec<usize> = published.clusters.iter().map(Vec::len).collect();
                    println!(
                        "session {id}: coordinator {} published clusters of sizes {clusters:?}",
                        row.party
                    );
                }
                PartyOutcome::Remote(Some(tp)) => {
                    let reference_bits: Vec<u64> = reference_matrix
                        .matrix()
                        .condensed_values()
                        .iter()
                        .map(|v| v.to_bits())
                        .collect();
                    let got_bits: Vec<u64> = tp.condensed.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(got_bits, reference_bits, "final matrix diverged");
                    println!(
                        "session {id}: remote {} exported a bit-identical final matrix \
                         ({} objects)",
                        row.party, tp.objects
                    );
                }
                PartyOutcome::Remote(None) => {
                    println!("session {id}: remote {} confirmed completion", row.party);
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }
    // Every engine saw every session complete; published clusters match
    // the driver.
    for (label, r) in [
        ("coordinator", &report),
        ("serving holder", &holder_report),
        ("third party", &tp_report),
    ] {
        assert_eq!(r.stats.sessions_completed, SESSIONS, "{label}");
        assert_eq!(r.stats.sessions_failed, 0, "{label}");
        println!(
            "{label}: {} rounds, {} blocking waits, {} messages, peak {} buffered rows",
            r.stats.rounds,
            r.stats.blocking_waits,
            r.stats.messages_sent,
            r.stats.peak_buffered_rows
        );
    }
    for row in tp_report.outcomes.iter() {
        if let PartyOutcome::ThirdParty(outcome) = &row.outcome {
            assert_eq!(outcome.result.clusters, reference.clusters);
        }
    }
    println!(
        "\nall {SESSIONS} sessions match the in-memory driver; wall clock {elapsed:?} \
         (router: {} connections, {} unroutable frames)",
        router.connection_count(),
        router.unroutable_frames()
    );
    router.shutdown();
    Ok(())
}
