//! Privacy-preserving record linkage — one of the "other operations that
//! require pair-wise comparison" the paper lists as applications of the
//! dissimilarity matrix.
//!
//! Two organisations hold overlapping customer lists (noisy name spellings,
//! approximate ages). The third party builds the cross-site dissimilarity
//! matrix with the comparison protocols and reports likely matches without
//! either side revealing its list.
//!
//! ```text
//! cargo run --example record_linkage
//! ```

use ppclust::core::protocol::driver::ThirdPartyDriver;
use ppclust::core::protocol::party::TrustedSetup;
use ppclust::core::protocol::ProtocolConfig;
use ppclust::core::{
    Alphabet, AttributeDescriptor, AttributeValue, DataMatrix, HorizontalPartition, ObjectId,
    Record, Schema, WeightVector,
};
use ppclust::crypto::Seed;

fn person(name: &str, age: f64) -> Record {
    Record::new(vec![
        AttributeValue::alphanumeric(name),
        AttributeValue::numeric(age),
    ])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let alphabet = Alphabet::alphanumeric_lower();
    let schema = Schema::new(vec![
        AttributeDescriptor::alphanumeric("full_name", alphabet),
        AttributeDescriptor::numeric("age"),
    ])?;

    // Organisation A's customer list.
    let org_a = HorizontalPartition::new(
        0,
        DataMatrix::with_rows(
            schema.clone(),
            vec![
                person("maria gonzalez", 34.0),
                person("john smith", 52.0),
                person("ayse yilmaz", 29.0),
                person("wei chen", 41.0),
            ],
        )?,
    );
    // Organisation B's list: two of the same people with typos / age drift,
    // plus unrelated records.
    let org_b = HorizontalPartition::new(
        1,
        DataMatrix::with_rows(
            schema.clone(),
            vec![
                person("maria gonzales", 35.0),
                person("jon smith", 52.0),
                person("paulo oliveira", 47.0),
                person("li na", 23.0),
            ],
        )?,
    );

    let setup = TrustedSetup::deterministic(vec![org_a, org_b], &Seed::from_u64(13))?;
    let driver = ThirdPartyDriver::new(schema.clone(), ProtocolConfig::default());
    let output = driver.construct(&setup.holders, &setup.third_party)?;
    // Weight the name much more heavily than the age.
    let merged = output.merge(&schema, &WeightVector::new(vec![0.8, 0.2])?)?;

    println!("cross-site pair distances (lower = more likely the same person):");
    println!("{:<8} {:<8} {:>10}", "org A", "org B", "distance");
    let mut pairs: Vec<(ObjectId, ObjectId, f64)> = Vec::new();
    for a in 0..4usize {
        for b in 0..4usize {
            let ida = ObjectId::new(0, a);
            let idb = ObjectId::new(1, b);
            pairs.push((ida, idb, merged.distance(ida, idb)?));
        }
    }
    pairs.sort_by(|x, y| x.2.total_cmp(&y.2));
    for (a, b, d) in &pairs {
        println!("{:<8} {:<8} {:>10.4}", a.to_string(), b.to_string(), d);
    }

    let threshold = 0.25;
    println!();
    println!("declared matches (distance < {threshold}):");
    for (a, b, d) in pairs.iter().filter(|(_, _, d)| *d < threshold) {
        println!("  {a} <-> {b}   (distance {d:.4})");
    }
    println!();
    println!(
        "the third party linked the records while seeing only masked characters and masked ages."
    );
    Ok(())
}
